"""The cluster coordinator: plan, feed, route, checkpoint, recover, merge.

:class:`ClusterExecutor` is the multi-process sibling of
:class:`~repro.platform.executor.LocalExecutor` — same topology contract,
same delivery-semantics ladder, N worker processes instead of one loop:

* **Planning** — :func:`~repro.cluster.plan.plan_topology` deals each
  bolt's tasks across workers (Storm executors → worker slots).
* **Feeding** — spouts run in the coordinator (single source of truth for
  offsets, like a consumer-group leader). Partitioned spouts
  (``parallelism > 1`` + :meth:`~repro.platform.topology.Spout.split`)
  are read round-robin. Spout edges are routed here with the topology's
  grouping instances; routed deliveries are batched into per-worker
  envelopes so one queue hop carries many tuples.
* **Routing** — bolts route their own emissions worker-side; only copies
  destined for shards on *other* workers come back in the reply for
  re-routing (star transport: simple, deterministic, and with
  field-grouped keys the large majority of traffic stays shard-local, so
  per-shard synopses see their keys in exact global stream order).
* **Reliability** — Storm's XOR acker lives here, fed by per-envelope ack
  deltas. Quiescence is credit-based: every envelope out is one reply in,
  so ``outstanding == 0`` means the whole cluster is idle — no probing
  rounds needed. Incomplete trees at idle are failed and replayed
  (at-least-once); under exactly-once the coordinator takes periodic
  cluster-wide checkpoints (drain → per-worker ``stateship`` snapshots +
  source offsets) and any loss or worker crash triggers a global
  rollback: respawn the dead worker, restore every worker from the last
  checkpoint, rewind the sources, bump the epoch so stale traffic is
  discarded.
* **Merge-on-query** — :meth:`ClusterExecutor.merged_synopsis` ships each
  shard's partial synopsis back and folds them with
  ``SynopsisBase.merge``, task order, exactly the Lambda-architecture
  serving-layer move.

Workers stay alive after :meth:`run` so state can be queried; use the
executor as a context manager (or call :meth:`close`) to shut them down
and absorb their metrics/spans into the coordinator's ``repro.obs``
registry.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import pickle
import queue as queue_mod
import threading
import time
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable

from repro.common.exceptions import ExecutionError, ParameterError
from repro.core import stateship
from repro.obs.context import Observability
from repro.obs.flight import FlightRecorder
from repro.obs.health import HealthMonitor, HealthSnapshot
from repro.obs.live import DEFAULT_FLUSH_INTERVAL, TelemetryAbsorber
from repro.obs.tracing import Span, next_span_id
from repro.platform.ack import Acker
from repro.platform.executor import _SEMANTICS, topological_bolt_order
from repro.platform.faults import FaultInjector
from repro.platform.metrics import ExecutionMetrics
from repro.platform.topology import Spout, Topology, is_partitionable
from repro.platform.tuples import next_tuple_id

from repro.cluster import columnar, obsbridge
from repro.cluster.plan import ShardPlan, plan_topology
from repro.cluster.shm import ShmChannel, shm_available
from repro.cluster.worker import worker_main

#: Data-plane transports: shared-memory rings (default) or the legacy
#: pickled-batch-over-queue baseline (kept for A/B benchmarking).
_TRANSPORTS = ("shm", "queue")


class _FlushInterrupted(Exception):
    """A worker died mid-flush; recovery ran — re-enter the main pump."""


class _RescaleRequest:
    """A cross-thread rescale request (the elastic-runtime hook).

    Same handshake as :class:`_CaptureRequest`: created by
    :meth:`ClusterExecutor.rescale` on the requesting thread, serviced by
    the pump loop (or inline when no pump is running), handed back
    through ``ready`` with either ``report`` or ``error`` set.
    """

    __slots__ = ("n_workers", "parallelism", "reason", "ready", "report", "error")

    def __init__(
        self,
        n_workers: int | None,
        parallelism: dict[str, int] | None,
        reason: str,
    ):
        self.n_workers = n_workers
        self.parallelism = parallelism
        self.reason = reason
        self.ready = threading.Event()
        self.report: Any = None
        self.error: BaseException | None = None


class _CaptureRequest:
    """A cross-thread shard-capture request (the serving-layer snapshot hook).

    Created by :meth:`ClusterExecutor.capture_shards` on the requesting
    thread, serviced by the pump loop (or inline when no pump is running)
    and handed back through ``ready``. ``shards``/``error`` carry the
    outcome; only the servicing thread writes them, and only after it
    sets ``ready`` does the requester read them.
    """

    __slots__ = ("name", "ready", "shards", "error")

    def __init__(self, name: str):
        self.name = name
        self.ready = threading.Event()
        self.shards: list[bytes] | None = None
        self.error: BaseException | None = None


class ClusterExecutor:
    """Run a :class:`Topology` across N worker processes."""

    def __init__(
        self,
        topology: Topology,
        n_workers: int = 2,
        semantics: str = "at_most_once",
        checkpoint_interval: int = 2_000,
        batch_size: int = 512,
        max_outstanding: int = 8,
        worker_faults: dict[int, FaultInjector] | None = None,
        obs: Observability | None = None,
        max_replays_per_message: int = 16,
        reply_timeout: float = 30.0,
        transport: str = "shm",
        ring_capacity: int = 1 << 20,
        max_frame: int = 1 << 18,
        telemetry_interval: float | None = None,
        flight: FlightRecorder | None = None,
        flight_path: str | Path | None = None,
        health_log: str | Path | None = None,
        event_time_fn: Callable[[str, tuple], float | None] | None = None,
        autoscaler: Any = None,
    ):
        if semantics not in _SEMANTICS:
            raise ParameterError(f"semantics must be one of {_SEMANTICS}")
        if telemetry_interval is not None and telemetry_interval < 0:
            raise ParameterError("telemetry_interval must be >= 0")
        if n_workers <= 0:
            raise ParameterError("n_workers must be positive")
        if checkpoint_interval <= 0:
            raise ParameterError("checkpoint_interval must be positive")
        if batch_size <= 0:
            raise ParameterError("batch_size must be positive")
        if transport not in _TRANSPORTS:
            raise ParameterError(f"transport must be one of {_TRANSPORTS}")
        if max_frame + 8 > ring_capacity:
            raise ParameterError("ring_capacity must exceed max_frame (+ header)")
        if transport == "shm" and not shm_available():  # pragma: no cover
            transport = "queue"  # non-POSIX fallback; bench records the mode
        self.topology = topology
        self.n_workers = n_workers
        self.semantics = semantics
        self.checkpoint_interval = checkpoint_interval
        self.batch_size = batch_size
        self.max_outstanding = max_outstanding
        self.worker_faults = dict(worker_faults or {})
        self.obs = obs
        self.max_replays_per_message = max_replays_per_message
        self.reply_timeout = reply_timeout
        self.transport = transport
        self.ring_capacity = ring_capacity
        self.max_frame = max_frame
        self.plan: ShardPlan = plan_topology(topology, n_workers)
        self._comp_ids, self._comp_names = columnar.component_table(
            self.plan.components
        )
        self._channels: list[ShmChannel] = []
        #: Data-plane accounting, keyed for the bench's byte columns:
        #: bytes moved over shm rings vs pickled through mp queues, frame
        #: count, bytes that fell back to pickle inside columnar frames,
        #: and how often a full ring forced the coordinator to wait.
        self.transport_stats: dict[str, Any] = {
            "transport": transport,
            "data_bytes_shm": 0,
            "data_bytes_queue": 0,
            "data_frames": 0,
            "codec_pickled_bytes": 0,
            "backpressure_waits": 0,
        }
        self.metrics = ExecutionMetrics(
            registry=obs.registry if obs is not None else None
        )
        self._sampler = obs.sampler if obs is not None else None
        self._spans = obs.collector if obs is not None else None
        if obs is not None:
            self._m_bytes = obs.registry.counter(
                "repro_cluster_transport_bytes_total",
                "Data-plane bytes moved, by transport path",
                labelnames=("path",),
            )
            self._m_frames = obs.registry.counter(
                "repro_cluster_transport_frames_total",
                "Data-plane frames/envelopes sent",
            )
            self._m_backpressure = obs.registry.counter(
                "repro_cluster_transport_backpressure_waits_total",
                "Times a full ring made the coordinator wait",
            )
            self._m_ring_used = obs.registry.gauge(
                "repro_cluster_ring_used_bytes",
                "Bytes enqueued in a worker's shm ring",
                labelnames=("worker", "direction"),
            )
        else:
            self._m_bytes = self._m_frames = None
            self._m_backpressure = self._m_ring_used = None
        self._trace_attempts: dict[int, int] = {}
        self._trace_roots: dict[int, Span] = {}

        # Live telemetry (tentpole of the obs plane): interval defaults on
        # whenever the run is observed, 0/None-without-obs disables it.
        if telemetry_interval is None:
            telemetry_interval = DEFAULT_FLUSH_INTERVAL if obs is not None else 0.0
        self.telemetry_interval = telemetry_interval if obs is not None else 0.0
        self.flight_path = Path(flight_path) if flight_path is not None else None
        self._health_log_path = Path(health_log) if health_log is not None else None
        self._health_log: Any = None
        self._event_time_fn = event_time_fn
        if obs is not None:
            self.flight = flight if flight is not None else FlightRecorder()
            self._absorber = TelemetryAbsorber(
                obs.registry, obs.collector, flight=self.flight
            )
            self._health: HealthMonitor | None = HealthMonitor(
                n_workers=n_workers,
                operators=self._operator_owners(),
                ring_capacity=ring_capacity if self.transport == "shm" else 0,
                watermark_unit=(
                    "event_time" if event_time_fn is not None else "offset"
                ),
            )
        else:
            self.flight = flight
            self._absorber = None
            self._health = None
        self._last_health_publish = time.monotonic()

        # Spouts (partitioned when declared parallel and splittable).
        self._spouts: dict[str, list[Spout]] = {}
        for comp in topology.components.values():
            if comp.kind != "spout":
                continue
            spout = comp.factory()
            if comp.parallelism > 1:
                if not is_partitionable(spout):
                    raise ExecutionError(
                        f"spout {comp.name!r} declares parallelism "
                        f"{comp.parallelism} but does not implement split()"
                    )
                self._spouts[comp.name] = spout.split(comp.parallelism)
            else:
                self._spouts[comp.name] = [spout]

        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ExecutionError(
                "repro.cluster needs the fork start method (POSIX only): "
                "topology factories may close over non-picklable objects"
            ) from exc
        self._processes: list[Any] = []
        self._inboxes: list[Any] = []
        # One results queue *per worker*, not one shared queue: a worker
        # that hard-exits (injected os._exit crash, real SIGKILL) can die
        # while its queue feeder holds the shared write lock or is halfway
        # through a frame, and a shared queue turns that into a cluster-wide
        # wedge — every survivor's feeder blocks on a lock nobody will
        # release. Per-worker queues confine the damage: the crash path
        # salvages what the dead channel still holds and replaces it.
        self._results: list[Any] = []
        self._results_rr = 0
        self._started = False
        self._closed = False

        # Run state.
        self.epoch = 0
        self._outstanding = 0
        self._buffers: list[list[tuple]] = [[] for __ in range(n_workers)]
        self._acker = Acker() if semantics != "at_most_once" else None
        self._root_counter = itertools.count(1)
        self._root_sources: dict[int, tuple[str, int, int]] = {}
        self._start_times: dict[int, float] = {}
        self._replay_counts: dict[int, int] = {}
        self._checkpoint: dict | None = None
        self._pulls_since_checkpoint = 0
        self._recover_requested = False

        # Serving-layer snapshot hook: capture requests queued by other
        # threads, serviced at consistent points of the pump loop (or
        # inline under the control lock when no pump is running).
        self._capture_requests: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
        self._control_lock = threading.Lock()
        self._pumping = False

        # Elastic runtime: cross-thread rescale requests ride the same
        # queue-and-service pattern; the optional autoscaler is consulted
        # every `tick_every` pump iterations (workload-relative cadence).
        self.autoscaler = autoscaler
        self.rescale_reports: list[Any] = []
        self._rescale_requests: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
        self._spout_throttled = 0
        self._pump_iterations = 0

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ClusterExecutor":
        self._ensure_started()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spawn_worker(self, worker_id: int) -> None:
        respawn = worker_id < len(self._processes)
        channel = self._channels[worker_id] if self.transport == "shm" else None
        if respawn and channel is not None:
            # The dead incarnation may have left a torn/partial write past
            # ``head`` and unread frames before it; both are dead traffic
            # of a discarded epoch. Reset before the fork so the new
            # incarnation inherits an empty ring.
            channel.reset()
        inbox = self._mp.Queue()
        if respawn:
            # The dead incarnation's results queue may end in a frame its
            # feeder half-wrote at the crash (recv on it would block
            # forever) and a write lock that died held; _handle_crash
            # salvaged it already, so the new incarnation gets a fresh
            # channel and the survivors' queues are never touched.
            self._results[worker_id] = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(
                worker_id,
                self.topology,
                self.plan,
                inbox,
                self._results[worker_id],
                self.worker_faults.get(worker_id),
                self.obs is not None,
                channel,
                self.max_frame,
                self.telemetry_interval or None,
                self._event_time_fn,
            ),
            daemon=True,
        )
        process.start()
        if respawn:
            # The dead worker's inbox may hold unread envelopes; detach its
            # feeder thread so dropping the queue can never block on join.
            self._inboxes[worker_id].cancel_join_thread()
            self._inboxes[worker_id] = inbox
            self._processes[worker_id] = process
        else:
            self._inboxes.append(inbox)
            self._processes.append(process)

    def _ensure_started(self) -> None:
        if self._closed:
            raise ExecutionError("executor already closed")
        if self._started:
            return
        self._results = [self._mp.Queue() for __ in range(self.n_workers)]
        if self.transport == "shm" and not self._channels:
            # Segments must exist before the forks: children inherit the
            # mapped buffers, so no name handshake or handle pickling.
            self._channels = [
                ShmChannel(worker_id, self.ring_capacity)
                for worker_id in range(self.n_workers)
            ]
        for worker_id in range(self.n_workers):
            self._spawn_worker(worker_id)
        self._started = True

    def close(self) -> None:
        """Stop every worker, absorb its metrics/spans, reap processes and
        unlink every shared-memory segment."""
        if not self._started or self._closed:
            self._closed = True
            self._destroy_channels()
            self._close_health_log()
            return
        self._closed = True
        alive = [w for w in range(self.n_workers) if self._processes[w].is_alive()]
        for worker_id in alive:
            self._inboxes[worker_id].put(("stop", self.epoch))
        pending = set(alive)
        deadline = time.perf_counter() + self.reply_timeout
        while pending and time.perf_counter() < deadline:
            # Keep outbox rings flowing: a worker finishing its last
            # envelope may be blocked pushing re-route frames, and it only
            # sees "stop" after that push succeeds.
            self._discard_outbox_frames()
            try:
                kind, worker_id, __, payload = self._results_get(0.1)
            except queue_mod.Empty:
                pending = {w for w in pending if self._processes[w].is_alive()}
                continue
            if kind == "telemetry":
                # The worker's final forced flush (queue FIFO puts it
                # ahead of its "stopped") — plus any interval flushes
                # still in flight.
                self._absorb_telemetry(worker_id, payload)
            elif kind == "stopped" and worker_id in pending:
                pending.discard(worker_id)
                if payload is not None and self.obs is not None:
                    # Legacy shutdown-only export (pre-live-telemetry
                    # workers driven in-process by tests).
                    metrics_records, spans = payload
                    obsbridge.absorb_metrics(
                        self.obs.registry, metrics_records, worker_id
                    )
                    obsbridge.absorb_spans(self.obs.collector, spans)
        if self._health is not None:
            self._publish_health(reason="final")
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=2.0)
        self._destroy_channels()
        self._close_health_log()

    def _close_health_log(self) -> None:
        if self._health_log is not None:
            self._health_log.close()
            self._health_log = None

    def _destroy_channels(self) -> None:
        """Unlink every shm segment (idempotent; workers are gone)."""
        for channel in self._channels:
            channel.destroy()

    def _discard_outbox_frames(self) -> None:
        """Drop outbox traffic unexamined (shutdown path only)."""
        for channel in self._channels:
            while channel.outbox.try_pop() is not None:
                pass

    # -- routing -----------------------------------------------------------

    def _buffer_entry(self, entry: tuple, khash: int | None = None) -> None:
        component, task = entry[0], entry[1]
        self._buffers[self.plan.worker_of(component, task)].append((entry, khash))

    def _route_spout_batch(
        self, source: str, payloads: list[tuple], roots: list[int | None], traces
    ) -> int:
        """Route a batch of spout payloads; returns delivered copies."""
        delivered = 0
        for consumer, grouping in self.topology.consumers_of(source):
            comp = self.topology.components[consumer]
            routes, khashes = grouping.route_batch(payloads, comp.parallelism)
            if khashes is None:
                khashes = [None] * len(payloads)
            for payload, root, trace, targets, khash in zip(
                payloads, roots, traces, routes, khashes
            ):
                for task in targets:
                    tuple_id = next_tuple_id()
                    if self._acker is not None and root is not None:
                        self._acker.anchor(root, tuple_id)
                    self._buffer_entry(
                        (consumer, task, payload, root, tuple_id, trace), khash
                    )
                    delivered += 1
        return delivered

    def _flush_buffers(self) -> None:
        # Indexed through the attribute (not enumerate over a captured
        # list): crash recovery inside _send_frames rebinds self._buffers,
        # and the remaining iterations must see the post-recovery buffers.
        for worker_id in range(self.n_workers):
            buffer = self._buffers[worker_id]
            if not buffer:
                continue
            self._buffers[worker_id] = []
            if self.transport == "shm":
                self._send_frames(worker_id, buffer)
            else:
                # Pre-pickle the batch so transported bytes are measurable
                # (mp would pickle it invisibly inside the feeder thread).
                blob = pickle.dumps(
                    [entry for entry, __ in buffer],
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self._inboxes[worker_id].put(("tuples", self.epoch, blob))  # streamlint: disable=SL013 - legacy queue transport kept as the A/B baseline
                self._outstanding += 1
                self._account_data(len(blob), path="queue")

    def _send_frames(self, worker_id: int, buffer: list[tuple]) -> None:
        """Encode one worker's buffered deliveries into columnar frames,
        push them onto its inbox ring and ring the doorbell per frame."""
        entries = [entry for entry, __ in buffer]
        khashes: list[int | None] | None = [khash for __, khash in buffer]
        if not any(k is not None for k in khashes):
            khashes = None
        ring = self._channels[worker_id].inbox
        epoch = self.epoch
        pushed = 0
        for frame, stats in columnar.encode_frames(
            entries, epoch, self._comp_ids, self.max_frame, khashes=khashes
        ):
            self._push_frame(worker_id, ring, frame)
            if self.epoch != epoch:
                # Crash recovery ran inside the backpressure wait: the
                # rest of this buffer is a dead incarnation's traffic.
                # (The frame just pushed rides doorbell-less; the worker's
                # drain-to-empty pop absorbs and discards it.)
                return
            pushed += 1
            self._outstanding += 1
            self._account_data(len(frame), path="shm")
            self.transport_stats["codec_pickled_bytes"] += stats.pickled_bytes
        if pushed:
            # One doorbell covers the whole send: the worker drains its
            # ring to empty per wake-up, so later doorbells for frames it
            # already popped just fall through. Data rides the ring; the
            # control queue carries 2 small ints.
            self._inboxes[worker_id].put(("frames", epoch))
        if self._m_ring_used is not None:
            self._m_ring_used.labels(worker=str(worker_id), direction="in").set(
                ring.used_bytes()
            )

    def _push_frame(self, worker_id: int, ring, frame: bytes) -> None:
        """Push with blocking-with-deadline fallback on ring-full.

        While waiting the coordinator keeps draining outbox rings and
        replies — the worker may itself be blocked on a full outbox, and
        draining is what breaks that hold-and-wait cycle. A worker that
        died mid-backpressure is detected here (its ring is reset by
        recovery; the stale-epoch frame still goes through and is
        discarded by the reply filter, matching queue-mode semantics).
        """
        if ring.try_push(frame):
            return
        self.transport_stats["backpressure_waits"] += 1
        if self._m_backpressure is not None:
            self._m_backpressure.inc()
        # Ring the doorbell for the frames already pushed this send: the
        # worker only drains on a doorbell, so without this a ring that
        # fills mid-send would sit full until the worker's 1s control
        # timeout. A surplus doorbell is harmless (drain-to-empty pops
        # None and falls through).
        self._inboxes[worker_id].put(("frames", self.epoch))
        deadline = time.perf_counter() + self.reply_timeout
        while not ring.try_push(frame):
            self._drain_replies(block=False)  # also drains outbox rings
            if not self._processes[worker_id].is_alive():
                self._check_liveness()
                continue
            if time.perf_counter() > deadline:
                raise ExecutionError(
                    f"worker {worker_id} inbox ring full for "
                    f"{self.reply_timeout:.0f}s; worker wedged"
                )
            time.sleep(0.0005)  # streamlint: disable=SL010 - bounded backpressure wait

    def _account_data(self, nbytes: int, path: str, frames: int = 1) -> None:
        self.transport_stats[f"data_bytes_{path}"] += nbytes
        self.transport_stats["data_frames"] += frames
        if self._m_bytes is not None:
            self._m_bytes.labels(path=path).inc(nbytes)
            self._m_frames.inc(frames)

    # -- live telemetry ----------------------------------------------------

    def _absorb_telemetry(self, worker_id: int, payload: dict) -> None:
        """Fold one worker flush into the coordinator's registry/monitor.

        Flushes are pid-tagged: one from a *previous* incarnation (queued
        before a crash the coordinator has since sealed) must not stack
        its cumulative metrics on top of the sealed base, but its spans
        are real pre-crash history and are kept — that is precisely the
        span-loss fix.
        """
        if self._absorber is None:
            return
        process = (
            self._processes[worker_id]
            if worker_id < len(self._processes)
            else None
        )
        current_pid = process.pid if process is not None else None
        if payload.get("pid") != current_pid:
            self._absorber.absorb_spans_only(payload["spans"])
            return
        self._absorber.absorb(worker_id, payload["metrics"], payload["spans"])
        if self._health is not None:
            self._health.record_flush(
                worker_id,
                seq=payload["seq"],
                frontier=payload["frontier"],
                event_frontier=payload["event_frontier"],
                processed_total=payload["processed_total"],
            )
        self._maybe_publish_health()

    def _operator_owners(self) -> dict[str, tuple[str, tuple[int, ...]]]:
        """name -> (kind, owning workers) under the *current* plan.

        Built at construction for the health monitor and rebuilt after
        every elastic rescale (the plan, and with it the owner sets,
        changes shape).
        """
        operators: dict[str, tuple[str, tuple[int, ...]]] = {}
        for comp in self.topology.components.values():
            if comp.kind == "bolt":
                owners = tuple(
                    sorted(
                        {
                            self.plan.worker_of(comp.name, task)
                            for task in range(comp.parallelism)
                        }
                    )
                )
            else:
                owners = ()  # spouts run in the coordinator
            operators[comp.name] = (comp.kind, owners)
        return operators

    def _component_counts(self) -> dict[str, tuple[int, int]]:
        counts: dict[str, tuple[int, int]] = {}
        for comp in self.topology.components.values():
            entry = self.metrics.components[f"{comp.kind}:{comp.name}"]
            counts[comp.name] = (entry.processed, entry.emitted)
        return counts

    def _publish_health(self, reason: str = "interval") -> HealthSnapshot | None:
        """Build a health snapshot now: sample rings, snapshot, record."""
        if self._health is None:
            return None
        for worker_id in range(self.n_workers):
            alive = bool(
                self._started
                and worker_id < len(self._processes)
                and self._processes[worker_id].is_alive()
            )
            in_used = out_used = 0
            if self._channels:
                in_used = self._channels[worker_id].inbox.used_bytes()
                out_used = self._channels[worker_id].outbox.used_bytes()
                if self._m_ring_used is not None:
                    self._m_ring_used.labels(
                        worker=str(worker_id), direction="in"
                    ).set(in_used)
                    self._m_ring_used.labels(
                        worker=str(worker_id), direction="out"
                    ).set(out_used)
            self._health.set_worker_io(worker_id, alive, in_used, out_used)
        self.metrics.backpressure_waits = self.transport_stats[
            "backpressure_waits"
        ]
        snapshot = self._health.snapshot(
            reason=reason,
            counts=self._component_counts(),
            backpressure_waits=self.transport_stats["backpressure_waits"],
            latency_p50_s=self.metrics.latency_quantile(0.5),
            latency_p99_s=self.metrics.latency_quantile(0.99),
            in_flight=self._outstanding,
            spout_throttled=self._spout_throttled,
            elastic=self._elastic_state(),
        )
        self.metrics.ring_occupancy = snapshot.max_ring_occupancy()
        if self.flight is not None:
            self.flight.record_snapshot(snapshot)
        if self._health_log_path is not None:
            if self._health_log is None:
                self._health_log = self._health_log_path.open(
                    "a", encoding="utf-8"
                )
            self._health_log.write(json.dumps(snapshot.to_dict()) + "\n")
            self._health_log.flush()
        return snapshot

    def _maybe_publish_health(self) -> None:
        """Interval-gated :meth:`_publish_health` (the steady-state tick)."""
        if self._health is None or not self.telemetry_interval:
            return
        now = time.monotonic()
        if now - self._last_health_publish < self.telemetry_interval:
            return
        self._last_health_publish = now
        self._publish_health(reason="interval")

    def _elastic_state(self) -> dict[str, Any]:
        """JSON-ready elastic-runtime state for health snapshots/the TUI."""
        last = self.rescale_reports[-1] if self.rescale_reports else None
        return {
            "workers": self.n_workers,
            "parallelism": {
                comp.name: comp.parallelism
                for comp in self.topology.components.values()
                if comp.kind == "bolt"
            },
            "rescales": len(self.rescale_reports),
            "last_rescale": None if last is None else last.to_dict(),
            "autoscaler": (
                None if self.autoscaler is None else self.autoscaler.describe()
            ),
        }

    def health(self) -> HealthSnapshot | None:
        """A fresh typed health snapshot (None when the run is unobserved).

        This is the feed ROADMAP item 3's autoscaler consumes: per-operator
        watermarks and lag, per-worker ring occupancy and telemetry ages,
        ``backpressure_waits`` and end-to-end latency quantiles.
        """
        return self._publish_health(reason="query")

    @property
    def last_health(self) -> HealthSnapshot | None:
        """The most recently published snapshot (survives :meth:`close`)."""
        return self._health.last_snapshot if self._health is not None else None

    # -- spout side --------------------------------------------------------

    def _pull_spouts(self) -> bool:
        """Feed up to one batch per spout partition; True if anything fed."""
        if self._outstanding > self.max_outstanding:
            # Backpressure: let the workers catch up. The counter is the
            # autoscaler's primary "sources held back" signal — it moves
            # exactly when worker throughput lags the coordinator's
            # routing rate, independent of wall-clock.
            self._spout_throttled += 1
            return False
        pulled = False
        reliable = self._acker is not None
        for name, partitions in self._spouts.items():
            spout_metrics = self.metrics.components[f"spout:{name}"]
            for part_idx, spout in enumerate(partitions):
                if reliable:
                    payloads: list[tuple] = []
                    roots: list[int | None] = []
                    traces: list = []
                    for __ in range(self.batch_size):
                        payload = spout.next_tuple()
                        if payload is None:
                            break
                        root = next(self._root_counter)
                        local_msg = getattr(spout, "last_offset", root)
                        self._root_sources[root] = (name, part_idx, local_msg)
                        self._acker.register(root, 0)
                        self._start_times.setdefault(root, time.perf_counter())
                        if self._health is not None:
                            # The newest issued position is the source
                            # frontier the watermarks chase.
                            if self._event_time_fn is not None:
                                event_time = self._event_time_fn(name, payload)
                                if event_time is not None:
                                    self._health.set_source_frontier(event_time)
                            else:
                                self._health.set_source_frontier(root)
                        payloads.append(payload)
                        roots.append(root)
                        traces.append(self._trace_root(name, root))
                        self._pulls_since_checkpoint += 1
                else:
                    payloads = spout.next_batch(self.batch_size)
                    roots = [None] * len(payloads)
                    traces = [None] * len(payloads)
                    if self._health is not None and self._event_time_fn is not None:
                        for payload in payloads:
                            event_time = self._event_time_fn(name, payload)
                            if event_time is not None:
                                self._health.set_source_frontier(event_time)
                if not payloads:
                    continue
                pulled = True
                spout_metrics.emitted += len(payloads)
                self._route_spout_batch(name, payloads, roots, traces)
        if (
            self.semantics == "exactly_once"
            and self._pulls_since_checkpoint >= self.checkpoint_interval
        ):
            self._take_checkpoint()
        return pulled

    def _trace_root(self, spout_name: str, root: int):
        if self._sampler is None:
            return None
        trace_id = self._sampler.sample(root)
        if trace_id is None:
            return None
        attempt = self._trace_attempts.get(root, 0) + 1
        self._trace_attempts[root] = attempt
        span = Span(
            trace_id=trace_id,
            span_id=next_span_id(),
            parent_id=None,
            component=f"spout:{spout_name}",
            kind="spout_emit",
            start=time.perf_counter(),
            attempt=attempt,
            msg_id=root,
        )
        self._trace_roots[root] = span
        self._spans.record(span)
        return (trace_id, span.span_id, attempt)

    def _spouts_exhausted(self) -> bool:
        for partitions in self._spouts.values():
            for spout in partitions:
                exhausted = getattr(spout, "exhausted", None)
                if exhausted is False:
                    return False
        return True

    # -- reply side --------------------------------------------------------

    def _drain_outbox_rings(self) -> bool:
        """Forward every waiting worker→worker re-route frame (star
        transport, second hop). Called eagerly — not just on replies — so
        a worker can never stay blocked on a full outbox while the
        coordinator waits on something else (deadlock freedom).

        Outbox packets are ``[u16 dest][columnar frame]``: the sender
        already bucketed by destination worker, so the fast path is a pure
        byte copy into the destination's inbox ring — no decode, no
        re-encode. Stale-epoch frames are dead traffic and dropped, like
        stale replies; a full destination ring falls back to
        decode-and-rebuffer (the frame re-ships with the next flush).
        """
        drained = False
        rang: set[int] = set()
        for channel in self._channels:
            while (packet := channel.outbox.try_pop()) is not None:
                drained = True
                frame = packet[2:]
                if columnar.frame_epoch(frame) != self.epoch:
                    continue
                dest = int.from_bytes(packet[:2], "little")
                if self._channels[dest].inbox.try_push(frame):
                    self._outstanding += 1
                    rang.add(dest)
                    self._account_data(len(frame), path="shm")
                else:
                    __, entries, khashes = columnar.decode_entries(
                        frame, self._comp_names
                    )
                    for entry, khash in zip(entries, khashes):
                        self._buffer_entry(entry, khash)
        for dest in rang:
            self._inboxes[dest].put(("frames", self.epoch))
        return drained

    def _results_get(self, timeout: float) -> tuple:
        """One reply from any worker's results queue (fan-in, rotating).

        Waits up to *timeout* for any queue's pipe to become readable,
        then pops from the first ready queue at or after the rotation
        cursor (so a chatty worker cannot starve the others). Queues of
        *crashed* workers (dead with a nonzero exit code) are skipped:
        their tail may be a torn frame that would block ``recv`` forever,
        and the crash path salvages + replaces them. Cleanly-stopped
        workers flushed their feeder on exit, so their remaining messages
        (the final forced telemetry flush, ``stopped``) stay readable.

        Raises :class:`queue.Empty` when nothing is readable in time.
        """
        readers = [q._reader for q in self._results]
        ready = {id(c) for c in mp_connection.wait(readers, timeout=timeout)}
        n = len(readers)
        for off in range(n):
            wid = (self._results_rr + off) % n
            if id(readers[wid]) not in ready:
                continue
            process = self._processes[wid]
            if not process.is_alive() and process.exitcode != 0:
                continue
            self._results_rr = (wid + 1) % n
            try:
                return self._results[wid].get_nowait()
            except queue_mod.Empty:  # pragma: no cover - sole-reader guard
                continue
        raise queue_mod.Empty

    def _salvage_dead_results(self, worker_id: int) -> None:
        """Absorb what a crashed worker's results queue still holds.

        Telemetry flushes in flight at the crash are real data — dropping
        them would cost the flight recorder its freshest pre-crash
        snapshot — but the queue may end in a frame the dying feeder
        half-wrote, and ``recv`` on a torn frame blocks forever. A
        sacrificial daemon thread pulls until the queue is dry or it
        wedges on the torn tail; the queue is replaced at respawn either
        way, so an abandoned thread holds nothing anyone will miss.
        """
        dead_queue = self._results[worker_id]
        salvaged: list = []

        def pull() -> None:
            try:
                while True:
                    salvaged.append(dead_queue.get_nowait())
            except (queue_mod.Empty, OSError, EOFError):
                pass

        thread = threading.Thread(target=pull, daemon=True)
        thread.start()
        thread.join(timeout=1.0)
        for message in list(salvaged):
            kind, wid, __, payload = message
            if kind == "telemetry":
                self._absorb_telemetry(wid, payload)
            # "done"/"flush_ok" remnants belong to the dead epoch: the
            # recovery rolls the cluster back past them, exactly as the
            # epoch guard would have discarded them in-line.

    def _drain_replies(self, block: bool) -> bool:
        """Apply at most one worker reply; True when one was applied."""
        self._drain_outbox_rings()
        timeout = 0.05 if block else 0.0
        try:
            message = self._results_get(timeout)
        except queue_mod.Empty:
            if self._outstanding > 0:
                self._check_liveness()
            return False
        kind, worker_id, epoch, payload = message
        if kind == "telemetry":
            # Telemetry is epoch-agnostic (cumulative state, pid-guarded
            # against dead incarnations) — absorb it whenever it arrives.
            self._absorb_telemetry(worker_id, payload)
            return True
        if epoch != self.epoch:
            return True  # stale incarnation: discard, but we made progress
        if kind == "done":
            self._outstanding -= 1
            self._apply_reply(payload)
        elif kind == "stopped":  # pragma: no cover - defensive
            pass
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"unexpected worker reply {kind!r} mid-run")
        return True

    def _apply_reply(self, payload: dict) -> None:
        for component, count in payload["processed"].items():
            self.metrics.components[f"bolt:{component}"].processed += count
        for component, count in payload["emitted"].items():
            self.metrics.components[f"bolt:{component}"].emitted += count
        # Remote entries ride the reply itself under the queue transport
        # (as a pre-pickled blob of (dest, entry) pairs, or a plain list
        # when a ClusterWorker is driven in-process by tests); under shm
        # they arrived on the outbox ring and were forwarded by
        # _drain_outbox_rings already.
        remote = payload.get("remote")
        if remote is None and payload.get("remote_blob") is not None:
            remote = pickle.loads(payload["remote_blob"])
        for dest, entry in remote or ():
            self._buffers[dest].append((entry, None))
        out_bytes = payload.get("out_bytes", 0)
        if out_bytes:
            if self.transport == "shm":
                self._account_data(
                    out_bytes, path="shm", frames=payload.get("remote_frames", 1)
                )
                self.transport_stats["codec_pickled_bytes"] += payload.get(
                    "out_pickled", 0
                )
            else:
                self._account_data(out_bytes, path="queue")
        if self._acker is not None:
            for root, delta in payload["deltas"]:
                if root is None or root not in self._acker._pending:
                    continue
                if self._acker.ack(root, delta):
                    self._complete(root)
        if payload["lost"] and self.semantics == "exactly_once":
            # A lost delivery is unrecoverable forward progress loss under
            # exactly-once: roll the cluster back to the last checkpoint.
            self._recover_requested = True

    def _complete(self, root: int) -> None:
        self.metrics.components["spout:__all__"].acked += 1
        started = self._start_times.pop(root, None)
        if started is not None:
            self.metrics.record_latency(time.perf_counter() - started)
        source = self._root_sources.pop(root, None)
        if source is not None:
            name, part_idx, local_msg = source
            self._spouts[name][part_idx].ack(local_msg)
        root_span = self._trace_roots.pop(root, None)
        if root_span is not None:
            self._spans.record(
                Span(
                    trace_id=root_span.trace_id,
                    span_id=next_span_id(),
                    parent_id=root_span.span_id,
                    component="acker",
                    kind="ack",
                    start=time.perf_counter(),
                    attempt=root_span.attempt,
                    msg_id=root,
                )
            )

    def _check_liveness(self) -> None:
        dead = [
            worker_id
            for worker_id in range(self.n_workers)
            if not self._processes[worker_id].is_alive()
        ]
        if dead:
            self._handle_crash(dead)

    # -- failure handling --------------------------------------------------

    def _event(self, kind: str, component: str = "coordinator") -> None:
        if self._spans is None:
            return
        self._spans.record(
            Span(
                trace_id=None,
                span_id=next_span_id(),
                parent_id=None,
                component=component,
                kind=kind,
                start=time.perf_counter(),
            )
        )

    def _fail_pending(self) -> None:
        """Fail every incomplete tuple tree at cluster idle (timeout).

        Replay caps are keyed by *source record*, not by root id — every
        replay re-enters the spout and is assigned a fresh root, so a
        root-keyed cap would never bound a poisoned message.
        """
        assert self._acker is not None
        for root in list(self._acker._pending):
            self._acker.fail(root)
            self._start_times.pop(root, None)
            self.metrics.components["spout:__all__"].failed += 1
            source = self._root_sources.pop(root, None)
            root_span = self._trace_roots.pop(root, None)
            if root_span is not None:
                self._spans.record(
                    Span(
                        trace_id=root_span.trace_id,
                        span_id=next_span_id(),
                        parent_id=root_span.span_id,
                        component="acker",
                        kind="fail",
                        start=time.perf_counter(),
                        attempt=root_span.attempt,
                        msg_id=root,
                    )
                )
            if source is None:
                continue
            replays = self._replay_counts.get(source, 0)
            if replays >= self.max_replays_per_message:
                continue  # give up: poisoned/unlucky message
            self._replay_counts[source] = replays + 1
            self.metrics.replays += 1
            name, part_idx, local_msg = source
            self._spouts[name][part_idx].fail(local_msg)

    def _handle_crash(self, dead: list[int]) -> None:
        """A worker process died (or a loss forced a rollback): respawn
        the dead and recover per the delivery semantics."""
        if dead:
            self._event("crash")
            # Seal *before* respawn: the dead incarnation's cumulative
            # telemetry stream has ended, so its last absorbed values
            # become the base under the new incarnation's fresh counters.
            # Salvage first — flushes still sitting in the dead channel
            # belong to the dying incarnation and must land pre-seal.
            for worker_id in dead:
                self._salvage_dead_results(worker_id)
                if self._absorber is not None:
                    self._absorber.seal_worker(worker_id)
                if self._health is not None:
                    self._health.note_respawn(worker_id)
        self.metrics.recoveries += 1
        self.epoch += 1
        self._outstanding = 0
        self._buffers = [[] for __ in range(self.n_workers)]
        for worker_id in dead:
            self._processes[worker_id].join(timeout=1.0)
            # The injected crash is one-shot *cluster-wide*: the respawned
            # process forks a pristine copy of the parent's injector, so
            # without this it would crash again after every rollback.
            injector = self.worker_faults.get(worker_id)
            if injector is not None:
                injector.crash_after = None
            self._spawn_worker(worker_id)
        if self.semantics == "exactly_once":
            self._rollback()
        else:
            # No checkpoints: the dead worker's state is gone (Storm
            # without Trident). Incomplete trees replay under
            # at-least-once; under at-most-once they are simply lost.
            if self._acker is not None:
                self._fail_pending()
                self._acker = Acker()
                self._root_sources.clear()
                self._start_times.clear()
        self._recover_requested = False
        if dead and self._health is not None:
            # Post-mortem: a crash-reason snapshot (built from state that
            # is at most one flush interval stale) goes into the flight
            # recorder, and the whole black box hits disk if a dump path
            # was configured.
            self._publish_health(reason="crash")
            self.flight.record_event(
                "crash", {"workers": dead, "epoch": self.epoch}
            )
            if self.flight_path is not None:
                self.flight.dump(self.flight_path, reason="crash")

    def _rollback(self) -> None:
        """Restore every worker from the last checkpoint, rewind sources."""
        self._event("recovery")
        states = (self._checkpoint or {}).get("workers", {})
        for worker_id in range(self.n_workers):
            self._inboxes[worker_id].put(
                ("restore", self.epoch, states.get(worker_id, {}))
            )
        self._await_all("restore_ok")
        offsets = (self._checkpoint or {}).get("offsets")
        for name, partitions in self._spouts.items():
            for part_idx, spout in enumerate(partitions):
                target = offsets[name][part_idx] if offsets is not None else 0
                spout.rewind(target)
        self._acker = Acker()
        self._root_sources.clear()
        self._start_times.clear()
        self._pulls_since_checkpoint = 0

    def _await_all(self, expected_kind: str) -> dict[int, Any]:
        """Collect one *expected_kind* reply per worker for this epoch."""
        payloads: dict[int, Any] = {}
        deadline = time.perf_counter() + self.reply_timeout
        while len(payloads) < self.n_workers:
            if time.perf_counter() > deadline:
                raise ExecutionError(f"timed out awaiting {expected_kind} replies")
            try:
                kind, worker_id, epoch, payload = self._results_get(0.1)
            except queue_mod.Empty:
                self._drain_outbox_rings()
                dead = [
                    w
                    for w in range(self.n_workers)
                    if not self._processes[w].is_alive()
                ]
                if dead:
                    raise ExecutionError(
                        f"worker(s) {dead} died while awaiting {expected_kind}"
                    )
                continue
            if kind == "telemetry":
                self._absorb_telemetry(worker_id, payload)
                continue
            if epoch != self.epoch:
                continue
            if kind != expected_kind:
                if kind == "done":  # stale same-epoch work: apply normally
                    self._outstanding -= 1
                    self._apply_reply(payload)
                    continue
                raise ExecutionError(
                    f"expected {expected_kind}, got {kind!r} from worker {worker_id}"
                )
            payloads[worker_id] = payload
        return payloads

    # -- checkpointing -----------------------------------------------------

    def _drain_outstanding(self) -> None:
        """Block until every envelope has been processed cluster-wide.

        Quiescence needs a final outbox sweep: the reply that brings
        ``outstanding`` to zero was enqueued *after* its worker pushed its
        re-route frames, so those frames are guaranteed visible — but only
        if we look. Without the sweep a checkpoint could snapshot while
        second-hop tuples sit unread in a ring.
        """
        while True:
            if self._outstanding <= 0 and not any(self._buffers):
                if not self._drain_outbox_rings():
                    break  # no credits, no buffers, rings empty: idle
            self._flush_buffers()
            self._drain_replies(block=True)
            while self._drain_replies(block=False):
                pass
            if self._recover_requested:
                break

    def _take_checkpoint(self) -> None:
        """Cluster-wide consistent snapshot: drain, snapshot, record."""
        self._pulls_since_checkpoint = 0
        self._drain_outstanding()
        if self._recover_requested:
            return  # a loss surfaced while draining; recover instead
        for worker_id in range(self.n_workers):
            self._inboxes[worker_id].put(("snapshot", self.epoch))
        try:
            worker_states = self._await_all("snapshot_ok")
        except ExecutionError:
            dead = [
                w for w in range(self.n_workers) if not self._processes[w].is_alive()
            ]
            if dead:  # a crash mid-snapshot: recover, checkpoint next round
                self._handle_crash(dead)
                return
            raise
        self._checkpoint = {
            "workers": worker_states,
            "offsets": {
                name: [spout.offset for spout in partitions]
                for name, partitions in self._spouts.items()
            },
        }
        self.metrics.checkpoints += 1
        self._event("checkpoint")

    # -- main loop ---------------------------------------------------------

    def run(self) -> ExecutionMetrics:
        """Execute until sources are exhausted and all work has settled.

        Workers are left alive afterwards so shard state can be queried
        (:meth:`merged_synopsis`, :meth:`bolt_states`); :meth:`close`
        shuts them down.
        """
        started = time.perf_counter()
        with self._control_lock:
            self._pumping = True
            try:
                self._ensure_started()
                if self.semantics == "exactly_once" and self._checkpoint is None:
                    self._take_checkpoint()  # epoch-0 baseline to roll back to
                while True:
                    self._pump()
                    try:
                        self._flush_all_bolts()
                    except _FlushInterrupted:
                        # A worker died mid-flush: recovery already ran
                        # (respawn, rollback/replay, epoch bump). Re-enter
                        # the pump — under exactly-once the rewound sources
                        # re-feed from the last checkpoint — then flush
                        # again from the first bolt (state everywhere is
                        # post-recovery, so the re-flush is the first flush
                        # that incarnation sees).
                        continue
                    break
            finally:
                self._pumping = False
                # Serve any capture/rescale request that raced the shutdown
                # of the pump: after the flag flips, new requesters service
                # their own queue inline, so this drain closes the window.
                self._service_capture_requests()
                self._service_rescale_requests()
        self.metrics.wall_seconds = time.perf_counter() - started
        # Pressure signals land in the façade summary() for both
        # transports (queue runs just report 0 ring occupancy).
        self.metrics.backpressure_waits = self.transport_stats[
            "backpressure_waits"
        ]
        if self._health is not None:
            self._publish_health(reason="final")
        return self.metrics

    def _pump(self) -> None:
        """Feed spouts and absorb replies until the cluster is quiescent."""
        while True:
            if self._recover_requested:
                self._handle_crash([])  # loss-triggered rollback, no death
            self._maybe_publish_health()
            self._service_capture_requests()
            self._service_rescale_requests()
            self._maybe_autoscale()
            progressed = self._pull_spouts()
            # Absorb every reply already waiting before shipping: remote
            # re-routes from several replies coalesce into fewer, larger
            # second-hop envelopes.
            drained = self._drain_replies(block=False)
            while self._drain_replies(block=False):
                pass
            if not drained and not progressed and self._outstanding > 0:
                drained = self._drain_replies(block=True)
            progressed |= drained
            self._flush_buffers()
            if progressed or self._outstanding > 0 or any(self._buffers):
                continue
            if not self._spouts_exhausted():
                continue
            if self._acker is not None and self._acker.n_pending:
                self._fail_pending()
                continue
            break

    def _flush_all_bolts(self) -> None:
        """End-of-stream flush, topological order, cluster-wide.

        The wait loop is deadline-bounded *and* crash-aware: on a quiet
        queue it drains outbox rings (a flushing worker may be pushing
        re-route frames) and checks worker liveness, so a crashed worker
        triggers recovery and a flush restart (:class:`_FlushInterrupted`)
        instead of hanging the coordinator until the deadline.
        """
        order = topological_bolt_order(self.topology)
        for name in order:
            self._drain_outstanding()
            if self._recover_requested:
                raise _FlushInterrupted(name)
            owners = sorted(
                {
                    self.plan.worker_of(name, task)
                    for task in range(self.topology.components[name].parallelism)
                }
            )
            for worker_id in owners:
                self._inboxes[worker_id].put(("flush", self.epoch, name))
            deadline = time.perf_counter() + self.reply_timeout
            pending = set(owners)
            while pending:
                if time.perf_counter() > deadline:
                    raise ExecutionError(f"timed out flushing bolt {name!r}")
                try:
                    kind, worker_id, epoch, payload = self._results_get(0.1)
                except queue_mod.Empty:
                    self._drain_outbox_rings()
                    dead = [
                        w
                        for w in range(self.n_workers)
                        if not self._processes[w].is_alive()
                    ]
                    if dead:
                        self._handle_crash(dead)
                        raise _FlushInterrupted(name)
                    continue
                if kind == "telemetry":
                    self._absorb_telemetry(worker_id, payload)
                    continue
                if epoch != self.epoch:
                    continue
                if kind == "flush_ok":
                    pending.discard(worker_id)
                    self._apply_reply(payload)
                elif kind == "done":
                    self._outstanding -= 1
                    self._apply_reply(payload)
            self._flush_buffers()
            self._drain_outstanding()
            if self._recover_requested:
                raise _FlushInterrupted(name)

    # -- merge-on-query ----------------------------------------------------

    def _query_shards(self, name: str) -> list[bytes]:
        """Ship bolt *name*'s shard snapshots home as raw stateship payloads.

        Must run on the thread driving the worker queues (the pump loop,
        or the caller when no pump is active) with outstanding envelopes
        drained, so the shards form a tuple-consistent cut.
        """
        comp = self.topology.components[name]
        for worker_id in range(self.n_workers):
            self._inboxes[worker_id].put(("query", self.epoch, name))
        shards: dict[tuple[str, int], bytes] = {}
        for payload in self._await_all("query_ok").values():
            shards.update(payload)
        return [shards[(name, task)] for task in range(comp.parallelism)]

    def _service_capture_requests(self) -> None:
        """Serve queued shard-capture requests (the serving snapshot hook).

        Runs between pump rounds — and once more as the run winds down —
        so a serving thread gets a frozen, consistent view (outstanding
        envelopes drained first) without ever touching the worker queues
        from its own thread. Failures are handed back to the requester
        rather than raised here: a snapshot that cannot be taken must not
        kill ingest.
        """
        while True:
            try:
                request = self._capture_requests.get_nowait()
            except queue_mod.Empty:
                return
            try:
                self._drain_outstanding()
                if self._recover_requested:
                    raise ExecutionError(
                        "cluster is recovering; snapshot capture retry needed"
                    )
                request.shards = self._query_shards(request.name)
            except BaseException as exc:  # hand the failure to the requester
                request.error = exc
            request.ready.set()

    def capture_shards(self, name: str, timeout: float | None = None) -> list[bytes]:
        """Snapshot bolt *name*'s shard partials as stateship payloads.

        The serving layer's snapshot hook, safe to call from another
        thread while :meth:`run` is pumping: the request queues up and the
        pump services it at a consistent point, so the returned payloads
        are one frozen snapshot-isolated cut of the bolt's state — ingest
        proceeds underneath, and later queries against the restored
        payloads can never see a torn or moving view. When no pump is
        active the caller services its own request under the control
        lock. Payloads are in task order; decode with
        :func:`repro.core.stateship.restore` (and merge for the
        merge-on-query fold).
        """
        comp = self.topology.components.get(name)
        if comp is None or comp.kind != "bolt":
            raise ParameterError(f"no bolt named {name!r}")
        request = _CaptureRequest(name)
        self._capture_requests.put(request)
        deadline = time.perf_counter() + (timeout or self.reply_timeout)
        while not request.ready.wait(0.0 if not self._pumping else 0.05):
            if not self._pumping and self._control_lock.acquire(blocking=False):
                # No pump running: serve the queue (ours included) inline.
                try:
                    self._ensure_started()
                    self._service_capture_requests()
                finally:
                    self._control_lock.release()
                continue
            if time.perf_counter() > deadline:
                raise ExecutionError(
                    f"timed out capturing {name!r} shard snapshots"
                )
        if request.error is not None:
            raise request.error
        assert request.shards is not None
        return request.shards

    # -- elastic runtime ---------------------------------------------------

    def _service_rescale_requests(self) -> None:
        """Serve queued rescale requests (the elastic-runtime hook).

        Same contract as :meth:`_service_capture_requests`: runs between
        pump rounds (or inline under the control lock) so the migration
        barrier drains from a thread that owns the worker queues.
        Failures go back to the requester — a rescale that cannot run
        (e.g. mid-recovery) must not kill ingest.
        """
        while True:
            try:
                request = self._rescale_requests.get_nowait()
            except queue_mod.Empty:
                return
            from repro.cluster.elastic.migrate import perform_rescale

            try:
                request.report = perform_rescale(
                    self,
                    n_workers=request.n_workers,
                    parallelism=request.parallelism,
                    reason=request.reason,
                    trigger="manual",
                )
            except BaseException as exc:  # hand the failure to the requester
                request.error = exc
            request.ready.set()

    def rescale(
        self,
        n_workers: int | None = None,
        parallelism: dict[str, int] | None = None,
        reason: str = "manual",
        timeout: float | None = None,
    ) -> Any:
        """Rescale the running cluster to *n_workers* / per-bolt
        *parallelism* without replaying the sources.

        Safe to call from any thread while :meth:`run` is pumping: the
        request queues up and the pump services it at a consistent point
        (quiescence barrier, capture, split/merge re-shard, rewire,
        restore — see :mod:`repro.cluster.elastic.migrate`). When no pump
        is active the caller services its own request under the control
        lock. Returns the timed
        :class:`~repro.cluster.elastic.migrate.RescaleReport` (None for a
        no-op request).
        """
        request = _RescaleRequest(n_workers, parallelism, reason)
        self._rescale_requests.put(request)
        deadline = time.perf_counter() + (timeout or self.reply_timeout)
        while not request.ready.wait(0.0 if not self._pumping else 0.05):
            if not self._pumping and self._control_lock.acquire(blocking=False):
                try:
                    self._ensure_started()
                    self._service_rescale_requests()
                finally:
                    self._control_lock.release()
                continue
            if time.perf_counter() > deadline:
                raise ExecutionError("timed out awaiting rescale")
        if request.error is not None:
            raise request.error
        return request.report

    def _maybe_autoscale(self) -> None:
        """Consult the autoscaler every ``tick_every`` pump iterations.

        The cadence is counted in pump rounds, not seconds, so decision
        sequences are workload-relative and reproducible. Decisions and
        applied rescales land as typed events in the flight recorder;
        a rescale refused because recovery is in flight simply retries
        at a later tick.
        """
        scaler = self.autoscaler
        if scaler is None or self._health is None:
            return
        self._pump_iterations += 1
        if self._pump_iterations % scaler.tick_every:
            return
        from repro.cluster.elastic.migrate import perform_rescale

        snapshot = self._publish_health(reason="autoscale")
        decision = scaler.observe(
            snapshot,
            n_workers=self.n_workers,
            parallelism={
                comp.name: comp.parallelism
                for comp in self.topology.components.values()
                if comp.kind == "bolt"
            },
        )
        if decision.action == "hold":
            return
        if self.flight is not None:
            self.flight.record_event("autoscale", decision.to_dict())
        try:
            report = perform_rescale(
                self,
                n_workers=decision.n_workers,
                parallelism=decision.parallelism,
                reason=decision.reason,
                trigger=f"autoscale_{decision.action}",
            )
        except ExecutionError:
            return  # recovery owns the cluster right now; try next tick
        if report is not None:
            scaler.note_applied(decision, report, clock=snapshot.clock)

    def bolt_states(self, name: str) -> list[Any]:
        """Per-task snapshot state of bolt *name*, in task order.

        Ships each shard's ``snapshot()`` across the process boundary and
        decodes it here — the raw partials behind :meth:`merged_synopsis`.
        """
        return [
            stateship.restore(payload)["state"]
            for payload in self.capture_shards(name)
        ]

    def merged_synopsis(self, name: str) -> Any:
        """The bolt's shard-partial synopses folded into one (merge-on-query).

        Requires the bolt's snapshot state to be a mergeable synopsis
        (:class:`~repro.common.mergeable.SynopsisBase`), e.g.
        :class:`~repro.platform.operators.SynopsisBolt`. Partials merge in
        task order, so the result is reproducible run to run.
        """
        partials = self.bolt_states(name)
        merged = partials[0]
        for partial in partials[1:]:
            merged.merge(partial)
        return merged
