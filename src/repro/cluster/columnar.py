"""Columnar tuple-batch codec for the shared-memory data plane.

The queue transport pickles every envelope — a list of delivery entries
``(component, task, values, root, tuple_id, trace)`` — through a
``multiprocessing`` pipe. This module replaces that wire format with a
self-describing binary *frame* of numpy columns, so a batch crosses the
process boundary as a handful of contiguous arrays instead of thousands
of small Python objects:

* per-entry plumbing (``task``, ``root``, ``tuple_id``) travels as
  ``uint32``/``int64``/``uint64`` columns;
* hashed routing keys (``hash64`` of the fields-grouping key, when the
  routing edge produced one) travel as a ``uint64`` ``khash`` column —
  the key-affinity signal shard-splitting/elastic rescale (ROADMAP
  item 3) will consume without re-hashing;
* payload values are encoded **by position**: all-``int`` columns as
  ``int64``, all-``float`` as ``float64``, all-``bool`` as ``uint8``,
  all-``str`` as one UTF-8 buffer plus a ``uint32`` char-length column.
  Decoding a string column is one ``bytes.decode`` and ``n`` slices; the
  resulting items feed ``SynopsisBolt.update_many`` /
  ``HashFamily.hash_batch`` with no pickle anywhere on the path;
* anything the columnar codes cannot carry exactly (mixed types, big
  ints, arbitrary objects, varying arity) falls back to a pickled blob
  for that column/group — *counted*, so the transport can report how
  many data-plane bytes were pickled (the bench's honesty column).

Entries are grouped by destination component (each component has one
value schema), but every entry records its position in the original
envelope and :func:`decode_entries` reassembles the exact original
order — the codec is invisible to delivery semantics, grouping
contracts and fingerprints.

Frames are epoch-tagged like every cluster message; a frame from before
a rollback is discarded by the reader exactly like a stale queue
envelope.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.common.exceptions import ExecutionError

#: Frame magic + format version (bump on any layout change).
MAGIC = 0x5AC0
VERSION = 1

_HEADER = struct.Struct("<HBBIIH")  # magic, version, flags, epoch, n, groups
_GROUP = struct.Struct("<HIB")  # comp_id, n, gflags
_U32 = struct.Struct("<I")

# Group flags.
_F_ROOTS_NONE = 0x01  # every root in the group is None: no roots column
_F_TRACES = 0x02  # sparse trace block present
_F_PICKLED = 0x04  # whole value block is one pickled list of tuples
_F_KHASH = 0x08  # hashed-routing-key uint64 column present

# Value-column codes.
_COL_INT64 = 0
_COL_FLOAT64 = 1
_COL_BOOL = 2
_COL_STR = 3
_COL_PICKLE = 4


@dataclass
class CodecStats:
    """Byte accounting for one or more encoded frames."""

    n_entries: int = 0
    frame_bytes: int = 0
    pickled_bytes: int = 0  # data-plane bytes that fell back to pickle

    def add(self, other: "CodecStats") -> None:
        """Fold *other*'s counts into this accumulator."""
        self.n_entries += other.n_entries
        self.frame_bytes += other.frame_bytes
        self.pickled_bytes += other.pickled_bytes


def component_table(names: Sequence[str]) -> tuple[dict[str, int], list[str]]:
    """A deterministic name<->id mapping shared by both frame ends."""
    ordered = sorted(names)
    return {name: i for i, name in enumerate(ordered)}, ordered


def frame_epoch(frame: bytes) -> int:
    """Peek a frame's epoch without decoding it.

    The coordinator's forwarding fast path uses this to drop stale
    traffic and route everything else as a pure byte copy.
    """
    magic, version, __, epoch, __, __ = _HEADER.unpack_from(frame, 0)
    if magic != MAGIC or version != VERSION:
        raise ExecutionError("not a columnar tuple frame")
    return epoch


def _encode_column(col: list) -> tuple[bytes, int]:
    """Encode one value position; returns (bytes, pickled_bytes)."""
    kinds = set(map(type, col))
    if kinds == {int}:
        try:
            raw = np.fromiter(col, dtype=np.int64, count=len(col)).tobytes()
            return bytes([_COL_INT64]) + raw, 0
        except (OverflowError, ValueError):
            pass  # out-of-range ints: fall through to pickle
    elif kinds == {float}:
        raw = np.fromiter(col, dtype=np.float64, count=len(col)).tobytes()
        return bytes([_COL_FLOAT64]) + raw, 0
    elif kinds == {bool}:
        raw = np.fromiter(col, dtype=np.uint8, count=len(col)).tobytes()
        return bytes([_COL_BOOL]) + raw, 0
    elif kinds == {str}:
        lens = np.fromiter(map(len, col), dtype=np.uint32, count=len(col))
        data = "".join(col).encode("utf-8")
        return (
            bytes([_COL_STR]) + lens.tobytes() + _U32.pack(len(data)) + data,
            0,
        )
    blob = pickle.dumps(col, protocol=pickle.HIGHEST_PROTOCOL)
    return bytes([_COL_PICKLE]) + _U32.pack(len(blob)) + blob, len(blob)


def _decode_column(mv: memoryview, offset: int, n: int) -> tuple[list, int]:
    code = mv[offset]
    offset += 1
    if code == _COL_INT64:
        col = np.frombuffer(mv, np.int64, n, offset).tolist()
        return col, offset + 8 * n
    if code == _COL_FLOAT64:
        col = np.frombuffer(mv, np.float64, n, offset).tolist()
        return col, offset + 8 * n
    if code == _COL_BOOL:
        col = np.frombuffer(mv, np.uint8, n, offset)
        return [bool(b) for b in col.tolist()], offset + n
    if code == _COL_STR:
        lens = np.frombuffer(mv, np.uint32, n, offset)
        offset += 4 * n
        (nbytes,) = _U32.unpack_from(mv, offset)
        offset += 4
        text = bytes(mv[offset : offset + nbytes]).decode("utf-8")
        ends = np.cumsum(lens).tolist()
        col, start = [], 0
        for end in ends:
            col.append(text[start:end])
            start = end
        return col, offset + nbytes
    if code == _COL_PICKLE:
        (nbytes,) = _U32.unpack_from(mv, offset)
        offset += 4
        col = pickle.loads(mv[offset : offset + nbytes])
        return col, offset + nbytes
    raise ExecutionError(f"unknown column code {code}")


def encode_entries(
    entries: Sequence[tuple],
    epoch: int,
    comp_ids: dict[str, int],
    khashes: Sequence[int | None] | None = None,
) -> tuple[bytes, CodecStats]:
    """Encode one envelope of delivery entries into a columnar frame.

    ``khashes`` is an optional parallel sequence of hashed routing keys
    (``None`` where the routing edge had no key hash).
    """
    stats = CodecStats(n_entries=len(entries))
    # Stable bucketing by destination component: per-(component, task)
    # relative order is preserved, and the per-entry ``order`` column lets
    # decode rebuild the exact envelope order.
    groups: dict[str, list[int]] = {}
    for pos, entry in enumerate(entries):
        groups.setdefault(entry[0], []).append(pos)
    parts = [b""]  # placeholder for the header
    for component, positions in groups.items():
        n = len(positions)
        sub = [entries[p] for p in positions]
        gflags = 0
        cols = [np.fromiter(positions, dtype=np.uint32, count=n).tobytes()]
        cols.append(
            np.fromiter((e[1] for e in sub), dtype=np.uint32, count=n).tobytes()
        )
        if all(e[3] is None for e in sub):
            gflags |= _F_ROOTS_NONE
        else:
            cols.append(
                np.fromiter(
                    (-1 if e[3] is None else e[3] for e in sub),
                    dtype=np.int64,
                    count=n,
                ).tobytes()
            )
        cols.append(
            np.fromiter((e[4] for e in sub), dtype=np.uint64, count=n).tobytes()
        )
        group_kh = None if khashes is None else [khashes[p] for p in positions]
        if group_kh is not None and any(h is not None for h in group_kh):
            gflags |= _F_KHASH
            cols.append(
                np.fromiter(
                    (0 if h is None else h for h in group_kh),
                    dtype=np.uint64,
                    count=n,
                ).tobytes()
            )
            # Presence mask: a hash of 0 is legal, None means "no key hash".
            cols.append(
                np.fromiter(
                    (0 if h is None else 1 for h in group_kh),
                    dtype=np.uint8,
                    count=n,
                ).tobytes()
            )
        traced = [(i, e[5]) for i, e in enumerate(sub) if e[5] is not None]
        if traced:
            gflags |= _F_TRACES
            k = len(traced)
            cols.append(_U32.pack(k))
            cols.append(
                np.fromiter((i for i, __ in traced), dtype=np.uint32, count=k).tobytes()
            )
            for field in range(3):  # trace_id, span_id, attempt
                cols.append(
                    np.fromiter(
                        (t[field] for __, t in traced), dtype=np.uint64, count=k
                    ).tobytes()
                )
        # Value columns (uniform arity required for the columnar path).
        arity = len(sub[0][2])
        if any(len(e[2]) != arity for e in sub) or arity > 255:
            gflags |= _F_PICKLED
            blob = pickle.dumps(
                [e[2] for e in sub], protocol=pickle.HIGHEST_PROTOCOL
            )
            stats.pickled_bytes += len(blob)
            values_part = _U32.pack(len(blob)) + blob
        else:
            column_parts = [bytes([arity])]
            for j in range(arity):
                encoded, pickled = _encode_column([e[2][j] for e in sub])
                stats.pickled_bytes += pickled
                column_parts.append(encoded)
            values_part = b"".join(column_parts)
        parts.append(_GROUP.pack(comp_ids[component], n, gflags))
        parts.extend(cols)
        parts.append(values_part)
    parts[0] = _HEADER.pack(MAGIC, VERSION, 0, epoch, len(entries), len(groups))
    frame = b"".join(parts)
    stats.frame_bytes = len(frame)
    return frame, stats


def decode_entries(
    frame: bytes | memoryview, comp_names: Sequence[str]
) -> tuple[int, list[tuple], list[int | None]]:
    """Decode a frame back into ``(epoch, entries, khashes)``.

    ``entries`` reproduces the encoded envelope exactly — same entry
    tuples, same order. ``khashes`` is the parallel hashed-key list
    (``None`` where absent).
    """
    mv = memoryview(frame)
    magic, version, __, epoch, n_entries, n_groups = _HEADER.unpack_from(mv, 0)
    if magic != MAGIC or version != VERSION:
        raise ExecutionError(
            f"bad frame header (magic={magic:#x}, version={version})"
        )
    offset = _HEADER.size
    entries: list[Any] = [None] * n_entries
    khashes: list[int | None] = [None] * n_entries
    for __ in range(n_groups):
        comp_id, n, gflags = _GROUP.unpack_from(mv, offset)
        offset += _GROUP.size
        component = comp_names[comp_id]
        order = np.frombuffer(mv, np.uint32, n, offset).tolist()
        offset += 4 * n
        tasks = np.frombuffer(mv, np.uint32, n, offset).tolist()
        offset += 4 * n
        if gflags & _F_ROOTS_NONE:
            roots: list[int | None] = [None] * n
        else:
            roots = [
                None if r == -1 else r
                for r in np.frombuffer(mv, np.int64, n, offset).tolist()
            ]
            offset += 8 * n
        tuple_ids = np.frombuffer(mv, np.uint64, n, offset).tolist()
        offset += 8 * n
        group_khashes: list[int | None] = [None] * n
        if gflags & _F_KHASH:
            raw_kh = np.frombuffer(mv, np.uint64, n, offset).tolist()
            offset += 8 * n
            present = np.frombuffer(mv, np.uint8, n, offset).tolist()
            offset += n
            group_khashes = [
                raw_kh[i] if present[i] else None for i in range(n)
            ]
        traces: list[tuple | None] = [None] * n
        if gflags & _F_TRACES:
            (k,) = _U32.unpack_from(mv, offset)
            offset += 4
            idx = np.frombuffer(mv, np.uint32, k, offset).tolist()
            offset += 4 * k
            fields = []
            for __ in range(3):
                fields.append(np.frombuffer(mv, np.uint64, k, offset).tolist())
                offset += 8 * k
            for j, i in enumerate(idx):
                traces[i] = (fields[0][j], fields[1][j], fields[2][j])
        if gflags & _F_PICKLED:
            (nbytes,) = _U32.unpack_from(mv, offset)
            offset += 4
            values = pickle.loads(mv[offset : offset + nbytes])
            offset += nbytes
        else:
            arity = mv[offset]
            offset += 1
            columns = []
            for __ in range(arity):
                col, offset = _decode_column(mv, offset, n)
                columns.append(col)
            values = list(zip(*columns)) if arity else [()] * n
        for i in range(n):
            pos = order[i]
            entries[pos] = (
                component,
                tasks[i],
                values[i],
                roots[i],
                tuple_ids[i],
                traces[i],
            )
            khashes[pos] = group_khashes[i]
    return epoch, entries, khashes


def encode_frames(
    entries: Sequence[tuple],
    epoch: int,
    comp_ids: dict[str, int],
    max_frame: int,
    khashes: Sequence[int | None] | None = None,
) -> Iterator[tuple[bytes, CodecStats]]:
    """Encode *entries*, splitting into multiple frames under *max_frame*.

    Splitting halves the envelope recursively (order within each half is
    preserved, and halves are yielded in order, so the concatenated
    decode equals the unsplit decode). A single entry whose lone frame
    still exceeds *max_frame* is an error — the ring is undersized for
    the payload.
    """
    frame, stats = encode_entries(
        entries, epoch, comp_ids, khashes=khashes
    )
    if len(frame) <= max_frame or len(entries) <= 1:
        if len(frame) > max_frame:
            raise ExecutionError(
                f"one delivery encodes to {len(frame)} bytes, above the "
                f"{max_frame}-byte frame limit; raise ring_capacity"
            )
        yield frame, stats
        return
    mid = len(entries) // 2
    halves = ((entries[:mid], None if khashes is None else khashes[:mid]),
              (entries[mid:], None if khashes is None else khashes[mid:]))
    for sub_entries, sub_khashes in halves:
        yield from encode_frames(
            sub_entries, epoch, comp_ids, max_frame, khashes=sub_khashes
        )
