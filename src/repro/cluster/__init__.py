"""Multi-process sharded topology execution (Table 2's cluster design space).

The single-process :class:`~repro.platform.executor.LocalExecutor` realizes
Storm's model on one core; this package spreads the same topology across N
worker *processes*:

* :mod:`repro.cluster.plan` — the coordinator plans each bolt's declared
  ``parallelism`` into per-worker shard assignments (Storm worker slots,
  Samza partition→container mapping).
* :mod:`repro.cluster.worker` — the child-process event loop: local task
  queues, worker-side routing, fault injection, checkpoint capture.
* :mod:`repro.cluster.coordinator` — :class:`ClusterExecutor`: feeds
  spouts, routes honouring the grouping contracts, tracks tuple trees
  (XOR acker), takes cluster-wide checkpoints, detects worker crashes and
  performs rollback recovery, and answers queries by merging
  shard-partial synopses (:meth:`ClusterExecutor.merged_synopsis`,
  merge-on-query).
* :mod:`repro.cluster.shm` / :mod:`repro.cluster.columnar` — the
  zero-copy data plane: tuple batches travel as columnar frames over
  shared-memory SPSC rings inherited through fork; ``multiprocessing``
  queues carry only control traffic (doorbells, acks, checkpoint
  barriers, crash/respawn). ``transport="queue"`` keeps the legacy
  pickled-batch baseline for A/B benchmarking.
* :mod:`repro.cluster.obsbridge` — per-worker metrics/spans exported back
  to the parent and aggregated into one :mod:`repro.obs` registry.

Field-grouped keys stay shard-local, so per-shard synopses are *exact*
partials of the single-process state; ``SynopsisBase.merge`` folds them
exactly at query time.
"""

from repro.cluster.columnar import CodecStats, component_table
from repro.cluster.coordinator import ClusterExecutor
from repro.cluster.elastic import (
    AutoscaleDecision,
    BackpressureAutoscaler,
    PressurePolicy,
    RescaleReport,
)
from repro.cluster.plan import ShardPlan, plan_topology
from repro.cluster.shm import ShmChannel, SpscRing, leaked_segments

__all__ = [
    "ClusterExecutor",
    "ShardPlan",
    "plan_topology",
    "SpscRing",
    "ShmChannel",
    "leaked_segments",
    "CodecStats",
    "component_table",
    "AutoscaleDecision",
    "BackpressureAutoscaler",
    "PressurePolicy",
    "RescaleReport",
]
