"""Cross-process observability: export a worker's metric plane, absorb it
into the coordinator's registry.

Each worker owns a private :class:`~repro.obs.metrics.MetricRegistry` and
span buffer (instrument objects hold t-digests and closures — they do not
cross process boundaries). At export time the worker flattens its registry
into plain records: counters/gauges ship their per-label values, histograms
ship their t-digest **bytes** (so tail quantiles merge exactly, not just
counts and sums). The coordinator absorbs every record into its own
registry with a ``worker`` label prepended — ``repro-obs`` then shows one
cluster-wide view with per-worker breakdown, the same shape Storm's UI and
Heron's metrics manager present.

Spans travel as :class:`~repro.obs.tracing.Span` dataclasses (picklable)
and are re-recorded into the parent collector.

This module is the one-shot, accumulate-semantics protocol (kept as the
compatibility baseline and for in-process test drivers). Running clusters
use the streaming sibling — :mod:`repro.obs.live` — whose periodic delta
flushes are what bound crash-time span loss to a single flush interval
(here, a worker that crashes before export loses *all* its spans) and
replace — rather than accumulate — per-worker metric state.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracing import Span, SpanCollector
from repro.quantiles.tdigest import TDigest


def export_metrics(registry: MetricRegistry) -> list[dict[str, Any]]:
    """Flatten *registry* into plain, picklable records."""
    records: list[dict[str, Any]] = []
    for family in registry.families():
        base = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
        }
        for labels, child in family._label_tuples():
            record = dict(base)
            record["labels"] = dict(labels)
            if isinstance(family, Histogram):
                record["count"] = child.count
                record["sum"] = child.sum
                record["digest"] = child.digest.to_bytes()
                record["delta"] = family.delta
            else:
                record["value"] = child.value
            records.append(record)
    return records


def absorb_metrics(
    registry: MetricRegistry, records: list[dict[str, Any]], worker: int
) -> None:
    """Merge exported *records* into *registry* under a ``worker`` label."""
    for record in records:
        labelnames = ["worker", *record["labelnames"]]
        labels = {"worker": str(worker), **record["labels"]}
        if record["kind"] == Counter.kind:
            family = registry.counter(record["name"], record["help"], labelnames)
            family.labels(**labels).inc(record["value"])
        elif record["kind"] == Gauge.kind:
            family = registry.gauge(record["name"], record["help"], labelnames)
            family.labels(**labels).set(record["value"])
        elif record["kind"] == Histogram.kind:
            family = registry.histogram(
                record["name"], record["help"], labelnames, delta=record["delta"]
            )
            child = family.labels(**labels)
            child.digest.merge(TDigest.from_bytes(record["digest"]))
            child.count += record["count"]
            child.sum += record["sum"]
        # Unknown kinds are dropped silently: a newer worker build must not
        # wedge an older coordinator during a rolling experiment.


def absorb_spans(collector: SpanCollector, spans: list[Span]) -> None:
    """Re-record worker *spans* into the coordinator's collector."""
    for span in spans:
        collector.record(span)
