"""The elasticity bench: does autoscaling beat fixed provisioning?

``repro-bench --elastic`` drives the seeded traffic-spike workload
(:mod:`repro.workloads.spike`) through two clusters over *identical*
records:

* **fixed** — a :class:`ClusterExecutor` frozen at the starting shape
  (1 worker, parallelism 1): the "provisioned for the calm" cluster the
  paper's spike scenario punishes;
* **elastic** — the same cluster started identically but running a
  :class:`~repro.cluster.elastic.autoscaler.BackpressureAutoscaler`,
  which must ride the spike up to ``max_workers`` and hand capacity back
  in the tail (the canonical 1→8→2 trajectory).

The row is ``repro.bench/v2``: ``seq_*`` is the fixed run, ``batch_*``
the elastic run, ``speedup`` their ratio — elastic wins exactly when the
work reduction from splitting the quantile shards outruns the rescale
overhead it paid. The elastic extras quantify that overhead per the
rescale reports: ``rescale_latency_s`` (worst single rescale, barrier to
restore), ``tuples_in_flight`` (worst backlog a migration barrier had to
drain), ``lag_recovery_s`` (how long the watermark backlog took to fall
back under 10% of its post-rescale peak).

``equivalent`` is the exactly-once elasticity contract: the merged
synopsis of every tracked bolt — after five live re-shardings — must
fingerprint-match a single-process :class:`LocalExecutor` run, and the
fixed run must match it too. A rescale schedule is an implementation
detail; the answer is not allowed to notice it.

:func:`run_spike_demo` is the same elastic run packaged as a pass/fail
gate (trajectory reached ``max_workers``, scaled back down, fingerprints
matched, zero leaked shm segments) for CI's ``elastic-smoke`` job.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.fingerprint import state_fingerprint
from repro.bench.runner import BENCH_SCHEMA_V2, available_cpu_count
from repro.cluster.coordinator import ClusterExecutor
from repro.cluster.elastic import BackpressureAutoscaler, PressurePolicy
from repro.cluster.shm import leaked_segments
from repro.common.exceptions import ParameterError
from repro.obs.context import Observability
from repro.platform.executor import LocalExecutor
from repro.workloads.spike import (
    SPIKE_TRACKED_BOLTS,
    build_spike_topology,
    spike_records,
)

#: The synopsis bolts whose merged state must survive rescaling intact.
SPIKE_SYNOPSES = ("hot_keys", "audience", "latency")

#: Executor shape shared by the fixed and elastic runs (and the demo):
#: small batches and a tight credit window keep the pressure signals
#: responsive at 1 worker; the window scales with rescales (see
#: ``repro.cluster.elastic.migrate._rewire``).
_EXECUTOR_KW: dict[str, Any] = {
    "semantics": "exactly_once",
    "transport": "shm",
    "batch_size": 64,
    "max_outstanding": 8,
    "checkpoint_interval": 4_000,
}


def demo_policy(
    min_workers: int = 2, max_workers: int = 8
) -> PressurePolicy:
    """The tuned spike policy: fast up, deliberate down, short cooldown."""
    return PressurePolicy(
        min_workers=min_workers,
        max_workers=max_workers,
        up_consecutive=2,
        down_consecutive=4,
        cooldown_ticks=2,
        track_parallelism=SPIKE_TRACKED_BOLTS,
    )


def _reference_fingerprints(records: list, amplify: int) -> dict[str, str]:
    """Single-process ground truth for every tracked synopsis."""
    executor = LocalExecutor(build_spike_topology(records, amplify=amplify))
    executor.run()
    return {
        name: state_fingerprint(executor.bolt_instances(name)[0].synopsis)
        for name in SPIKE_SYNOPSES
    }


def _fixed_run(
    records: list, amplify: int, reference: dict[str, str]
) -> tuple[float, bool]:
    """Fixed-at-start-shape wall time + equivalence to the reference."""
    executor = ClusterExecutor(
        build_spike_topology(records, amplify=amplify),
        n_workers=1,
        **_EXECUTOR_KW,
    )
    with executor:
        start = time.perf_counter()
        executor.run()
        seconds = time.perf_counter() - start
        fingerprints = {
            name: state_fingerprint(executor.merged_synopsis(name))
            for name in SPIKE_SYNOPSES
        }
    return seconds, fingerprints == reference


def _elastic_run(
    records: list,
    amplify: int,
    reference: dict[str, str],
    policy: PressurePolicy,
    tick_every: int,
    flight_path: str | None = None,
) -> dict[str, Any]:
    """One autoscaled run; returns timings, trajectory and gate facts."""
    scaler = BackpressureAutoscaler(policy, tick_every=tick_every)
    executor = ClusterExecutor(
        build_spike_topology(records, amplify=amplify),
        n_workers=1,
        obs=Observability.create(sample_rate=0),
        autoscaler=scaler,
        flight_path=flight_path,
        **_EXECUTOR_KW,
    )
    with executor:
        start = time.perf_counter()
        executor.run()
        seconds = time.perf_counter() - start
        fingerprints = {
            name: state_fingerprint(executor.merged_synopsis(name))
            for name in SPIKE_SYNOPSES
        }
        reports = list(executor.rescale_reports)
    if flight_path is not None and executor.flight is not None:
        # The crash path dumps automatically; a clean demo run dumps here
        # so CI always gets the rescale/autoscale event timeline.
        executor.flight.dump(flight_path, reason="demo")
    path = [1] + [report.to_workers for report in reports]
    recoveries = [
        report.lag_recovery_s
        for report in reports
        if report.lag_recovery_s is not None
    ]
    return {
        "seconds": seconds,
        "equivalent": fingerprints == reference,
        "workers_path": path,
        "reports": [report.to_dict() for report in reports],
        "rescales": len(reports),
        "peak_workers": max(path),
        "final_workers": path[-1],
        "rescale_latency_s": max(
            (report.total_s for report in reports), default=0.0
        ),
        "tuples_in_flight": max(
            (report.in_flight_at_request for report in reports), default=0
        ),
        "lag_recovery_s": max(recoveries, default=0.0),
        "leaked_segments": [seg.name for seg in leaked_segments()],
        "autoscaler": scaler.describe(),
    }


def run_spike_demo(
    n_calm: int = 3_000,
    n_spike: int = 10_000,
    n_tail: int = 8_000,
    seed: int = 7,
    amplify: int = 48,
    min_workers: int = 2,
    max_workers: int = 8,
    tick_every: int = 8,
    flight_path: str | None = None,
) -> dict[str, Any]:
    """Run the autoscaled spike end to end and report the gate verdict.

    ``passed`` requires the full elasticity story in one run: the cluster
    reached ``max_workers`` under the spike, handed capacity back down to
    ``min_workers`` in the tail, kept every merged synopsis
    fingerprint-identical to the single-process reference, and left zero
    shm segments behind. CI's ``elastic-smoke`` job calls this with a
    smaller workload and ``max_workers=4`` (the 1→4→2 trajectory).
    """
    if max_workers < min_workers:
        raise ParameterError("max_workers must be >= min_workers")
    records = spike_records(
        n_calm=n_calm, n_spike=n_spike, n_tail=n_tail, seed=seed
    )
    reference = _reference_fingerprints(records, amplify)
    outcome = _elastic_run(
        records,
        amplify,
        reference,
        demo_policy(min_workers=min_workers, max_workers=max_workers),
        tick_every,
        flight_path=flight_path,
    )
    outcome["passed"] = (
        outcome["equivalent"]
        and outcome["peak_workers"] == max_workers
        and outcome["final_workers"] == min_workers
        and not outcome["leaked_segments"]
    )
    return outcome


def run_elastic_bench(
    n_calm: int = 3_000,
    n_spike: int = 10_000,
    n_tail: int = 8_000,
    seed: int = 7,
    amplify: int = 48,
    max_workers: int = 8,
    smoke: bool = False,
) -> dict:
    """Fixed vs elastic over the spike; returns a ``repro.bench/v2`` payload."""
    for name, count in (
        ("n_calm", n_calm),
        ("n_spike", n_spike),
        ("n_tail", n_tail),
    ):
        if count <= 0:
            raise ParameterError(f"{name} must be positive")
    if amplify <= 0:
        raise ParameterError("amplify must be positive")
    records = spike_records(
        n_calm=n_calm, n_spike=n_spike, n_tail=n_tail, seed=seed
    )
    reference = _reference_fingerprints(records, amplify)
    fixed_seconds, fixed_equivalent = _fixed_run(records, amplify, reference)
    elastic = _elastic_run(
        records,
        amplify,
        reference,
        demo_policy(max_workers=max_workers),
        tick_every=8,
    )
    n_items = len(records)
    trajectory = "→".join(str(w) for w in elastic["workers_path"])
    row = {
        "synopsis": f"elastic[{trajectory}]",
        "workload": "spike/exactly_once",
        "n_items": n_items,
        # seq_* = fixed at the starting shape, batch_* = autoscaled run
        # over the same records; speedup = what elasticity bought.
        "seq_seconds": fixed_seconds,
        "batch_seconds": elastic["seconds"],
        "seq_items_per_s": n_items / fixed_seconds,
        "batch_items_per_s": n_items / elastic["seconds"],
        "speedup": fixed_seconds / elastic["seconds"],
        "equivalent": fixed_equivalent and elastic["equivalent"],
        "rescales": elastic["rescales"],
        "peak_workers": elastic["peak_workers"],
        "final_workers": elastic["final_workers"],
        "rescale_latency_s": elastic["rescale_latency_s"],
        "tuples_in_flight": elastic["tuples_in_flight"],
        "lag_recovery_s": elastic["lag_recovery_s"],
        "leaked_segments": len(elastic["leaked_segments"]),
        "n_cores": available_cpu_count(),
    }
    return {
        "schema": BENCH_SCHEMA_V2,
        "config": {
            "n_items": n_items,
            "repeats": 1,
            "seed": seed,
            "smoke": smoke,
            "mode": "elastic-spike",
            "n_calm": n_calm,
            "n_spike": n_spike,
            "n_tail": n_tail,
            "amplify": amplify,
            "max_workers": max_workers,
            "n_cores": available_cpu_count(),
        },
        "results": [row],
    }
