"""Deterministic structural fingerprints of synopsis state.

The batch-ingest invariant says ``update_many(items)`` must leave a
synopsis in **bit-identical state** to ``for item in items: update(item)``.
"Bit-identical" needs an observable definition: this module renders an
object's full state graph (``__dict__``/``__slots__``, numpy arrays down to
their raw bytes, dicts in a canonical order) into a hashable tree, so two
states are equivalent iff their fingerprints compare equal. Both the bench
runner (runtime verification of every measured case) and the registry-wide
equivalence tests consume it.
"""

from __future__ import annotations

import collections
import math
import random
from typing import Any

import numpy as np

# Attributes whose concrete layout is an implementation accident rather
# than synopsis state (e.g. heap orderings that admit several equivalent
# shapes, monotonic tiebreak counters, StreamSummary's extractor plan —
# callable configuration that deliberately does not cross process
# boundaries). Excluding them keeps the fingerprint about *observable*
# state. Kept deliberately tiny.
_VOLATILE_ATTRS = frozenset({"_heap", "_tiebreak", "_extractors", "_plan"})


def _float_key(value: float) -> tuple:
    # NaN != NaN, so normalise it; otherwise keep the exact bit pattern
    # via repr (repr round-trips floats in Python 3).
    if math.isnan(value):
        return ("float", "nan")
    return ("float", repr(value))


def state_fingerprint(obj: Any, *, _seen: frozenset[int] = frozenset()) -> Any:
    """A canonical, comparable rendering of *obj*'s state graph.

    * numpy arrays become ``(dtype, shape, raw bytes)`` — bit-identical
      means identical here, which is the point;
    * dicts are sorted by ``repr(key)`` so mixed-type key sets (ints and
      strings in one counter table) have a total order;
    * ``random.Random`` / numpy ``Generator`` collapse to their internal
      state so RNG position participates in equivalence;
    * callables and volatile attributes are skipped (extractor functions
      are configuration, not stream state);
    * cycles are cut by identity.
    """
    if id(obj) in _seen:
        return ("cycle",)
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return (type(obj).__name__, obj)
    if isinstance(obj, float):
        return _float_key(obj)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return ("ndarray", str(arr.dtype), arr.shape, arr.tobytes())
    if isinstance(obj, np.generic):
        return ("npscalar", str(obj.dtype), obj.tobytes())
    seen = _seen | {id(obj)}
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                (state_fingerprint(k, _seen=seen), state_fingerprint(v, _seen=seen))
                for k, v in sorted(obj.items(), key=lambda kv: repr(kv[0]))
            ),
        )
    if isinstance(obj, (list, tuple, collections.deque)):
        return (
            type(obj).__name__,
            tuple(state_fingerprint(it, _seen=seen) for it in obj),
        )
    if isinstance(obj, (set, frozenset)):
        return (
            "set",
            tuple(
                sorted(
                    (state_fingerprint(it, _seen=seen) for it in obj),
                    key=repr,
                )
            ),
        )
    if isinstance(obj, random.Random):
        return ("random.Random", state_fingerprint(obj.getstate(), _seen=seen))
    if isinstance(obj, np.random.Generator):
        return ("np.Generator", repr(obj.bit_generator.state))
    if callable(obj) and not hasattr(obj, "__dict__"):
        return ("callable",)
    state: dict[str, Any] = {}
    if hasattr(obj, "__dict__"):
        state.update(vars(obj))
    for slot in getattr(type(obj), "__slots__", ()):
        if hasattr(obj, slot):
            state[slot] = getattr(obj, slot)
    if not state:
        if callable(obj):
            return ("callable",)
        return ("opaque", type(obj).__name__, repr(obj))
    parts = tuple(
        (name, state_fingerprint(value, _seen=seen))
        for name, value in sorted(state.items())
        if name not in _VOLATILE_ATTRS and not callable(value)
    )
    return (type(obj).__name__, parts)
