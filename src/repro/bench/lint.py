"""The streamlint bench: what does a full-tree analysis run cost?

``repro-bench --lint`` times :func:`repro.analysis.run_analysis` over the
``src/repro`` tree in four configurations — cold vs. warm result cache,
crossed with 1 worker vs. ``--jobs auto`` — and reuses the
``repro.bench/v1`` row shape with the two timed columns mapped as

* ``seq_*``   → the cold single-process run (the baseline every v1 user
  paid on every invocation),
* ``batch_*`` → the measured configuration,

so ``speedup`` is the wall-time ratio over that baseline — the
``warm_*`` rows are the headline: a warm cache skips parsing entirely
and project rules re-run from cached facts alone. ``equivalent``
asserts every configuration reports byte-identical findings: the cache
and the process pool are allowed to change *when* work happens, never
*what* the analyzer says.

This module may read the wall clock: it is part of the measurement
harness (see SL004's exemption for ``repro.bench``).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Callable

from repro.bench.runner import BENCH_SCHEMA
from repro.common.exceptions import ParameterError

#: The four measured configurations: (name, warm cache?, auto jobs?).
CASES: tuple[tuple[str, bool, bool], ...] = (
    ("cold_1job", False, False),
    ("cold_auto", False, True),
    ("warm_1job", True, False),
    ("warm_auto", True, True),
)


def default_target() -> Path:
    """The ``src/repro`` tree the self-clean gate analyzes."""
    import repro

    return Path(repro.__file__).resolve().parent


def _auto_jobs() -> int:
    return os.cpu_count() or 1


def _time_case(
    run: Callable[[], object], repeats: int, reset: Callable[[], None]
) -> tuple[float, object]:
    """Best-of-*repeats* wall time; ``reset`` restores preconditions
    (e.g. deletes the cache file so a cold run stays cold)."""
    best = float("inf")
    result: object = None
    for __ in range(repeats):
        reset()
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def run_lint_bench(
    target: Path | None = None,
    repeats: int = 3,
    seed: int = 7,
    smoke: bool = False,
) -> dict:
    """Time full-tree analysis cold/warm × 1/auto jobs; returns a
    ``repro.bench/v1`` payload."""
    from repro.analysis import run_analysis

    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    if target is None:
        target = default_target()
        if smoke:
            target = target / "analysis"
    target = Path(target)
    if not target.exists():
        raise ParameterError(f"no such analysis target: {target}")
    auto = _auto_jobs()
    workload = "src/repro" if not smoke else "src/repro/analysis"
    results = []
    baseline_seconds: float | None = None
    baseline_findings: list | None = None
    with tempfile.TemporaryDirectory(prefix="streamlint-bench-") as scratch:
        cache = Path(scratch) / "cache.json"

        def clear_cache() -> None:
            cache.unlink(missing_ok=True)

        def warm_cache() -> None:
            if not cache.exists():
                run_analysis([target], cache_path=cache)

        for name, warm, use_auto in CASES:
            jobs = auto if use_auto else 1
            seconds, outcome = _time_case(
                lambda j=jobs: run_analysis([target], jobs=j, cache_path=cache),
                repeats,
                warm_cache if warm else clear_cache,
            )
            findings = [f.to_dict() for f in outcome.findings]
            if baseline_seconds is None:
                baseline_seconds, baseline_findings = seconds, findings
            results.append(
                {
                    "synopsis": f"{name}[jobs={jobs}]",
                    "workload": workload,
                    "n_items": outcome.file_count,
                    # seq_* = cold single-process baseline, batch_* = this
                    # configuration (see module docstring).
                    "seq_seconds": baseline_seconds,
                    "batch_seconds": seconds,
                    "seq_items_per_s": outcome.file_count / baseline_seconds,
                    "batch_items_per_s": outcome.file_count / seconds,
                    "speedup": baseline_seconds / seconds,
                    "equivalent": findings == baseline_findings,
                }
            )
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "n_items": results[0]["n_items"],
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "n_cores": auto,
            "target": workload,
        },
        "results": results,
    }


def warm_speedup(payload: dict) -> float:
    """The headline number: warm ``--jobs auto`` speedup over cold 1-job."""
    for entry in payload["results"]:
        if entry["synopsis"].startswith("warm_auto"):
            return entry["speedup"]
    raise ValueError("payload has no warm_auto row")
