"""The observability-overhead bench: is the obs plane honest about cost?

An observability layer that taxes the hot path defeats its purpose
(Heron's motivation paper is one long complaint about exactly this), so
``repro-bench --obs`` measures it: the demo topology runs **bare**
(``obs=None``) and **instrumented** (metrics + tracing at a given sample
rate + an instrumented synopsis), best-of-*repeats* each, over identical
seeded records. Results reuse the ``repro.bench/v1`` row shape with the
two timed columns mapped as

* ``seq_*``   → the uninstrumented baseline,
* ``batch_*`` → the instrumented run,

so ``speedup`` is the instrumented/baseline throughput **ratio** — 1.0
means free, 0.9 means 10% throughput loss (the acceptance floor for the
default ≤1% sampling). ``equivalent`` asserts the observed sink payloads
are identical with observability on and off: watching the stream must
not change the stream.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.runner import BENCH_SCHEMA
from repro.common.exceptions import ParameterError
from repro.obs.context import Observability
from repro.obs.demo import build_demo_topology, demo_records
from repro.platform.executor import LocalExecutor

#: Sampling rates measured by default: off, the 1% default, full firehose.
DEFAULT_RATES = (0.0, 0.01, 1.0)


def _time_run(
    records: list,
    repeats: int,
    seed: int,
    sample_rate: float | None,
    semantics: str,
) -> tuple[float, list, Any]:
    """Best-of-*repeats* wall time for one configuration.

    ``sample_rate=None`` runs bare (``obs=None``); otherwise an
    :class:`Observability` bundle with that trace rate is threaded
    through (0.0 = metrics only). Returns (seconds, sink payload counts,
    last obs bundle)."""
    best = float("inf")
    results: list = []
    obs = None
    for __ in range(repeats):
        if sample_rate is None:
            obs = None
            topology = build_demo_topology(records, None)
        else:
            obs = Observability.create(sample_rate=sample_rate, seed=seed)
            topology = build_demo_topology(records, obs)
        executor = LocalExecutor(topology, semantics=semantics, obs=obs)
        start = time.perf_counter()
        executor.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        results = _observable_state(executor)
    return best, results, obs


def _observable_state(executor: LocalExecutor) -> list:
    """The run's observable output: final counts + sketch cardinality."""
    counts: dict = {}
    for bolt in executor.bolt_instances("count"):
        counts.update(bolt.counts)
    (sketch_bolt,) = executor.bolt_instances("sketch")
    summary = sketch_bolt.synopsis
    return [sorted(counts.items()), round(summary["uniques"].estimate())]


def run_obs_bench(
    n_items: int = 20_000,
    repeats: int = 3,
    seed: int = 7,
    smoke: bool = False,
    rates: tuple[float, ...] = DEFAULT_RATES,
    semantics: str = "at_least_once",
) -> dict:
    """Measure instrumentation overhead; returns a ``repro.bench/v1`` payload."""
    if n_items <= 0:
        raise ParameterError("n_items must be positive")
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    records = demo_records(n_items, seed)
    base_seconds, base_state, __ = _time_run(
        records, repeats, seed, sample_rate=None, semantics=semantics
    )
    results = []
    for rate in rates:
        obs_seconds, obs_state, __ = _time_run(
            records, repeats, seed, sample_rate=rate, semantics=semantics
        )
        label = "metrics" if rate == 0.0 else f"metrics+trace@{rate:g}"
        results.append(
            {
                "synopsis": f"demo_topology[{label}]",
                "workload": f"obs-overhead/{semantics}",
                "n_items": len(records),
                # seq_* = bare baseline, batch_* = instrumented (see module
                # docstring); speedup = instrumented throughput ratio.
                "seq_seconds": base_seconds,
                "batch_seconds": obs_seconds,
                "seq_items_per_s": len(records) / base_seconds,
                "batch_items_per_s": len(records) / obs_seconds,
                "speedup": base_seconds / obs_seconds,
                "equivalent": obs_state == base_state,
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "n_items": n_items,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "mode": "obs-overhead",
            "rates": list(rates),
            "semantics": semantics,
        },
        "results": results,
    }


def overhead_at_default_rate(payload: dict) -> float:
    """Fractional throughput loss of the ≤1% default-sampling row."""
    for entry in payload["results"]:
        if "trace@0.01" in entry["synopsis"]:
            return 1.0 - entry["speedup"]
    raise ParameterError("payload has no default-rate (0.01) row")
