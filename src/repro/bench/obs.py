"""The observability-overhead bench: is the obs plane honest about cost?

An observability layer that taxes the hot path defeats its purpose
(Heron's motivation paper is one long complaint about exactly this), so
``repro-bench --obs`` measures it: the demo topology runs **bare**
(``obs=None``) and **instrumented** (metrics + tracing at a given sample
rate + an instrumented synopsis), best-of-*repeats* each, over identical
seeded records. Results reuse the ``repro.bench/v2`` row shape with the
two timed columns mapped as

* ``seq_*``   → the uninstrumented baseline,
* ``batch_*`` → the instrumented run,

so ``speedup`` is the instrumented/baseline throughput **ratio** — 1.0
means free, 0.9 means 10% throughput loss (the acceptance floor for the
default ≤1% sampling). ``equivalent`` asserts the observed sink payloads
are identical with observability on and off: watching the stream must
not change the stream.

The **cluster rows** extend the same question to live telemetry
(:mod:`repro.obs.live`): the demo topology sharded over worker processes
on the shm data plane, telemetry off (one-shot shutdown flush) vs
streaming at the default flush interval. Here ``seq_*`` is telemetry-off
and ``batch_*`` telemetry-on, so the ≤10% streaming-telemetry budget
reads straight off ``speedup``; ``equivalent`` fingerprint-compares the
merged sketch state across the two runs. Extra v2 columns carry the
transport accounting plus ``telemetry_interval`` / ``telemetry_flushes``.
"""

from __future__ import annotations

import time
from typing import Any

from repro.bench.fingerprint import state_fingerprint
from repro.bench.runner import BENCH_SCHEMA_V2
from repro.common.exceptions import ParameterError
from repro.obs.context import Observability
from repro.obs.demo import build_demo_topology, demo_records
from repro.obs.live import DEFAULT_FLUSH_INTERVAL
from repro.platform.executor import LocalExecutor

#: Sampling rates measured by default: off, the 1% default, full firehose.
DEFAULT_RATES = (0.0, 0.01, 1.0)

#: Telemetry flush periods measured in the cluster rows (the default
#: interval is the one the ≤10% acceptance bound applies to).
DEFAULT_TELEMETRY_INTERVALS = (DEFAULT_FLUSH_INTERVAL,)


def _time_run(
    records: list,
    repeats: int,
    seed: int,
    sample_rate: float | None,
    semantics: str,
) -> tuple[float, list, Any]:
    """Best-of-*repeats* wall time for one configuration.

    ``sample_rate=None`` runs bare (``obs=None``); otherwise an
    :class:`Observability` bundle with that trace rate is threaded
    through (0.0 = metrics only). Returns (seconds, sink payload counts,
    last obs bundle)."""
    best = float("inf")
    results: list = []
    obs = None
    for __ in range(repeats):
        if sample_rate is None:
            obs = None
            topology = build_demo_topology(records, None)
        else:
            obs = Observability.create(sample_rate=sample_rate, seed=seed)
            topology = build_demo_topology(records, obs)
        executor = LocalExecutor(topology, semantics=semantics, obs=obs)
        start = time.perf_counter()
        executor.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        results = _observable_state(executor)
    return best, results, obs


def _observable_state(executor: LocalExecutor) -> list:
    """The run's observable output: final counts + sketch cardinality."""
    counts: dict = {}
    for bolt in executor.bolt_instances("count"):
        counts.update(bolt.counts)
    (sketch_bolt,) = executor.bolt_instances("sketch")
    summary = sketch_bolt.synopsis
    return [sorted(counts.items()), round(summary["uniques"].estimate())]


def _time_cluster_run(
    records: list,
    repeats: int,
    seed: int,
    interval: float,
    n_workers: int,
    semantics: str,
) -> tuple[float, tuple, dict, int]:
    """Best-of-*repeats* cluster wall time at one telemetry *interval*.

    ``interval=0.0`` is telemetry-off (the one-shot shutdown flush only).
    Returns (seconds, merged-sketch fingerprint, transport stats, flushes
    absorbed) — the fingerprint is the state-equivalence check: streaming
    telemetry must not change the answer.
    """
    from repro.cluster.coordinator import ClusterExecutor

    best = float("inf")
    fingerprint: tuple = ()
    stats: dict = {}
    flushes = 0
    for __ in range(repeats):
        obs = Observability.create(sample_rate=0.0, seed=seed)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=n_workers,
            semantics=semantics,
            obs=obs,
            telemetry_interval=interval,
        )
        with executor:
            start = time.perf_counter()
            executor.run()
            best = min(best, time.perf_counter() - start)
            fingerprint = state_fingerprint(executor.merged_synopsis("sketch"))
            stats = dict(executor.transport_stats)
        health = executor.last_health
        flushes = sum(w.flushes for w in health.workers) if health else 0
    return best, fingerprint, stats, flushes


def run_obs_bench(
    n_items: int = 20_000,
    repeats: int = 3,
    seed: int = 7,
    smoke: bool = False,
    rates: tuple[float, ...] = DEFAULT_RATES,
    semantics: str = "at_least_once",
    cluster: bool = True,
    cluster_workers: int = 2,
    telemetry_intervals: tuple[float, ...] = DEFAULT_TELEMETRY_INTERVALS,
) -> dict:
    """Measure instrumentation overhead; returns a ``repro.bench/v2`` payload."""
    if n_items <= 0:
        raise ParameterError("n_items must be positive")
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    records = demo_records(n_items, seed)
    base_seconds, base_state, __ = _time_run(
        records, repeats, seed, sample_rate=None, semantics=semantics
    )
    results = []
    for rate in rates:
        obs_seconds, obs_state, __ = _time_run(
            records, repeats, seed, sample_rate=rate, semantics=semantics
        )
        label = "metrics" if rate == 0.0 else f"metrics+trace@{rate:g}"
        results.append(
            {
                "synopsis": f"demo_topology[{label}]",
                "workload": f"obs-overhead/{semantics}",
                "n_items": len(records),
                # seq_* = bare baseline, batch_* = instrumented (see module
                # docstring); speedup = instrumented throughput ratio.
                "seq_seconds": base_seconds,
                "batch_seconds": obs_seconds,
                "seq_items_per_s": len(records) / base_seconds,
                "batch_items_per_s": len(records) / obs_seconds,
                "speedup": base_seconds / obs_seconds,
                "equivalent": obs_state == base_state,
            }
        )
    if cluster:
        # Cluster rows: shm data plane with live telemetry off (the
        # one-shot baseline) vs streaming at each interval. seq_* is the
        # telemetry-off cluster run, batch_* the streamed one — the ≤10%
        # acceptance bound reads straight off ``speedup``.
        off_seconds, off_fp, __, __ = _time_cluster_run(
            records, repeats, seed, 0.0, cluster_workers, semantics
        )
        for interval in telemetry_intervals:
            on_seconds, on_fp, stats, flushes = _time_cluster_run(
                records, repeats, seed, interval, cluster_workers, semantics
            )
            results.append(
                {
                    "synopsis": (
                        f"cluster_demo[w{cluster_workers}|shm|"
                        f"telemetry@{interval:g}s]"
                    ),
                    "workload": f"obs-overhead-cluster/{semantics}",
                    "n_items": len(records),
                    "seq_seconds": off_seconds,
                    "batch_seconds": on_seconds,
                    "seq_items_per_s": len(records) / off_seconds,
                    "batch_items_per_s": len(records) / on_seconds,
                    "speedup": off_seconds / on_seconds,
                    # Watching the cluster must not change its answer.
                    "equivalent": on_fp == off_fp,
                    "transport": stats.get("transport", "shm"),
                    "n_workers": cluster_workers,
                    "telemetry_interval": interval,
                    "telemetry_flushes": flushes,
                    "data_bytes_shm": stats.get("data_bytes_shm", 0),
                    "data_bytes_queue": stats.get("data_bytes_queue", 0),
                    "data_frames": stats.get("data_frames", 0),
                    "codec_pickled_bytes": stats.get("codec_pickled_bytes", 0),
                    "backpressure_waits": stats.get("backpressure_waits", 0),
                }
            )
    return {
        "schema": BENCH_SCHEMA_V2,
        "config": {
            "n_items": n_items,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "mode": "obs-overhead",
            "rates": list(rates),
            "semantics": semantics,
            "cluster": cluster,
            "cluster_workers": cluster_workers if cluster else 0,
            "telemetry_intervals": list(telemetry_intervals) if cluster else [],
        },
        "results": results,
    }


def overhead_at_default_rate(payload: dict) -> float:
    """Fractional throughput loss of the ≤1% default-sampling row."""
    for entry in payload["results"]:
        if "trace@0.01" in entry["synopsis"]:
            return 1.0 - entry["speedup"]
    raise ParameterError("payload has no default-rate (0.01) row")


def cluster_overhead(payload: dict) -> float:
    """Fractional cluster throughput loss of streaming telemetry at the
    default flush interval (the ≤10% acceptance bound)."""
    tag = f"telemetry@{DEFAULT_FLUSH_INTERVAL:g}s"
    for entry in payload["results"]:
        if tag in entry["synopsis"]:
            return 1.0 - entry["speedup"]
    raise ParameterError("payload has no default-interval cluster row")
