"""``repro-bench`` / ``python -m repro.bench`` entry point.

Runs the ingest-throughput suite, prints the human-readable table and
writes the schema-validated JSON payload. ``--smoke`` is the CI mode:
a tiny workload that still exercises every case, verifies the batch-ingest
invariant at runtime and validates the emitted schema. ``--obs`` switches
to the observability-overhead suite (:mod:`repro.bench.obs`): the demo
topology bare vs. instrumented, written to ``BENCH_obs.json`` by default.
``--cluster`` switches to the cluster-scaling suite
(:mod:`repro.bench.cluster`): the demo topology single-process vs. sharded
across worker processes at each ``--workers`` count, written to
``BENCH_cluster.json`` by default. ``--lint`` switches to the streamlint
suite (:mod:`repro.bench.lint`): full-tree analysis cold vs. warm cache ×
1 vs. auto jobs, written to ``BENCH_lint.json`` by default. ``--elastic``
switches to the elasticity suite (:mod:`repro.bench.elastic`): the spike
workload on a fixed cluster vs. one rescaled live by the backpressure
autoscaler, written to ``BENCH_elastic.json`` by default.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.runner import format_table, run_bench, validate_payload

_DEFAULT_OUT = "BENCH_synopses.json"
_OBS_DEFAULT_OUT = "BENCH_obs.json"
_CLUSTER_DEFAULT_OUT = "BENCH_cluster.json"
_LINT_DEFAULT_OUT = "BENCH_lint.json"
_SERVING_DEFAULT_OUT = "BENCH_serving.json"
_ELASTIC_DEFAULT_OUT = "BENCH_elastic.json"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Sequential vs. batched synopsis ingest throughput.",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default: {_DEFAULT_OUT}, "
        f"or {_OBS_DEFAULT_OUT} with --obs)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="measure observability overhead (bare vs. instrumented demo "
        "topology) instead of synopsis ingest",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="measure cluster scaling (single-process vs. sharded demo "
        "topology) instead of synopsis ingest",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="measure streamlint full-tree analysis (cold vs. warm cache, "
        "1 vs. auto jobs) instead of synopsis ingest",
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="measure the serving layer (closed-loop query workload over "
        "the live demo topology, cache off vs. on) instead of synopsis "
        "ingest",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="measure elasticity (spike workload on a fixed cluster vs. "
        "one autoscaled live by backpressure) instead of synopsis ingest",
    )
    parser.add_argument(
        "--users",
        type=int,
        default=None,
        help="virtual users for --serving (default: 8, or 4 with --smoke)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        metavar="W",
        help="worker counts for --cluster (default: 1 2 4 8, or 1 2 with "
        "--smoke)",
    )
    parser.add_argument(
        "--transport",
        choices=("shm", "queue", "both"),
        default="both",
        help="data-plane transport(s) for --cluster (default: %(default)s)",
    )
    parser.add_argument(
        "--items",
        type=int,
        default=None,
        help="items per workload (default: 100000, 20000 with --obs, or "
        "60000 with --cluster)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per path, best kept (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: %(default)s)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny workload, single repeat, schema check only",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the suite, print the table, write and validate the JSON."""
    args = build_parser().parse_args(argv)
    if args.serving:
        from repro.bench.serving import run_serving_bench

        n_items = 2_500 if args.smoke else (args.items or 12_000)
        n_users = args.users or (4 if args.smoke else 8)
        queries_per_user = 25 if args.smoke else 60
        payload = run_serving_bench(
            n_items=n_items,
            n_users=n_users,
            queries_per_user=queries_per_user,
            seed=args.seed,
            smoke=args.smoke,
        )
        validate_payload(payload)
        print(format_table(payload))
        rows = payload["results"]
        print(
            f"\nmachine: {payload['config']['n_cores']} core(s) — "
            f"cache hit ratio {max(r['cache_hit_ratio'] for r in rows) * 100:.0f}% "
            f"peak, p99 {min(r['p99_ms'] for r in rows):.2f}ms best; "
            "bit-identical cached/uncached replays is the invariant"
        )
        out_path = Path(args.out or _SERVING_DEFAULT_OUT)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path} ({len(payload['results'])} cases, schema OK)")
        return 0
    if args.elastic:
        from repro.bench.elastic import run_elastic_bench

        if args.smoke:
            payload = run_elastic_bench(
                n_calm=1_000,
                n_spike=3_000,
                n_tail=3_000,
                amplify=12,
                max_workers=4,
                seed=args.seed,
                smoke=True,
            )
        else:
            payload = run_elastic_bench(seed=args.seed)
        validate_payload(payload)
        print(format_table(payload))
        row = payload["results"][0]
        print(
            f"\nmachine: {payload['config']['n_cores']} core(s) — "
            f"{row['rescales']} live rescales ({row['synopsis']}), worst "
            f"rescale {row['rescale_latency_s'] * 1000:.0f}ms, lag "
            f"recovered in {row['lag_recovery_s']:.2f}s; merged-state "
            "equality across every rescale is the invariant"
        )
        out_path = Path(args.out or _ELASTIC_DEFAULT_OUT)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path} ({len(payload['results'])} cases, schema OK)")
        return 0
    if args.lint:
        from repro.bench.lint import run_lint_bench, warm_speedup

        repeats = 1 if args.smoke else args.repeats
        payload = run_lint_bench(
            repeats=repeats, seed=args.seed, smoke=args.smoke
        )
        validate_payload(payload)
        print(format_table(payload))
        print(
            f"\nmachine: {payload['config']['n_cores']} core(s) — warm "
            f"--jobs auto is {warm_speedup(payload):.2f}x the cold 1-job "
            "baseline; identical findings is the invariant"
        )
        out_path = Path(args.out or _LINT_DEFAULT_OUT)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path} ({len(payload['results'])} cases, schema OK)")
        return 0
    if args.cluster:
        from repro.bench.cluster import (
            DEFAULT_TRANSPORTS,
            DEFAULT_WORKERS,
            run_cluster_bench,
        )

        n_items = 2_000 if args.smoke else (args.items or 60_000)
        repeats = 1 if args.smoke else args.repeats
        workers = tuple(
            args.workers
            if args.workers
            else ((1, 2) if args.smoke else DEFAULT_WORKERS)
        )
        transports = (
            DEFAULT_TRANSPORTS if args.transport == "both" else (args.transport,)
        )
        payload = run_cluster_bench(
            n_items=n_items,
            repeats=repeats,
            seed=args.seed,
            smoke=args.smoke,
            workers=workers,
            transports=transports,
        )
        validate_payload(payload)
        print(format_table(payload))
        print(f"\nmachine: {payload['config']['n_cores']} core(s) — speedup "
              "is bounded by available cores; merged-state equality is the "
              "invariant")
        out_path = Path(args.out or _CLUSTER_DEFAULT_OUT)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path} ({len(payload['results'])} cases, schema OK)")
        return 0
    if args.obs:
        from repro.bench.obs import (
            cluster_overhead,
            overhead_at_default_rate,
            run_obs_bench,
        )

        n_items = 2_000 if args.smoke else (args.items or 20_000)
        repeats = 1 if args.smoke else args.repeats
        payload = run_obs_bench(
            n_items=n_items, repeats=repeats, seed=args.seed, smoke=args.smoke
        )
        validate_payload(payload)
        print(format_table(payload))
        overhead = overhead_at_default_rate(payload)
        print(f"\noverhead at default 1% sampling: {overhead * 100:+.1f}%")
        print(
            "cluster telemetry overhead at default interval: "
            f"{cluster_overhead(payload) * 100:+.1f}%"
        )
        out_path = Path(args.out or _OBS_DEFAULT_OUT)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path} ({len(payload['results'])} cases, schema OK)")
        return 0
    n_items = 2_000 if args.smoke else (args.items or 100_000)
    repeats = 1 if args.smoke else args.repeats
    payload = run_bench(
        n_items=n_items, repeats=repeats, seed=args.seed, smoke=args.smoke
    )
    validate_payload(payload)
    print(format_table(payload))
    out_path = Path(args.out or _DEFAULT_OUT)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path} ({len(payload['results'])} cases, schema OK)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
