"""Ingest-throughput benchmark suite (the ``BENCH_*.json`` trajectory).

The paper's premise is that synopses must keep up with stream *velocity*;
this package measures whether ours do. For every hot-path synopsis it
times sequential ``update`` against batched ``update_many`` on seeded
workloads, verifies the two paths leave **bit-identical state** (the
batch-ingest invariant), and writes a machine-readable
``BENCH_synopses.json`` so every future PR is measured against the same
trajectory file.

Run it with ``python -m repro.bench --out BENCH_synopses.json`` or the
``repro-bench`` console script.
"""

from repro.bench.fingerprint import state_fingerprint
from repro.bench.runner import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_V2,
    BenchCase,
    default_cases,
    format_table,
    run_bench,
    validate_payload,
)

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_V2",
    "BenchCase",
    "default_cases",
    "format_table",
    "run_bench",
    "state_fingerprint",
    "validate_payload",
]
