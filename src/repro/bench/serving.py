"""The serving-layer bench: what does the query front-end sustain?

``repro-bench --serving`` boots the serving demo topology (seeded Zipf
word sentences → split → served sketch summary) behind the asyncio
HTTP server on an ephemeral port, then drives it with the seeded
closed-loop workload (:mod:`repro.workloads.serving`) while ingest
proceeds underneath — the Lambda serving-layer scenario end to end,
in-process, stdlib only.

Each row is one concurrent-ingest configuration (``ingest_budget`` =
tuples stepped per event-loop slot; 0 = stream fully ingested before
serving starts) and carries two measurements plus one proof:

* timing — the v2 ``seq_*`` columns are the **cache-disabled** run and
  the ``batch_*`` columns the **cache-enabled** run of the identical
  seeded workload, so ``speedup`` is the result cache's payoff under
  that ingest pressure; extra columns record p50/p99 latency, QPS, the
  measured concurrent ingest rate, cache hit ratio, and the largest
  snapshot age any response admitted to.
* equivalence — after ingest completes the snapshot epoch is pinned and
  the same workload replays twice, cache off then cache on; the v2
  ``equivalent`` flag demands their response digests be bit-identical
  (and the cached replay actually hit), proving the cache changes
  latency, never answers.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.bench.runner import BENCH_SCHEMA_V2, available_cpu_count
from repro.common.exceptions import ParameterError
from repro.obs.context import Observability
from repro.platform.executor import LocalExecutor
from repro.serving.demo import SERVING_BOLT, build_serving_topology, demo_records
from repro.serving.runtime import ServingRuntime
from repro.serving.server import ServingServer
from repro.workloads.serving import WorkloadResult, run_closed_loop

#: Concurrent-ingest settings swept by default: pre-ingested baseline,
#: light pressure, heavy pressure (tuples stepped per event-loop slot).
DEFAULT_INGEST_BUDGETS = (0, 64, 512)


class _ServerHarness:
    """A serving server on its own thread + event loop (the bench and
    the closed-loop client run on the caller's loop)."""

    def __init__(self, runtime: ServingRuntime, ingest: bool, ingest_budget: int):
        self.runtime = runtime
        self.ingest = ingest
        self.ingest_budget = max(1, ingest_budget)
        self.port = 0
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._main, name="serving-bench-server", daemon=True
        )

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        server = ServingServer(self.runtime, ingest_budget=self.ingest_budget)
        await server.start(ingest=self.ingest)
        self.port = server.port
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await server.stop()

    def __enter__(self) -> "_ServerHarness":
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if not self._ready.is_set():
            raise RuntimeError("serving bench server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)


def _build_runtime(records: list, seed: int) -> ServingRuntime:
    obs = Observability.create(sample_rate=0.0, seed=seed)
    executor = LocalExecutor(
        build_serving_topology(records, obs), semantics="at_least_once", obs=obs
    )
    return ServingRuntime(executor, SERVING_BOLT, registry=obs.registry)


def _drive(
    port: int, n_users: int, queries_per_user: int, seed: int
) -> WorkloadResult:
    return asyncio.run(
        run_closed_loop(
            "127.0.0.1",
            port,
            n_users=n_users,
            queries_per_user=queries_per_user,
            seed=seed,
        )
    )


def _measure_case(
    records: list,
    ingest_budget: int,
    n_users: int,
    queries_per_user: int,
    seed: int,
) -> dict:
    runtime = _build_runtime(records, seed)
    if ingest_budget == 0:
        # Pre-ingested baseline: the stream is done before serving starts.
        runtime.start_ingest()
        while runtime.ingest_step(4096):
            pass
    frontier_before = runtime.stats()["ingest"]["source_frontier"]
    harness = _ServerHarness(
        runtime, ingest=ingest_budget > 0, ingest_budget=ingest_budget
    )
    with harness:
        runtime.cache_enabled = False
        uncached = _drive(harness.port, n_users, queries_per_user, seed)
        runtime.cache_enabled = True
        cached = _drive(harness.port, n_users, queries_per_user, seed)
        serve_wall = uncached.wall_seconds + cached.wall_seconds
        frontier_after = runtime.stats()["ingest"]["source_frontier"]

        # -- equivalence at a pinned epoch ---------------------------
        while not runtime.ingest_done:
            time.sleep(0.01)
        runtime.max_snapshot_age = float("inf")
        runtime.refresh()
        runtime.cache_enabled = False
        replay_uncached = _drive(harness.port, n_users, queries_per_user, seed)
        runtime.cache_enabled = True
        replay_cached = _drive(harness.port, n_users, queries_per_user, seed)
    equivalent = (
        replay_uncached.digest == replay_cached.digest
        and replay_uncached.n_errors == 0
        and replay_cached.n_errors == 0
        and replay_cached.n_cached > 0
    )
    n_queries = cached.n_queries
    return {
        "synopsis": f"serving[u{n_users}|ingest{ingest_budget}]",
        "workload": "serving-closed-loop",
        "n_items": n_queries,
        # seq_* = cache-disabled serve, batch_* = cache-enabled serve of
        # the identical seeded workload; speedup = the cache's payoff.
        "seq_seconds": uncached.wall_seconds,
        "batch_seconds": cached.wall_seconds,
        "seq_items_per_s": uncached.qps,
        "batch_items_per_s": cached.qps,
        "speedup": uncached.wall_seconds / cached.wall_seconds,
        "equivalent": equivalent,
        "n_users": n_users,
        "queries_per_user": queries_per_user,
        "ingest_budget": ingest_budget,
        "qps": cached.qps,
        "qps_uncached": uncached.qps,
        "p50_ms": cached.latency_quantile(0.5) * 1e3,
        "p99_ms": cached.latency_quantile(0.99) * 1e3,
        "cache_hit_ratio": cached.cache_hit_ratio,
        "ingest_items_per_s": (
            (frontier_after - frontier_before) / serve_wall if serve_wall else 0.0
        ),
        "snapshot_age_max_s": max(
            uncached.snapshot_age_max_s, cached.snapshot_age_max_s
        ),
        "epochs_seen": len(cached.epochs | uncached.epochs),
        # Cores this row actually had (affinity-aware): the closed-loop
        # QPS of a pinned run must not masquerade as a full-host number.
        "n_cores": available_cpu_count(),
    }


def run_serving_bench(
    n_items: int = 12_000,
    n_users: int = 8,
    queries_per_user: int = 60,
    seed: int = 7,
    smoke: bool = False,
    ingest_budgets: tuple[int, ...] = DEFAULT_INGEST_BUDGETS,
) -> dict:
    """Measure the serving layer; returns a ``repro.bench/v2`` payload."""
    if n_items <= 0:
        raise ParameterError("n_items must be positive")
    if n_users <= 0 or queries_per_user <= 0:
        raise ParameterError("n_users and queries_per_user must be positive")
    if any(budget < 0 for budget in ingest_budgets) or not ingest_budgets:
        raise ParameterError("ingest_budgets must be non-negative")
    records = demo_records(n_items, seed)
    results = [
        _measure_case(records, budget, n_users, queries_per_user, seed)
        for budget in ingest_budgets
    ]
    return {
        "schema": BENCH_SCHEMA_V2,
        "config": {
            "n_items": n_items,
            "repeats": 1,
            "seed": seed,
            "smoke": smoke,
            "mode": "serving-closed-loop",
            "n_users": n_users,
            "queries_per_user": queries_per_user,
            "ingest_budgets": list(ingest_budgets),
            "n_cores": available_cpu_count(),
        },
        "results": results,
    }
