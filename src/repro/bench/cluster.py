"""The cluster-scaling bench: does sharding the demo topology pay?

``repro-bench --cluster`` runs the demo topology (words → split → keyed
count + sketch) once on the single-process :class:`LocalExecutor` as the
baseline and then on :class:`~repro.cluster.coordinator.ClusterExecutor`
at each worker count, best-of-*repeats* per configuration over identical
seeded records. Results reuse the ``repro.bench/v1`` row shape with the
two timed columns mapped as

* ``seq_*``   → the single-process baseline,
* ``batch_*`` → the sharded run at that worker count,

so ``speedup`` is the cluster/baseline throughput ratio. ``equivalent``
asserts the *merged* shard-partial synopsis state fingerprints
bit-identical to the single-process run — scaling out must not change
the answer (the paper's partitioned-computation contract, Section 2).

Honesty note: the achievable ratio is bounded by the machine. The
payload records ``n_cores`` in its config; on a single-core container
every worker count multiplexes one CPU and the ratio measures transport
overhead, not parallel speedup. Read BENCH_cluster.json together with
its ``n_cores``.
"""

from __future__ import annotations

import os
import time

from repro.bench.fingerprint import state_fingerprint
from repro.bench.runner import BENCH_SCHEMA
from repro.cluster.coordinator import ClusterExecutor
from repro.common.exceptions import ParameterError
from repro.obs.demo import build_demo_topology, demo_records
from repro.platform.executor import LocalExecutor

#: Worker counts measured by default: baseline parity, then doubling.
DEFAULT_WORKERS = (1, 2, 4, 8)


def _baseline(records: list, repeats: int, semantics: str) -> tuple[float, str]:
    """Best-of-*repeats* single-process wall time + reference fingerprint."""
    best = float("inf")
    fingerprint = ""
    for __ in range(repeats):
        executor = LocalExecutor(build_demo_topology(records), semantics=semantics)
        start = time.perf_counter()
        executor.run()
        best = min(best, time.perf_counter() - start)
        reference = executor.bolt_instances("sketch")[0].synopsis
        fingerprint = state_fingerprint(reference)
    return best, fingerprint


def _cluster_run(
    records: list, n_workers: int, repeats: int, semantics: str
) -> tuple[float, str]:
    """Best-of-*repeats* sharded wall time + merged-state fingerprint."""
    best = float("inf")
    fingerprint = ""
    for __ in range(repeats):
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=n_workers,
            semantics=semantics,
        )
        with executor:
            start = time.perf_counter()
            executor.run()
            best = min(best, time.perf_counter() - start)
            fingerprint = state_fingerprint(executor.merged_synopsis("sketch"))
    return best, fingerprint


def run_cluster_bench(
    n_items: int = 20_000,
    repeats: int = 3,
    seed: int = 7,
    smoke: bool = False,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    semantics: str = "at_most_once",
) -> dict:
    """Measure cluster scaling; returns a ``repro.bench/v1`` payload."""
    if n_items <= 0:
        raise ParameterError("n_items must be positive")
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    if not workers or any(w <= 0 for w in workers):
        raise ParameterError("workers must be positive counts")
    records = demo_records(n_items, seed)
    base_seconds, base_fingerprint = _baseline(records, repeats, semantics)
    results = []
    for n_workers in workers:
        seconds, fingerprint = _cluster_run(records, n_workers, repeats, semantics)
        results.append(
            {
                "synopsis": f"demo_topology[w{n_workers}]",
                "workload": f"cluster-scaling/{semantics}",
                "n_items": len(records),
                # seq_* = single-process baseline, batch_* = sharded run
                # (see module docstring); speedup = throughput ratio.
                "seq_seconds": base_seconds,
                "batch_seconds": seconds,
                "seq_items_per_s": len(records) / base_seconds,
                "batch_items_per_s": len(records) / seconds,
                "speedup": base_seconds / seconds,
                "equivalent": fingerprint == base_fingerprint,
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "n_items": n_items,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "mode": "cluster-scaling",
            "workers": list(workers),
            "semantics": semantics,
            "n_cores": os.cpu_count(),
        },
        "results": results,
    }
