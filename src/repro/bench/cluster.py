"""The cluster-scaling bench: does sharding a stateful topology pay?

``repro-bench --cluster`` builds a keyed-analytics topology over the
seeded demo word stream::

    sentences ──shuffle──> split ──fields──> count   (parallelism 2)
                                └──fields──> quantile (parallelism = N)

and runs it once per configuration: single-process
:class:`LocalExecutor` as the baseline, then
:class:`~repro.cluster.coordinator.ClusterExecutor` at each worker count
× each data-plane transport (``shm`` rings vs the legacy pickled-batch
``queue``), best-of-*repeats* over identical records.

**Why this workload scales even on one core.** The ``quantile`` stage is
an :class:`~repro.quantiles.exact.ExactQuantiles` — a sorted buffer whose
per-insert cost grows with the buffer (``bisect`` + list shift). Its
parallelism tracks the worker count, so sharding by key divides every
shard's buffer — and therefore the stage's *total* maintenance work — by
~N. That is the partitioned-state payoff the paper's Section 2 scale-out
contract describes: the gain is real work reduction, not just parallel
wall-clock, so it is measurable even when every worker multiplexes one
CPU. What eats the gain is transport overhead — which is exactly what
this bench compares across transports. ``n_cores`` is recorded in the
config; on real cores the same sweep additionally buys wall-clock
parallelism.

Results use the ``repro.bench/v2`` row shape: the v1 timing columns
(``seq_*`` = single-process baseline, ``batch_*`` = sharded run,
``speedup`` = their ratio) plus the transport columns — ``transport``,
``n_workers``, ``data_bytes_shm``, ``data_bytes_queue``, ``data_frames``,
``codec_pickled_bytes``, ``backpressure_waits`` — taken from the
executor's ``transport_stats``. A ``data_bytes_queue`` of 0 on every shm
row is the "pickle-free data plane" proof the transport work promised.

``equivalent`` asserts bit-identical answers: the merged quantile shard
partials (a sorted-multiset union, so *exactly* the single-process
buffer) and the per-task count tables must fingerprint-match the
baseline. Scaling out must not change the answer.
"""

from __future__ import annotations

import time

from repro.bench.fingerprint import state_fingerprint
from repro.bench.runner import BENCH_SCHEMA_V2, available_cpu_count
from repro.cluster.coordinator import ClusterExecutor
from repro.common.exceptions import ParameterError
from repro.obs.demo import demo_records
from repro.platform.executor import LocalExecutor
from repro.platform.operators import CountBolt, FlatMapBolt, SynopsisBolt
from repro.platform.topology import ListSpout, Topology, TopologyBuilder
from repro.quantiles.exact import ExactQuantiles

#: Worker counts measured by default: baseline parity, then doubling.
DEFAULT_WORKERS = (1, 2, 4, 8)

#: Data-plane transports swept by default (shm first: it is the default).
DEFAULT_TRANSPORTS = ("shm", "queue")


def build_cluster_topology(
    records: list[tuple[str]], quantile_parallelism: int = 1
) -> Topology:
    """words → split → {count (keyed), exact quantiles (keyed, par=N)}.

    ``quantile_parallelism`` tracks the worker count in the sharded runs
    (one shard per worker) and is 1 in the single-process baseline; the
    merged shard partials are partition-independent, so every
    configuration must produce the same answer.
    """
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(records))
    builder.set_bolt(
        "split",
        lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()]),
    ).shuffle("sentences")
    builder.set_bolt(
        "count", lambda: CountBolt(0, emit_updates=False), parallelism=2
    ).fields("split", 0)
    builder.set_bolt(
        "quantile",
        lambda: SynopsisBolt(ExactQuantiles, batch_size=256),
        parallelism=quantile_parallelism,
    ).fields("split", 0)
    return builder.build()


def _fingerprints(quantile_state, count_states) -> tuple:
    return (state_fingerprint(quantile_state), state_fingerprint(count_states))


def _baseline(records: list, repeats: int, semantics: str) -> tuple[float, tuple]:
    """Best-of-*repeats* single-process wall time + reference fingerprints."""
    best = float("inf")
    reference: tuple = ()
    for __ in range(repeats):
        executor = LocalExecutor(
            build_cluster_topology(records), semantics=semantics
        )
        start = time.perf_counter()
        executor.run()
        best = min(best, time.perf_counter() - start)
        reference = _fingerprints(
            executor.bolt_instances("quantile")[0].synopsis,
            [dict(bolt.counts) for bolt in executor.bolt_instances("count")],
        )
    return best, reference


def _cluster_run(
    records: list,
    n_workers: int,
    repeats: int,
    semantics: str,
    transport: str,
    reference: tuple,
) -> tuple[float, bool, dict]:
    """Best-of-*repeats* sharded wall time + equivalence + transport stats."""
    best = float("inf")
    equivalent = True
    stats: dict = {}
    for __ in range(repeats):
        executor = ClusterExecutor(
            build_cluster_topology(records, quantile_parallelism=n_workers),
            n_workers=n_workers,
            semantics=semantics,
            transport=transport,
        )
        with executor:
            start = time.perf_counter()
            executor.run()
            best = min(best, time.perf_counter() - start)
            fingerprints = _fingerprints(
                executor.merged_synopsis("quantile"),
                executor.bolt_states("count"),
            )
            equivalent = equivalent and fingerprints == reference
            stats = dict(executor.transport_stats)
    return best, equivalent, stats


def run_cluster_bench(
    n_items: int = 60_000,
    repeats: int = 3,
    seed: int = 7,
    smoke: bool = False,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    semantics: str = "at_most_once",
    transports: tuple[str, ...] = DEFAULT_TRANSPORTS,
) -> dict:
    """Measure cluster scaling; returns a ``repro.bench/v2`` payload."""
    if n_items <= 0:
        raise ParameterError("n_items must be positive")
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    if not workers or any(w <= 0 for w in workers):
        raise ParameterError("workers must be positive counts")
    if not transports or any(t not in DEFAULT_TRANSPORTS for t in transports):
        raise ParameterError(f"transports must be drawn from {DEFAULT_TRANSPORTS}")
    records = demo_records(n_items, seed)
    base_seconds, reference = _baseline(records, repeats, semantics)
    results = []
    for transport in transports:
        for n_workers in workers:
            seconds, equivalent, stats = _cluster_run(
                records, n_workers, repeats, semantics, transport, reference
            )
            results.append(
                {
                    "synopsis": f"cluster[w{n_workers}|{transport}]",
                    "workload": f"cluster-scaling/{semantics}",
                    "n_items": len(records),
                    # seq_* = single-process baseline, batch_* = sharded
                    # run (see module docstring); speedup = their ratio.
                    "seq_seconds": base_seconds,
                    "batch_seconds": seconds,
                    "seq_items_per_s": len(records) / base_seconds,
                    "batch_items_per_s": len(records) / seconds,
                    "speedup": base_seconds / seconds,
                    "equivalent": equivalent,
                    "transport": stats.get("transport", transport),
                    "n_workers": n_workers,
                    "data_bytes_shm": stats.get("data_bytes_shm", 0),
                    "data_bytes_queue": stats.get("data_bytes_queue", 0),
                    "data_frames": stats.get("data_frames", 0),
                    "codec_pickled_bytes": stats.get("codec_pickled_bytes", 0),
                    "backpressure_waits": stats.get("backpressure_waits", 0),
                    # Cores this row actually had (affinity-aware), so a
                    # committed speedup is interpretable on any host.
                    "n_cores": available_cpu_count(),
                }
            )
    return {
        "schema": BENCH_SCHEMA_V2,
        "config": {
            "n_items": n_items,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
            "mode": "cluster-scaling",
            "workers": list(workers),
            "transports": list(transports),
            "semantics": semantics,
            "n_cores": available_cpu_count(),
        },
        "results": results,
    }
