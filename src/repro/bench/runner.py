"""The ingest-throughput bench: sequential vs. batched synopsis update.

For each :class:`BenchCase` the runner builds a seeded workload, times
``update`` item-at-a-time and ``update_many`` over the same items (best of
*repeats* fresh runs each), then verifies the two final states are
bit-identical via :func:`repro.bench.fingerprint.state_fingerprint`. The
payload is schema-tagged (``repro.bench/v1``) so the committed
``BENCH_synopses.json`` forms a comparable trajectory across PRs.

This module may read the wall clock: it *is* the measurement harness, the
one place where elapsed real time is the subject rather than a hidden
input (see SL004's exemption for ``repro.bench``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.bench.fingerprint import state_fingerprint
from repro.common.exceptions import ParameterError


def available_cpu_count() -> int:
    """CPU cores *this process* may actually use, not just the machine's.

    Scaling benches are meaningless without this number: a 64-core host
    pinned to 2 cores by cgroups/affinity behaves like a 2-core machine,
    and ``os.cpu_count()`` happily reports 64. Prefer
    ``os.process_cpu_count()`` (3.13+), fall back to the scheduler
    affinity mask (Linux), then to the machine count.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:  # pragma: no cover - Python 3.13+
        count = getter()
        if count:
            return count
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

BENCH_SCHEMA = "repro.bench/v1"

#: v2 keeps every v1 column with the same meaning but allows suites to
#: append extra columns per row (the cluster sweep's transport/byte
#: accounting). v1 payloads stay exact-keyed; v2 rows are supersets.
BENCH_SCHEMA_V2 = "repro.bench/v2"

_RESULT_KEYS = frozenset(
    {
        "synopsis",
        "workload",
        "n_items",
        "seq_seconds",
        "batch_seconds",
        "seq_items_per_s",
        "batch_items_per_s",
        "speedup",
        "equivalent",
    }
)


@dataclass(frozen=True)
class BenchCase:
    """One measured synopsis configuration.

    ``factory`` builds a fresh synopsis per timed run; ``make_items(n,
    seed)`` materialises the seeded workload both ingest paths consume.
    """

    name: str
    factory: Callable[[], Any]
    workload: str
    make_items: Callable[[int, int], list]


def _zipf_items(n: int, seed: int) -> list:
    from repro.workloads.text import zipf_stream

    return list(zipf_stream(n, universe=50_000, skew=1.1, seed=seed))


def default_cases() -> list[BenchCase]:
    """Every hot-path synopsis with a vectorized ``update_many``."""
    from repro.cardinality.hyperloglog import HyperLogLog
    from repro.cardinality.sliding_hll import SlidingHyperLogLog
    from repro.core.summary import StreamSummary
    from repro.filtering.bloom import BloomFilter
    from repro.filtering.counting_bloom import CountingBloomFilter
    from repro.filtering.partitioned import PartitionedBloomFilter
    from repro.frequency.count_min import CountMinSketch
    from repro.frequency.count_sketch import CountSketch
    from repro.frequency.lossy_counting import LossyCounting
    from repro.frequency.misra_gries import MisraGries
    from repro.frequency.space_saving import SpaceSaving

    def summary() -> StreamSummary:
        return StreamSummary(
            uniques=HyperLogLog(precision=12),
            topk=SpaceSaving(256),
            freq=CountMinSketch(width=2048, depth=4),
        )

    zipf = _zipf_items
    return [
        BenchCase("count_min", lambda: CountMinSketch(2048, 4), "zipf", zipf),
        BenchCase(
            "count_min_conservative",
            lambda: CountMinSketch(2048, 4, conservative=True),
            "zipf",
            zipf,
        ),
        BenchCase("count_sketch", lambda: CountSketch(2048, 4), "zipf", zipf),
        BenchCase("bloom", lambda: BloomFilter(1 << 20, 7), "zipf", zipf),
        BenchCase(
            "counting_bloom", lambda: CountingBloomFilter(1 << 18, 5), "zipf", zipf
        ),
        BenchCase(
            "partitioned_bloom",
            lambda: PartitionedBloomFilter(slice_bits=17, k=5),
            "zipf",
            zipf,
        ),
        BenchCase("hyperloglog", lambda: HyperLogLog(precision=14), "zipf", zipf),
        BenchCase(
            "sliding_hll", lambda: SlidingHyperLogLog(precision=12), "zipf", zipf
        ),
        BenchCase("space_saving", lambda: SpaceSaving(256), "zipf", zipf),
        BenchCase("misra_gries", lambda: MisraGries(256), "zipf", zipf),
        BenchCase("lossy_counting", lambda: LossyCounting(0.001), "zipf", zipf),
        BenchCase("stream_summary", summary, "zipf", zipf),
    ]


def _time_ingest(
    factory: Callable[[], Any], items: list, repeats: int, batched: bool
) -> tuple[float, Any]:
    """Best-of-*repeats* ingest time; returns (seconds, last synopsis)."""
    best = float("inf")
    synopsis: Any = None
    for __ in range(repeats):
        synopsis = factory()
        if batched:
            start = time.perf_counter()
            synopsis.update_many(items)
            elapsed = time.perf_counter() - start
        else:
            update = synopsis.update
            start = time.perf_counter()
            for item in items:
                update(item)
            elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, synopsis


def run_bench(
    cases: list[BenchCase] | None = None,
    n_items: int = 100_000,
    repeats: int = 3,
    seed: int = 7,
    smoke: bool = False,
) -> dict:
    """Run every case and return the schema-tagged payload."""
    if n_items <= 0:
        raise ParameterError("n_items must be positive")
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    cases = default_cases() if cases is None else list(cases)
    results = []
    for case in cases:
        items = case.make_items(n_items, seed)
        seq_seconds, seq_synopsis = _time_ingest(
            case.factory, items, repeats, batched=False
        )
        batch_seconds, batch_synopsis = _time_ingest(
            case.factory, items, repeats, batched=True
        )
        equivalent = state_fingerprint(seq_synopsis) == state_fingerprint(
            batch_synopsis
        )
        results.append(
            {
                "synopsis": case.name,
                "workload": case.workload,
                "n_items": len(items),
                "seq_seconds": seq_seconds,
                "batch_seconds": batch_seconds,
                "seq_items_per_s": len(items) / seq_seconds,
                "batch_items_per_s": len(items) / batch_seconds,
                "speedup": seq_seconds / batch_seconds,
                "equivalent": equivalent,
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "n_items": n_items,
            "repeats": repeats,
            "seed": seed,
            "smoke": smoke,
        },
        "results": results,
    }


def validate_payload(payload: dict) -> None:
    """Raise ``ValueError`` unless *payload* matches ``repro.bench/v1``
    (exact result keys) or ``repro.bench/v2`` (the same columns with the
    same meanings, plus suite-specific extra columns per row)."""
    if not isinstance(payload, dict):
        raise ValueError("payload must be a dict")
    schema = payload.get("schema")
    if schema not in (BENCH_SCHEMA, BENCH_SCHEMA_V2):
        raise ValueError(f"schema must be {BENCH_SCHEMA!r} or {BENCH_SCHEMA_V2!r}")
    config = payload.get("config")
    if not isinstance(config, dict) or not {
        "n_items",
        "repeats",
        "seed",
        "smoke",
    } <= set(config):
        raise ValueError("config must carry n_items/repeats/seed/smoke")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("results must be a non-empty list")
    for entry in results:
        if not isinstance(entry, dict) or not (
            set(entry) == _RESULT_KEYS
            if schema == BENCH_SCHEMA
            else _RESULT_KEYS <= set(entry)
        ):
            raise ValueError(f"bad result keys: {sorted(entry)}")
        for key in ("seq_seconds", "batch_seconds", "speedup"):
            if not (isinstance(entry[key], (int, float)) and entry[key] > 0):
                raise ValueError(f"{entry['synopsis']}: {key} must be positive")
        if entry["equivalent"] is not True:
            raise ValueError(
                f"{entry['synopsis']}: batch ingest diverged from sequential"
            )


def format_table(payload: dict) -> str:
    """Render the payload as an aligned human-readable table."""
    header = (
        f"{'synopsis':<24} {'items':>8} {'seq it/s':>12} "
        f"{'batch it/s':>12} {'speedup':>8}  equal"
    )
    lines = [header, "-" * len(header)]
    for entry in payload["results"]:
        lines.append(
            f"{entry['synopsis']:<24} {entry['n_items']:>8} "
            f"{entry['seq_items_per_s']:>12,.0f} "
            f"{entry['batch_items_per_s']:>12,.0f} "
            f"{entry['speedup']:>7.2f}x  {'yes' if entry['equivalent'] else 'NO'}"
        )
    return "\n".join(lines)
