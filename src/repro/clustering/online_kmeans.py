"""Online (sequential) k-means.

MacQueen's sequential update: assign each arrival to its nearest centre and
move that centre by ``1/n_assigned`` toward the point. O(k·d) per update,
the simplest member of the stream-clustering family surveyed in
[Silva et al., CSUR 2013] (Table 1's clustering citation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase


class OnlineKMeans(SynopsisBase):
    """Sequential k-means over d-dimensional points."""

    def __init__(self, k: int, dims: int, learning_decay: bool = True, seed: int = 0):
        if k <= 0:
            raise ParameterError("k must be positive")
        if dims <= 0:
            raise ParameterError("dims must be positive")
        self.k = k
        self.dims = dims
        self.learning_decay = learning_decay
        self.count = 0
        self._centres = np.zeros((k, dims))
        self._counts = np.zeros(k, dtype=np.int64)
        self._initialised = 0  # centres seeded with the first k points

    def update(self, item: Sequence[float]) -> None:
        x = np.asarray(item, dtype=np.float64)
        if x.shape != (self.dims,):
            raise ParameterError(f"expected a point of dimension {self.dims}")
        self.count += 1
        if self._initialised < self.k:
            self._centres[self._initialised] = x
            self._counts[self._initialised] = 1
            self._initialised += 1
            return
        idx = self.assign(x)
        self._counts[idx] += 1
        rate = 1.0 / self._counts[idx] if self.learning_decay else 0.05
        self._centres[idx] += rate * (x - self._centres[idx])

    def assign(self, x: Sequence[float]) -> int:
        """Index of the nearest centre to *x*."""
        x = np.asarray(x, dtype=np.float64)
        live = self._centres[: max(self._initialised, 1)]
        return int(np.argmin(((live - x) ** 2).sum(axis=1)))

    @property
    def centres(self) -> np.ndarray:
        """Copy of the current centres (k x dims)."""
        return self._centres.copy()

    def inertia(self, points: np.ndarray) -> float:
        """Sum of squared distances of *points* to their nearest centres."""
        pts = np.asarray(points, dtype=np.float64)
        d2 = ((pts[:, None, :] - self._centres[None, :, :]) ** 2).sum(axis=2)
        return float(d2.min(axis=1).sum())

    def _merge_key(self) -> tuple:
        return (self.k, self.dims)

    def _merge_into(self, other: "OnlineKMeans") -> None:
        """Merge by clustering the union of weighted centres down to k."""
        from repro.clustering.kmedian import weighted_kmeans

        centres = np.vstack([self._centres, other._centres])
        weights = np.concatenate([self._counts, other._counts]).astype(np.float64)
        live = weights > 0
        merged_centres, merged_weights = weighted_kmeans(
            centres[live], weights[live], self.k, seed=0
        )
        self._centres[: len(merged_centres)] = merged_centres
        self._counts[: len(merged_weights)] = merged_weights.astype(np.int64)
        self._initialised = max(self._initialised, len(merged_centres))
        self.count += other.count
