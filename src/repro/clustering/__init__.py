"""Stream clustering.

Table 1 row "Clustering" — cluster a data stream (application: medical
imaging); Section 2's k-median technique.
"""

from repro.clustering.clustream import CluStream, MicroCluster
from repro.clustering.kmedian import StreamingKMedian, weighted_kmeans
from repro.clustering.online_kmeans import OnlineKMeans

__all__ = [
    "CluStream",
    "MicroCluster",
    "OnlineKMeans",
    "StreamingKMedian",
    "weighted_kmeans",
]
