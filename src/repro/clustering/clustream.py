"""CluStream-style micro-cluster maintenance [Aggarwal et al., VLDB 2003].

The micro-cluster (cluster feature vector) keeps ``(n, linear_sum,
square_sum, timestamp stats)`` per cluster — additive, so micro-clusters
merge exactly. The online phase absorbs points into the nearest
micro-cluster within its RMS boundary, else creates a new one (evicting the
stalest when over budget); the offline phase runs weighted k-means over
micro-cluster centroids to answer "cluster the stream now" queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.clustering.kmedian import weighted_kmeans


@dataclass
class MicroCluster:
    """Additive cluster feature vector (CF) of one micro-cluster."""

    n: float
    ls: np.ndarray  # linear sum
    ss: np.ndarray  # per-dimension square sum
    last_ts: float

    @property
    def centroid(self) -> np.ndarray:
        return self.ls / self.n

    @property
    def rms_radius(self) -> float:
        var = self.ss / self.n - (self.ls / self.n) ** 2
        return float(np.sqrt(max(float(var.sum()), 0.0)))

    def absorb(self, x: np.ndarray, ts: float) -> None:
        """Fold point *x* (at time *ts*) into the CF vector."""
        self.n += 1.0
        self.ls += x
        self.ss += x * x
        self.last_ts = ts

    def merge(self, other: "MicroCluster") -> None:
        """Add another CF vector (CF vectors are additive)."""
        self.n += other.n
        self.ls += other.ls
        self.ss += other.ss
        self.last_ts = max(self.last_ts, other.last_ts)


class CluStream(SynopsisBase):
    """Online micro-clustering with offline macro-cluster queries."""

    def __init__(
        self,
        dims: int,
        max_micro_clusters: int = 50,
        boundary_factor: float = 2.0,
        seed: int = 0,
    ):
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if max_micro_clusters <= 1:
            raise ParameterError("need at least 2 micro-clusters")
        if boundary_factor <= 0:
            raise ParameterError("boundary_factor must be positive")
        self.dims = dims
        self.max_micro_clusters = max_micro_clusters
        self.boundary_factor = boundary_factor
        self.seed = seed
        self.count = 0
        self._clusters: list[MicroCluster] = []

    def update(self, item: Sequence[float]) -> None:
        x = np.asarray(item, dtype=np.float64)
        if x.shape != (self.dims,):
            raise ParameterError(f"expected a point of dimension {self.dims}")
        ts = float(self.count)
        self.count += 1
        if len(self._clusters) < self.max_micro_clusters:
            # Initialisation phase (CluStream seeds micro-clusters offline;
            # seeding with the first arrivals as singletons avoids an early
            # catch-all cluster swallowing distant modes).
            self._clusters.append(MicroCluster(1.0, x.copy(), x * x, ts))
            return
        centroids = np.array([c.centroid for c in self._clusters])
        d = np.sqrt(((centroids - x) ** 2).sum(axis=1))
        nearest = int(d.argmin())
        cluster = self._clusters[nearest]
        boundary = self.boundary_factor * max(cluster.rms_radius, 1e-9)
        if cluster.n < 2:
            # Radius undefined for singletons: use distance to next cluster.
            other = np.partition(d, 1)[1] if len(d) > 1 else np.inf
            boundary = other / 2.0
        if d[nearest] <= boundary:
            cluster.absorb(x, ts)
            return
        # New micro-cluster; enforce the budget by evicting the stalest or
        # merging the two closest.
        self._clusters.append(MicroCluster(1.0, x.copy(), x * x, ts))
        if len(self._clusters) > self.max_micro_clusters:
            self._shrink()

    def _shrink(self) -> None:
        stale_cutoff = self.count - 10 * self.max_micro_clusters
        stalest = min(range(len(self._clusters)), key=lambda i: self._clusters[i].last_ts)
        if self._clusters[stalest].last_ts < stale_cutoff:
            self._clusters.pop(stalest)
            return
        # Merge the closest pair of centroids.
        centroids = np.array([c.centroid for c in self._clusters])
        best = (0, 1, np.inf)
        for i in range(len(centroids)):
            d = ((centroids[i + 1 :] - centroids[i]) ** 2).sum(axis=1)
            if len(d):
                j = int(d.argmin())
                if d[j] < best[2]:
                    best = (i, i + 1 + j, float(d[j]))
        i, j, __ = best
        self._clusters[i].merge(self._clusters[j])
        self._clusters.pop(j)

    @property
    def n_micro_clusters(self) -> int:
        """Live micro-clusters (bounded by the budget)."""
        return len(self._clusters)

    def micro_centroids(self) -> np.ndarray:
        """Centroids of the live micro-clusters."""
        if not self._clusters:
            raise ParameterError("no points seen yet")
        return np.array([c.centroid for c in self._clusters])

    def macro_clusters(self, k: int) -> np.ndarray:
        """Offline phase: k centres from weighted micro-cluster centroids."""
        if not self._clusters:
            raise ParameterError("no points seen yet")
        centroids = self.micro_centroids()
        weights = np.array([c.n for c in self._clusters])
        centres, __ = weighted_kmeans(centroids, weights, k, seed=self.seed)
        return centres

    def _merge_key(self) -> tuple:
        return (self.dims, self.max_micro_clusters, self.boundary_factor)

    def _merge_into(self, other: "CluStream") -> None:
        """CF vectors are additive: adopt and re-shrink to budget."""
        import copy

        self._clusters.extend(copy.deepcopy(other._clusters))
        while len(self._clusters) > self.max_micro_clusters:
            self._shrink()
        self.count += other.count
