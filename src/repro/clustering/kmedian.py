"""Streaming k-median by hierarchical divide-and-conquer.

[Guha, Mishra, Motwani & O'Callaghan, FOCS 2000] — Section 2's k-median
citation: buffer m points, cluster the buffer down to k weighted centres,
keep only the centres, and recursively cluster centres-of-centres when a
level fills up. Space is O(levels * m); the approximation factor compounds
by a constant per level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_np_rng


def weighted_kmeans(
    points: np.ndarray,
    weights: np.ndarray,
    k: int,
    iterations: int = 10,
    seed: int = 0,
    restarts: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm on weighted points; returns (centres, weights).

    Used as the in-memory clustering step of the divide-and-conquer scheme
    (the theory prescribes any O(1)-approximate k-median; weighted Lloyd's
    with k-means++ seeding and a few restarts is the standard practical
    stand-in). The lowest-cost restart wins.
    """
    pts = np.asarray(points, dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if len(pts) == 0:
        raise ParameterError("cannot cluster zero points")
    if k <= 0:
        raise ParameterError("k must be positive")
    if restarts <= 0:
        raise ParameterError("restarts must be positive")
    k = min(k, len(pts))
    best: tuple[float, np.ndarray, np.ndarray] | None = None
    for r in range(restarts):
        rng = make_np_rng(seed + r)
        # k-means++ seeding (weighted).
        centres = [pts[rng.choice(len(pts), p=w / w.sum())]]
        for __ in range(k - 1):
            d2 = np.min([((pts - c) ** 2).sum(axis=1) for c in centres], axis=0)
            probs = d2 * w
            total = probs.sum()
            if total <= 0:
                probs, total = w, w.sum()
            centres.append(pts[rng.choice(len(pts), p=probs / total)])
        centres = np.array(centres)
        for __ in range(iterations):
            d2 = ((pts[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
            assign = d2.argmin(axis=1)
            for j in range(k):
                mask = assign == j
                if mask.any():
                    centres[j] = np.average(pts[mask], axis=0, weights=w[mask])
        d2 = ((pts[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        cost = float((d2.min(axis=1) * w).sum())
        if best is None or cost < best[0]:
            out_weights = np.array([w[assign == j].sum() for j in range(k)])
            keep = out_weights > 0
            best = (cost, centres[keep].copy(), out_weights[keep])
    return best[1], best[2]


class StreamingKMedian(SynopsisBase):
    """Divide-and-conquer streaming k-median/k-means clustering."""

    def __init__(self, k: int, dims: int, buffer_size: int = 500, seed: int = 0):
        if k <= 0:
            raise ParameterError("k must be positive")
        if dims <= 0:
            raise ParameterError("dims must be positive")
        if buffer_size < 2 * k:
            raise ParameterError("buffer_size must be at least 2k")
        self.k = k
        self.dims = dims
        self.buffer_size = buffer_size
        self.seed = seed
        self.count = 0
        self._buffer: list[np.ndarray] = []
        # levels[i] holds weighted centres produced by i rounds of reduction.
        self._levels: list[tuple[np.ndarray, np.ndarray] | None] = []

    def update(self, item: Sequence[float]) -> None:
        x = np.asarray(item, dtype=np.float64)
        if x.shape != (self.dims,):
            raise ParameterError(f"expected a point of dimension {self.dims}")
        self.count += 1
        self._buffer.append(x)
        if len(self._buffer) >= self.buffer_size:
            self._reduce_buffer()

    def _reduce_buffer(self) -> None:
        pts = np.array(self._buffer)
        self._buffer = []
        centres, weights = weighted_kmeans(
            pts, np.ones(len(pts)), self.k, seed=self.seed + self.count
        )
        self._push_level(0, centres, weights)

    def _push_level(self, level: int, centres: np.ndarray, weights: np.ndarray) -> None:
        while len(self._levels) <= level:
            self._levels.append(None)
        if self._levels[level] is None:
            self._levels[level] = (centres, weights)
            return
        # Level full: merge the two centre sets and promote.
        old_c, old_w = self._levels[level]
        self._levels[level] = None
        merged_c = np.vstack([old_c, centres])
        merged_w = np.concatenate([old_w, weights])
        new_c, new_w = weighted_kmeans(
            merged_c, merged_w, self.k, seed=self.seed + level + 1
        )
        self._push_level(level + 1, new_c, new_w)

    def centres(self) -> np.ndarray:
        """Final k centres clustering everything seen so far."""
        all_c: list[np.ndarray] = []
        all_w: list[np.ndarray] = []
        if self._buffer:
            pts = np.array(self._buffer)
            all_c.append(pts)
            all_w.append(np.ones(len(pts)))
        for entry in self._levels:
            if entry is not None:
                all_c.append(entry[0])
                all_w.append(entry[1])
        if not all_c:
            raise ParameterError("no points seen yet")
        centres, __ = weighted_kmeans(
            np.vstack(all_c), np.concatenate(all_w), self.k, seed=self.seed
        )
        return centres

    def cost(self, points: np.ndarray) -> float:
        """Sum of distances of *points* to the nearest final centre."""
        centres = self.centres()
        pts = np.asarray(points, dtype=np.float64)
        d = np.sqrt(((pts[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2))
        return float(d.min(axis=1).sum())

    @property
    def memory_points(self) -> int:
        """Points + weighted centres currently held (space gauge)."""
        held = len(self._buffer)
        for entry in self._levels:
            if entry is not None:
                held += len(entry[0])
        return held

    def _merge_key(self) -> tuple:
        return (self.k, self.dims, self.buffer_size)

    def _merge_into(self, other: "StreamingKMedian") -> None:
        """Adopt the other summary's centres as weighted input."""
        for entry in other._levels:
            if entry is not None:
                self._push_level(0, entry[0].copy(), entry[1].copy())
        for x in other._buffer:
            self.update(x)
        self.count += other.count - len(other._buffer)
