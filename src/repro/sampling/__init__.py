"""Stream sampling: uniform, weighted, time-biased and sliding-window.

Table 1 row "Sampling" — obtain a representative set of the stream
(application: A/B testing).
"""

from repro.sampling.biased import BiasedReservoirSampler
from repro.sampling.distinct import DistinctSampler
from repro.sampling.distributed import union_sample
from repro.sampling.reservoir import AlgorithmLSampler, ReservoirSampler
from repro.sampling.weighted import ExpJSampler, WeightedReservoirSampler
from repro.sampling.window import ChainSampler, PrioritySampler

__all__ = [
    "DistinctSampler",
    "AlgorithmLSampler",
    "BiasedReservoirSampler",
    "ChainSampler",
    "ExpJSampler",
    "PrioritySampler",
    "ReservoirSampler",
    "WeightedReservoirSampler",
    "union_sample",
]
