"""Distinct sampling: uniform samples over the *support* of a stream.

A uniform stream sample is dominated by heavy hitters; many analyses
(inverse distributions, "how many items occurred exactly once?" — the
Cormode–Muthukrishnan–Rozenbaum citation in Table 1) instead need a
uniform sample of the *distinct* items. Gibbons-style distinct sampling:
keep items whose hash falls below a shrinking threshold (level), halving
the threshold whenever the buffer overflows — every distinct item survives
with equal probability ``2^-level`` regardless of its frequency, and
per-item counts are tracked exactly for the survivors.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase

_HASH_BITS = 64


class DistinctSampler(SynopsisBase):
    """Uniform sample of distinct items with exact counts for survivors."""

    def __init__(self, capacity: int = 256, seed: int = 0):
        if capacity < 2:
            raise ParameterError("capacity must be at least 2")
        self.capacity = capacity
        self.family = HashFamily(seed)
        self.count = 0
        self.level = 0  # items kept iff hash < 2^(64 - level)
        self._counts: dict[Hashable, int] = {}

    def _keep(self, item: Any) -> bool:
        return self.family.hash(item) < (1 << (_HASH_BITS - self.level))

    def update(self, item: Any) -> None:
        self.count += 1
        if item in self._counts:
            self._counts[item] += 1
            return
        if not self._keep(item):
            return
        self._counts[item] = 1
        while len(self._counts) > self.capacity:
            self.level += 1
            self._counts = {it: c for it, c in self._counts.items() if self._keep(it)}

    @property
    def sample(self) -> dict[Hashable, int]:
        """Surviving distinct items with their exact stream counts."""
        return dict(self._counts)

    @property
    def inclusion_probability(self) -> float:
        """Probability with which each distinct item is in the sample."""
        return 2.0**-self.level

    def estimate_distinct(self) -> float:
        """Estimated number of distinct items: |sample| / p."""
        return len(self._counts) / self.inclusion_probability

    def estimate_rarity(self, k: int = 1) -> float:
        """Estimated fraction of distinct items occurring exactly *k* times
        (the 'rarity' of Datar–Muthukrishnan)."""
        if k <= 0:
            raise ParameterError("k must be positive")
        if not self._counts:
            return 0.0
        return sum(1 for c in self._counts.values() if c == k) / len(self._counts)

    def _merge_key(self) -> tuple:
        return (self.capacity, self.family.seed)

    def _merge_into(self, other: "DistinctSampler") -> None:
        self.level = max(self.level, other.level)
        merged: dict[Hashable, int] = {}
        for source in (self._counts, other._counts):
            for item, cnt in source.items():
                if self._keep(item):
                    merged[item] = merged.get(item, 0) + cnt
        self._counts = merged
        while len(self._counts) > self.capacity:
            self.level += 1
            self._counts = {it: c for it, c in self._counts.items() if self._keep(it)}
        self.count += other.count

    def __len__(self) -> int:
        return len(self._counts)
