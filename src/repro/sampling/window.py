"""Sampling over sliding windows [Babcock, Datar & Motwani, SODA 2002].

Two window models from the paper:

* **Sequence-based** windows ("the last n elements") — :class:`ChainSampler`.
  Chain sampling keeps one sample per chain plus the chain of its future
  replacements, using O(1) expected memory per chain.
* **Timestamp-based** windows ("the last t seconds") — :class:`PrioritySampler`.
  Every element draws a random priority; the sample is the max-priority
  live element, and it suffices to retain elements not dominated by a later,
  higher-priority element (expected O(log n) retained).

``k`` independent chains/priority structures give a size-``k`` with-replacement
sample of the window.
"""

from __future__ import annotations

from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import derive_seed, make_rng


class _Chain:
    """One chain-sample: the current sample and its queued replacements."""

    __slots__ = ("rng", "sample_index", "sample_value", "successor", "chain")

    def __init__(self, rng):
        self.rng = rng
        self.sample_index: int | None = None
        self.sample_value: Any = None
        self.successor: int | None = None  # index whose arrival we await
        self.chain: list[tuple[int, Any]] = []  # queued (index, value) replacements

    def observe(self, index: int, item: Any, window: int) -> None:
        in_window_count = min(index + 1, window)
        if self.rng.random() < 1.0 / in_window_count:
            # item becomes the new sample; discard any queued chain.
            self.sample_index = index
            self.sample_value = item
            self.chain = []
            self.successor = self.rng.randrange(index + 1, index + window + 1)
        elif self.successor is not None and index == self.successor:
            self.chain.append((index, item))
            self.successor = self.rng.randrange(index + 1, index + window + 1)
        # Expire the sample if it slid out of the window.
        if self.sample_index is not None and self.sample_index <= index - window:
            while self.chain and self.chain[0][0] <= index - window:
                self.chain.pop(0)
            if self.chain:
                self.sample_index, self.sample_value = self.chain.pop(0)
            else:  # extremely unlikely; resynchronise on the next arrival
                self.sample_index = None
                self.sample_value = None


class ChainSampler(SynopsisBase):
    """Size-*k* with-replacement sample of the last *window* elements."""

    def __init__(self, k: int, window: int, seed: int | None = 0):
        if k <= 0:
            raise ParameterError("k must be positive")
        if window <= 0:
            raise ParameterError("window must be positive")
        self.k = k
        self.window = window
        self.count = 0
        base = seed if seed is not None else 0
        self._chains = [_Chain(make_rng(derive_seed(base, i))) for i in range(k)]

    @property
    def sample(self) -> list[Any]:
        """Current window sample (one item per chain that has a live sample)."""
        return [c.sample_value for c in self._chains if c.sample_index is not None]

    def update(self, item: Any) -> None:
        index = self.count
        self.count += 1
        for chain in self._chains:
            chain.observe(index, item, self.window)

    def _merge_key(self) -> tuple:
        return (self.k, self.window)

    def _merge_into(self, other: "ChainSampler") -> None:
        raise NotImplementedError(
            "chain samples are bound to stream positions and cannot be merged; "
            "sample each partition's window separately"
        )


class PrioritySampler(SynopsisBase):
    """Size-*k* with-replacement sample of a timestamp-based sliding window.

    ``update_at(item, timestamp)`` records an element; ``sample_at(now)``
    returns one sampled element per independent replica among elements with
    ``timestamp > now - horizon``.
    """

    def __init__(self, k: int, horizon: float, seed: int | None = 0):
        if k <= 0:
            raise ParameterError("k must be positive")
        if horizon <= 0:
            raise ParameterError("horizon must be positive")
        self.k = k
        self.horizon = horizon
        self.count = 0
        base = seed if seed is not None else 0
        self._rngs = [make_rng(derive_seed(base, i)) for i in range(k)]
        # Per replica: stack of (timestamp, priority, item) kept such that
        # priorities are decreasing in time — later dominating elements evict
        # earlier dominated ones.
        self._stacks: list[list[tuple[float, float, Any]]] = [[] for __ in range(k)]
        self._last_ts = float("-inf")

    def update(self, item: Any) -> None:
        self.update_at(item, self._last_ts + 1.0 if self._last_ts != float("-inf") else 0.0)

    def update_at(self, item: Any, timestamp: float) -> None:
        """Record *item* arriving at *timestamp* (non-decreasing)."""
        if timestamp < self._last_ts:
            raise ParameterError("timestamps must be non-decreasing")
        self._last_ts = timestamp
        self.count += 1
        for rng, stack in zip(self._rngs, self._stacks):
            priority = rng.random()
            while stack and stack[-1][1] <= priority:
                stack.pop()
            stack.append((timestamp, priority, item))

    def sample_at(self, now: float) -> list[Any]:
        """One sample per replica from the window ``(now - horizon, now]``."""
        cutoff = now - self.horizon
        out = []
        for stack in self._stacks:
            while stack and stack[0][0] <= cutoff:
                stack.pop(0)
            if stack:
                out.append(stack[0][2])
        return out

    @property
    def retained(self) -> int:
        """Total elements currently retained across replicas (memory gauge)."""
        return sum(len(s) for s in self._stacks)

    def _merge_key(self) -> tuple:
        return (self.k, self.horizon)

    def _merge_into(self, other: "PrioritySampler") -> None:
        raise NotImplementedError(
            "priority samples are bound to local timestamps and cannot be merged"
        )
