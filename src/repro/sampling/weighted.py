"""Weighted reservoir sampling (Efraimidis–Spirakis A-Res / A-ExpJ).

Each stream element carries a weight; the sampler keeps ``k`` elements such
that the inclusion probability of an element is proportional to its weight
(sampling without replacement). A-Res assigns every element the key
``u^(1/w)`` and keeps the top-k keys; A-ExpJ is the exponential-jumps
variant that skips elements whose keys cannot enter the heap, trading RNG
calls for a threshold test.
"""

from __future__ import annotations

import heapq
import math
from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class WeightedReservoirSampler(SynopsisBase):
    """A-Res: weighted sample without replacement of size *k*.

    ``update(item)`` takes unit weight; ``update_weighted(item, w)`` takes an
    explicit positive weight. The heap stores ``(key, tiebreak, item)`` where
    ``key = u**(1/w)``; the ``k`` largest keys form the sample.
    """

    def __init__(self, k: int, seed: int | None = 0):
        if k <= 0:
            raise ParameterError("sample size k must be positive")
        self.k = k
        self.count = 0
        self._rng = make_rng(seed)
        self._heap: list[tuple[float, int, Any]] = []  # min-heap of keys
        self._tiebreak = 0

    @property
    def sample(self) -> list[Any]:
        """The current weighted sample (copy; at most ``k`` items)."""
        return [item for __, __, item in self._heap]

    def update(self, item: Any) -> None:
        self.update_weighted(item, 1.0)

    def update_weighted(self, item: Any, weight: float) -> None:
        """Absorb *item* with the given positive *weight*."""
        if weight <= 0:
            raise ParameterError("weight must be positive")
        self.count += 1
        key = self._rng.random() ** (1.0 / weight)
        self._push(key, item)

    def _push(self, key: float, item: Any) -> None:
        self._tiebreak += 1
        entry = (key, self._tiebreak, item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif key > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "WeightedReservoirSampler") -> None:
        # Keys are globally comparable, so merging is keeping the top-k keys
        # of the union — exactly the distributed A-Res merge rule.
        for key, __, item in other._heap:
            self._push(key, item)
        self.count += other.count

    def __len__(self) -> int:
        return len(self._heap)


class ExpJSampler(WeightedReservoirSampler):
    """A-ExpJ: same distribution as A-Res with exponential jumps.

    Maintains a running weight threshold ``X_w``; elements are skipped until
    the accumulated weight crosses it, at which point one element enters the
    heap. RNG calls drop from O(n) to O(k log(n/k)) in expectation.
    """

    def __init__(self, k: int, seed: int | None = 0):
        super().__init__(k, seed=seed)
        self._x_w: float | None = None
        self._w_acc = 0.0

    def update_weighted(self, item: Any, weight: float) -> None:
        if weight <= 0:
            raise ParameterError("weight must be positive")
        self.count += 1
        if len(self._heap) < self.k:
            key = self._rng.random() ** (1.0 / weight)
            self._push(key, item)
            if len(self._heap) == self.k:
                self._reset_jump()
            return
        assert self._x_w is not None
        self._w_acc += weight
        if self._w_acc >= self._x_w:
            t_w = self._heap[0][0] ** weight
            r2 = self._rng.uniform(t_w, 1.0)
            key = r2 ** (1.0 / weight)
            self._push(key, item)
            self._reset_jump()

    def _reset_jump(self) -> None:
        r = self._rng.random()
        threshold = self._heap[0][0]
        self._x_w = math.log(r) / math.log(threshold) if threshold > 0 else 0.0
        self._w_acc = 0.0

    def _merge_into(self, other: "WeightedReservoirSampler") -> None:
        super()._merge_into(other)
        if len(self._heap) == self.k:
            self._reset_jump()
