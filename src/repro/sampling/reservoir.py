"""Uniform reservoir sampling (Vitter's Algorithm R and Algorithm L).

A reservoir sampler maintains a uniform random sample of size ``k`` over an
unbounded stream using O(k) memory. Algorithm R [Vitter 1985] does one RNG
call per element; Algorithm L skips ahead geometrically and touches the RNG
only O(k log(n/k)) times, which matters at high stream rates.

Both produce exactly the same distribution: every size-``k`` subset of the
prefix seen so far is equally likely.
"""

from __future__ import annotations

import math
from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class ReservoirSampler(SynopsisBase):
    """Classic Algorithm R uniform reservoir sample of size *k*.

    ``sample`` exposes the current reservoir (a list of at most ``k``
    items); ``count`` is the number of stream elements seen. Two reservoirs
    over disjoint sub-streams merge into a uniform sample of the union.
    """

    def __init__(self, k: int, seed: int | None = 0):
        if k <= 0:
            raise ParameterError("reservoir size k must be positive")
        self.k = k
        self.count = 0
        self._rng = make_rng(seed)
        self._reservoir: list[Any] = []

    @property
    def sample(self) -> list[Any]:
        """The current uniform sample (copy; at most ``k`` items)."""
        return list(self._reservoir)

    def update(self, item: Any) -> None:
        self.count += 1
        if len(self._reservoir) < self.k:
            self._reservoir.append(item)
            return
        j = self._rng.randrange(self.count)
        if j < self.k:
            self._reservoir[j] = item

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "ReservoirSampler") -> None:
        # Draw each slot of the merged reservoir from self/other proportional
        # to their stream counts; sampling *without replacement* from each
        # side keeps the union sample uniform.
        total = self.count + other.count
        if total == 0:
            return
        mine = list(self._reservoir)
        theirs = list(other._reservoir)
        self._rng.shuffle(mine)
        self._rng.shuffle(theirs)
        merged: list[Any] = []
        while len(merged) < self.k and (mine or theirs):
            take_mine = self._rng.random() < self.count / total if mine and theirs else bool(mine)
            merged.append(mine.pop() if take_mine else theirs.pop())
        self._reservoir = merged
        self.count = total

    def __len__(self) -> int:
        return len(self._reservoir)


class AlgorithmLSampler(SynopsisBase):
    """Vitter-style skip-based reservoir sampling (Li's Algorithm L).

    Identical output distribution to :class:`ReservoirSampler`, but instead
    of flipping a coin per element it computes how many elements to *skip*
    before the next replacement, so the per-element cost is O(1) amortised
    with far fewer RNG calls — the variant used in high-rate pipelines.
    """

    def __init__(self, k: int, seed: int | None = 0):
        if k <= 0:
            raise ParameterError("reservoir size k must be positive")
        self.k = k
        self.count = 0
        self._rng = make_rng(seed)
        self._reservoir: list[Any] = []
        self._w = math.exp(math.log(self._rng.random()) / k)
        self._next = k + self._skip()

    def _skip(self) -> int:
        return int(math.floor(math.log(self._rng.random()) / math.log(1.0 - self._w))) + 1

    @property
    def sample(self) -> list[Any]:
        """The current uniform sample (copy; at most ``k`` items)."""
        return list(self._reservoir)

    def update(self, item: Any) -> None:
        self.count += 1
        if len(self._reservoir) < self.k:
            self._reservoir.append(item)
            return
        if self.count >= self._next:
            self._reservoir[self._rng.randrange(self.k)] = item
            self._w *= math.exp(math.log(self._rng.random()) / self.k)
            self._next += self._skip()

    def _merge_key(self) -> tuple:
        return (self.k,)

    def _merge_into(self, other: "AlgorithmLSampler") -> None:
        total = self.count + other.count
        if total == 0:
            return
        mine = list(self._reservoir)
        theirs = list(other._reservoir)
        self._rng.shuffle(mine)
        self._rng.shuffle(theirs)
        merged: list[Any] = []
        while len(merged) < self.k and (mine or theirs):
            take_mine = self._rng.random() < self.count / total if mine and theirs else bool(mine)
            merged.append(mine.pop() if take_mine else theirs.pop())
        self._reservoir = merged
        self.count = total

    def __len__(self) -> int:
        return len(self._reservoir)
