"""Biased reservoir sampling for evolving streams [Aggarwal, VLDB 2006].

A uniform reservoir treats a ten-year-old element the same as one from a
second ago, which is wrong when the stream's distribution drifts. Aggarwal's
biased reservoir keeps element ``r`` (the r-th most recent point) with
probability proportional to ``e^(-lambda * age)``; with bias rate ``lambda``
the required reservoir size is only ``1/lambda``, and the maintenance rule
is a single coin flip per arrival.
"""

from __future__ import annotations

from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.mergeable import SynopsisBase
from repro.common.rng import make_rng


class BiasedReservoirSampler(SynopsisBase):
    """Exponentially time-biased reservoir with bias rate *lam*.

    Implements the memory-less bias case of Aggarwal's algorithm: capacity
    is ``ceil(1/lam)``; every arriving element is inserted, and with
    probability ``fill_fraction`` it *replaces* a uniformly random resident
    (otherwise the reservoir grows). In steady state the age distribution of
    residents is exponential with rate ``lam``.
    """

    def __init__(self, lam: float, seed: int | None = 0):
        if not 0 < lam <= 1:
            raise ParameterError("bias rate lam must lie in (0, 1]")
        self.lam = lam
        self.capacity = max(1, round(1.0 / lam))
        self.count = 0
        self._rng = make_rng(seed)
        self._reservoir: list[Any] = []

    @property
    def sample(self) -> list[Any]:
        """The current biased sample (copy)."""
        return list(self._reservoir)

    def update(self, item: Any) -> None:
        self.count += 1
        fill = len(self._reservoir) / self.capacity
        if self._rng.random() < fill:
            self._reservoir[self._rng.randrange(len(self._reservoir))] = item
        else:
            self._reservoir.append(item)

    def recency_weight(self, age: int) -> float:
        """The target inclusion weight of an element *age* arrivals old."""
        import math

        return math.exp(-self.lam * age)

    def _merge_key(self) -> tuple:
        return (self.lam,)

    def _merge_into(self, other: "BiasedReservoirSampler") -> None:
        # Biased samples are recency-weighted, so a faithful merge would need
        # arrival times. We approximate by pooling and subsampling uniformly,
        # which preserves capacity; callers who need exact bias across
        # partitions should sample per-partition post-merge.
        pool = self._reservoir + other._reservoir
        self._rng.shuffle(pool)
        self._reservoir = pool[: self.capacity]
        self.count += other.count

    def __len__(self) -> int:
        return len(self._reservoir)
