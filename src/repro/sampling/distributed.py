"""Merging per-partition samples into a union sample (scale-out sampling).

Section 2 of the paper requires streaming algorithms to "scale out":
partitions of a stream are sampled independently and the partial samples are
combined. For uniform reservoirs the correct combination is weighted
subsampling by partition counts, which :func:`union_sample` performs over
any number of compatible samplers.
"""

from __future__ import annotations

import copy
from typing import Sequence, TypeVar

from repro.common.exceptions import MergeError
from repro.sampling.reservoir import ReservoirSampler

S = TypeVar("S", bound=ReservoirSampler)


def union_sample(samplers: Sequence[S]) -> S:
    """Combine per-partition reservoir samplers into one union sampler.

    The inputs are untouched; the result is a sampler whose reservoir is a
    uniform sample over the concatenation of all partitions.
    """
    if not samplers:
        raise MergeError("union_sample needs at least one sampler")
    merged = copy.deepcopy(samplers[0])
    for sampler in samplers[1:]:
        merged.merge(sampler)
    return merged
