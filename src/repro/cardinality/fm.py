"""Probabilistic counting with stochastic averaging (Flajolet–Martin PCSA).

[Flajolet & Martin, FOCS 1983] — the original cardinality sketch. Each item
is routed to one of *m* bitmaps by its low hash bits; the remaining bits
record the position of the lowest set bit. The estimate averages the index
of the lowest *unset* bit across bitmaps:

    E = (m / phi) * 2^(mean R),   phi ≈ 0.77351

Standard error is ~0.78/sqrt(m) — superseded by LogLog/HyperLogLog but kept
as the historical baseline the survey cites first.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase

_PHI = 0.77351
_BITS = 32  # bit positions tracked per bitmap


class FlajoletMartin(SynopsisBase):
    """PCSA sketch with *m* bitmaps (m must be a power of two)."""

    def __init__(self, m: int = 64, seed: int = 0):
        if m <= 0 or m & (m - 1):
            raise ParameterError("bitmap count m must be a positive power of two")
        self.m = m
        self.family = HashFamily(seed)
        self.count = 0
        self._bitmaps = np.zeros((m, _BITS), dtype=bool)

    def update(self, item: Any) -> None:
        self.count += 1
        h = self.family.hash(item)
        bucket = h & (self.m - 1)
        rest = h >> self.m.bit_length() - 1 if self.m > 1 else h
        rank = _lowest_set_bit(rest)
        if rank < _BITS:
            self._bitmaps[bucket, rank] = True

    def estimate(self) -> float:
        """Estimated number of distinct items seen."""
        total_r = 0
        for bucket in range(self.m):
            row = self._bitmaps[bucket]
            r = 0
            while r < _BITS and row[r]:
                r += 1
            total_r += r
        return self.m / _PHI * 2.0 ** (total_r / self.m)

    def _merge_key(self) -> tuple:
        return (self.m, self.family.seed)

    def _merge_into(self, other: "FlajoletMartin") -> None:
        self._bitmaps |= other._bitmaps
        self.count += other.count

    def _empty_clone(self) -> "FlajoletMartin":
        return FlajoletMartin(self.m, seed=self.family.seed)

    def _split_into(self, n: int) -> list["FlajoletMartin"]:
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._bitmaps.nbytes)


def _lowest_set_bit(x: int) -> int:
    """Index of the lowest set bit of *x* (large when x == 0)."""
    if x == 0:
        return _BITS
    return (x & -x).bit_length() - 1
