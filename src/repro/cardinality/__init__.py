"""Distinct-count (cardinality) estimation sketches.

Table 1 row "Estimating Cardinality" — estimate the number of distinct
elements (application: site audience analysis).
"""

from repro.cardinality.fm import FlajoletMartin
from repro.cardinality.hyperloglog import HyperLogLog
from repro.cardinality.kmv import KMinValues
from repro.cardinality.linear_counting import LinearCounter
from repro.cardinality.loglog import LogLog
from repro.cardinality.sliding_hll import SlidingHyperLogLog

__all__ = [
    "FlajoletMartin",
    "HyperLogLog",
    "KMinValues",
    "LinearCounter",
    "LogLog",
    "SlidingHyperLogLog",
]
