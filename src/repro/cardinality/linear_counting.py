"""Linear counting [Whang et al. 1990] — the small-range workhorse.

Hash each item to one of *m* bits; estimate distinct count as
``-m * ln(V)`` where ``V`` is the fraction of bits still zero. Space is
linear in the cardinality (hence the name) but the estimate is very accurate
while the bitmap is sparse, which is why HyperLogLog falls back to it for
small cardinalities.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase


class LinearCounter(SynopsisBase):
    """Bitmap cardinality estimator with *m* bits."""

    def __init__(self, m: int, seed: int = 0):
        if m <= 0:
            raise ParameterError("bitmap size m must be positive")
        self.m = m
        self.family = HashFamily(seed)
        self.count = 0
        self._bits = np.zeros(m, dtype=bool)

    def update(self, item: Any) -> None:
        self.count += 1
        self._bits[self.family.hash(item) % self.m] = True

    def estimate(self) -> float:
        """Estimated number of distinct items seen."""
        zeros = int(self.m - self._bits.sum())
        if zeros == 0:
            # Bitmap saturated: the estimator diverges; report the count
            # upper bound rather than infinity.
            return float(self.count)
        return -self.m * math.log(zeros / self.m)

    def _merge_key(self) -> tuple:
        return (self.m, self.family.seed)

    def _merge_into(self, other: "LinearCounter") -> None:
        self._bits |= other._bits
        self.count += other.count

    def _empty_clone(self) -> "LinearCounter":
        return LinearCounter(self.m, seed=self.family.seed)

    def _split_into(self, n: int) -> list["LinearCounter"]:
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._bits.nbytes)
