"""HyperLogLog [Flajolet, Fusy, Gandouet & Meunier, AofA 2007].

The near-optimal cardinality estimator: ``2^p`` registers, harmonic-mean
combination, standard error ``1.04/sqrt(m)``. This implementation includes
the practical corrections from "HyperLogLog in practice" [Heule, Nunkesser
& Hall, EDBT 2013]: linear-counting fallback for small cardinalities and
the empirical-style bias handling near the transition (we use the classic
threshold rule ``E <= 2.5 m`` with zero registers -> linear counting).

Registers merge by element-wise max, so HLLs computed per partition / per
window can be combined losslessly — the property that makes it the default
"site audience" sketch in every system of Table 2.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily, bit_length64
from repro.common.mergeable import SynopsisBase
from repro.common.serialization import dump_state, load_state

_TYPE_TAG = "hll"


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog(SynopsisBase):
    """HyperLogLog sketch with ``2^precision`` registers.

    ``precision`` of 14 gives ~0.8% standard error in 16 KiB; the default 12
    gives ~1.6% in 4 KiB.
    """

    def __init__(self, precision: int = 12, seed: int = 0):
        if not 4 <= precision <= 18:
            raise ParameterError("precision must lie in [4, 18]")
        self.precision = precision
        self.m = 1 << precision
        self.family = HashFamily(seed)
        self.count = 0
        self._registers = np.zeros(self.m, dtype=np.uint8)

    def update(self, item: Any) -> None:
        self.count += 1
        h = self.family.hash(item)
        bucket = h & (self.m - 1)
        rest = h >> self.precision
        width = 64 - self.precision
        rank = (width - rest.bit_length() + 1) if rest else (width + 1)
        if rank > self._registers[bucket]:
            self._registers[bucket] = rank

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest: hash once per item, ``np.maximum.at`` on registers.

        Bit-identical to sequential updates — register maxima commute, and
        the vectorized rank computation (:func:`bit_length64`) is exact over
        the full 64-bit hash range.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        hashes = self.family.hash_batch(items, 1)[:, 0]  # (n,) uint64
        buckets = (hashes & np.uint64(self.m - 1)).astype(np.intp)
        rest = hashes >> np.uint64(self.precision)
        width = 64 - self.precision
        ranks = np.where(rest > 0, width + 1 - bit_length64(rest), width + 1)
        np.maximum.at(self._registers, buckets, ranks.astype(np.uint8))
        self.count += len(items)

    def _raw_estimate(self) -> float:
        inv_sum = float(np.sum(2.0 ** (-self._registers.astype(np.float64))))
        return _alpha(self.m) * self.m * self.m / inv_sum

    def estimate(self) -> float:
        """Estimated number of distinct items seen, with range corrections."""
        raw = self._raw_estimate()
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * self.m and zeros:
            return self.m * math.log(self.m / zeros)  # linear counting
        two64 = 2.0**64
        if raw > two64 / 30.0:  # large-range collision correction
            return -two64 * math.log(1.0 - raw / two64)
        return raw

    def raw_estimate(self) -> float:
        """The uncorrected harmonic-mean estimate (ablation hook)."""
        return self._raw_estimate()

    def relative_error(self) -> float:
        """Theoretical standard error of this sketch: ``1.04/sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def _merge_key(self) -> tuple:
        return (self.precision, self.family.seed)

    def _merge_into(self, other: "HyperLogLog") -> None:
        np.maximum(self._registers, other._registers, out=self._registers)
        self.count += other.count

    def _empty_clone(self) -> "HyperLogLog":
        return HyperLogLog(self.precision, seed=self.family.seed)

    def _split_into(self, n: int) -> list["HyperLogLog"]:
        # Register max is idempotent but ``count`` sums, so shard 0 keeps
        # the registers and its siblings start zeroed.
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._registers.nbytes)

    def to_bytes(self) -> bytes:
        """Serialize to a versioned byte payload."""
        return dump_state(
            _TYPE_TAG,
            {
                "precision": self.precision,
                "seed": self.family.seed,
                "count": self.count,
                "registers": self._registers,
            },
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "HyperLogLog":
        """Reconstruct a sketch from :meth:`to_bytes` output."""
        state = load_state(_TYPE_TAG, payload)
        obj = cls(precision=state["precision"], seed=state["seed"])
        obj.count = state["count"]
        obj._registers = state["registers"].astype(np.uint8)
        return obj
