"""Sliding HyperLogLog [Chabchoub & Hébrail, ICDMW 2010].

Answers "how many distinct items in the last *w* seconds?" for any
``w <= horizon`` at query time. Each register keeps a List of Possible
Future Maxima (LPFM): (timestamp, rank) pairs such that no later pair has a
larger rank — older, dominated observations can never matter again and are
dropped, keeping the list short (O(log of window count) expected).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily, bit_length64
from repro.common.mergeable import SynopsisBase
from repro.cardinality.hyperloglog import _alpha


class SlidingHyperLogLog(SynopsisBase):
    """Sliding-window HLL with ``2^precision`` LPFM registers."""

    def __init__(self, precision: int = 12, horizon: float = 3600.0, seed: int = 0):
        if not 4 <= precision <= 18:
            raise ParameterError("precision must lie in [4, 18]")
        if horizon <= 0:
            raise ParameterError("horizon must be positive")
        self.precision = precision
        self.m = 1 << precision
        self.horizon = horizon
        self.family = HashFamily(seed)
        self.count = 0
        self._lpfm: list[list[tuple[float, int]]] = [[] for __ in range(self.m)]
        self._last_ts = float("-inf")

    def update(self, item: Any) -> None:
        """Record *item* one time unit after the previous item."""
        ts = self._last_ts + 1.0 if self._last_ts != float("-inf") else 0.0
        self.update_at(item, ts)

    def update_at(self, item: Any, timestamp: float) -> None:
        """Record *item* at *timestamp* (non-decreasing)."""
        if timestamp < self._last_ts:
            raise ParameterError("timestamps must be non-decreasing")
        self._last_ts = timestamp
        self.count += 1
        h = self.family.hash(item)
        bucket = h & (self.m - 1)
        rest = h >> self.precision
        width = 64 - self.precision
        rank = (width - rest.bit_length() + 1) if rest else (width + 1)
        lpfm = self._lpfm[bucket]
        # Drop pairs dominated by the new observation (older AND not larger),
        # and pairs that fell out of the horizon.
        cutoff = timestamp - self.horizon
        self._lpfm[bucket] = [
            (t, r) for t, r in lpfm if r > rank and t > cutoff
        ]
        self._lpfm[bucket].append((timestamp, rank))

    def update_many(self, items: Iterable[Any]) -> None:
        """Batch ingest: hashes, buckets and ranks come from one vectorized
        pass; the (inherently order-dependent) LPFM edits then replay
        per item, so the result is bit-identical to sequential updates
        while the per-item Python hashing overhead is amortized away.
        """
        items = items if isinstance(items, (list, tuple)) else list(items)
        if not items:
            return
        hashes = self.family.hash_batch(items, 1)[:, 0]  # (n,) uint64
        buckets = (hashes & np.uint64(self.m - 1)).astype(np.intp)
        rest = hashes >> np.uint64(self.precision)
        width = 64 - self.precision
        ranks = np.where(rest > 0, width + 1 - bit_length64(rest), width + 1)
        ts = self._last_ts + 1.0 if self._last_ts != float("-inf") else 0.0
        horizon = self.horizon
        lpfm_table = self._lpfm
        for bucket, rank in zip(buckets.tolist(), ranks.tolist()):
            cutoff = ts - horizon
            lpfm_table[bucket] = [
                (t, r) for t, r in lpfm_table[bucket] if r > rank and t > cutoff
            ]
            lpfm_table[bucket].append((ts, rank))
            ts += 1.0
        self._last_ts = ts - 1.0
        self.count += len(items)

    def estimate(self, window: float | None = None, now: float | None = None) -> float:
        """Distinct count over ``(now - window, now]`` (defaults: full horizon)."""
        window = self.horizon if window is None else window
        if window <= 0 or window > self.horizon:
            raise ParameterError("window must lie in (0, horizon]")
        now = self._last_ts if now is None else now
        cutoff = now - window
        registers = np.zeros(self.m, dtype=np.float64)
        zeros = 0
        for bucket, lpfm in enumerate(self._lpfm):
            best = 0
            for t, r in lpfm:
                if t > cutoff and r > best:
                    best = r
            registers[bucket] = best
            zeros += best == 0
        inv_sum = float(np.sum(2.0**-registers))
        raw = _alpha(self.m) * self.m * self.m / inv_sum
        if raw <= 2.5 * self.m and zeros:
            return self.m * math.log(self.m / zeros)
        return raw

    @property
    def retained(self) -> int:
        """Total LPFM entries retained (memory gauge)."""
        return sum(len(lpfm) for lpfm in self._lpfm)

    def _merge_key(self) -> tuple:
        return (self.precision, self.horizon, self.family.seed)

    def _merge_into(self, other: "SlidingHyperLogLog") -> None:
        """Merge LPFMs (legal when the two streams share a clock)."""
        for bucket in range(self.m):
            combined = sorted(self._lpfm[bucket] + other._lpfm[bucket])
            kept: list[tuple[float, int]] = []
            for t, r in reversed(combined):  # newest first
                if not kept or r > max(k[1] for k in kept):
                    kept.append((t, r))
            self._lpfm[bucket] = sorted(kept)
        self.count += other.count
        self._last_ts = max(self._last_ts, other._last_ts)
