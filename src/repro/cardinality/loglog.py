"""LogLog counting [Durand & Flajolet, ESA 2003].

Each item routes to one of ``m = 2^p`` registers; the register keeps the
maximum "rank" (position of the first 1-bit in the remaining hash bits).
The estimate is ``alpha_m * m * 2^(mean register)`` — geometric averaging,
superseded by HyperLogLog's harmonic mean but included as the survey's
intermediate step and as an ablation baseline.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase


class LogLog(SynopsisBase):
    """LogLog sketch with ``2^precision`` registers."""

    def __init__(self, precision: int = 10, seed: int = 0):
        if not 4 <= precision <= 16:
            raise ParameterError("precision must lie in [4, 16]")
        self.precision = precision
        self.m = 1 << precision
        self.family = HashFamily(seed)
        self.count = 0
        self._registers = np.zeros(self.m, dtype=np.uint8)
        # alpha_m -> Gamma(-1/m)-based constant; 0.39701 is the asymptote.
        self._alpha = 0.39701 - (2 * np.pi**2 + np.log(2) ** 2) / (48 * self.m)

    def update(self, item: Any) -> None:
        self.count += 1
        h = self.family.hash(item)
        bucket = h & (self.m - 1)
        rest = h >> self.precision
        rank = _rank_of(rest, 64 - self.precision)
        if rank > self._registers[bucket]:
            self._registers[bucket] = rank

    def estimate(self) -> float:
        """Estimated number of distinct items seen."""
        mean = float(self._registers.mean())
        return self._alpha * self.m * 2.0**mean

    def _merge_key(self) -> tuple:
        return (self.precision, self.family.seed)

    def _merge_into(self, other: "LogLog") -> None:
        np.maximum(self._registers, other._registers, out=self._registers)
        self.count += other.count

    def _empty_clone(self) -> "LogLog":
        return LogLog(self.precision, seed=self.family.seed)

    def _split_into(self, n: int) -> list["LogLog"]:
        return self._split_seed_part(n)

    def size_bytes(self) -> int:
        return int(self._registers.nbytes)


def _rank_of(x: int, width: int) -> int:
    """1-based position of the first 1-bit of *x* within *width* bits."""
    if x == 0:
        return width + 1
    return width - x.bit_length() + 1
