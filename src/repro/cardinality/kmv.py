"""K-Minimum-Values sketch [Bar-Yossef et al. 2002; Giroire 2005].

Keep the *k* smallest hash values (mapped to (0,1]); if the k-th smallest is
``v``, the cardinality estimate is ``(k-1)/v``. Unlike register sketches,
KMV supports *set operations*: the Jaccard similarity of two streams is the
fraction of shared values among the k smallest of the union, which yields
intersection-size estimates — the trick behind theta sketches in
Yahoo's DataSketches library cited by the paper.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily
from repro.common.mergeable import SynopsisBase

_SCALE = float(2**64)


class KMinValues(SynopsisBase):
    """KMV sketch holding the *k* smallest normalised hash values."""

    def __init__(self, k: int = 256, seed: int = 0):
        if k <= 1:
            raise ParameterError("k must be at least 2")
        self.k = k
        self.family = HashFamily(seed)
        self.count = 0
        # Max-heap via negated values so the largest retained value is O(1).
        self._heap: list[float] = []
        self._members: set[float] = set()

    def update(self, item: Any) -> None:
        self.count += 1
        value = (self.family.hash(item) + 1) / _SCALE  # (0, 1]
        if value in self._members:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -value)
            self._members.add(value)
        elif value < -self._heap[0]:
            evicted = -heapq.heapreplace(self._heap, -value)
            self._members.discard(evicted)
            self._members.add(value)

    def estimate(self) -> float:
        """Estimated number of distinct items seen."""
        if len(self._heap) < self.k:
            return float(len(self._heap))  # exact below k distinct values
        kth = -self._heap[0]
        return (self.k - 1) / kth

    def jaccard(self, other: "KMinValues") -> float:
        """Estimated Jaccard similarity |A ∩ B| / |A ∪ B|."""
        other = self._check_mergeable(other)
        union = sorted(self._members | other._members)[: self.k]
        if not union:
            return 0.0
        shared = sum(1 for v in union if v in self._members and v in other._members)
        return shared / len(union)

    def intersection_estimate(self, other: "KMinValues") -> float:
        """Estimated size of the set intersection of the two streams."""
        other = self._check_mergeable(other)
        union_sketch = self + other
        return self.jaccard(other) * union_sketch.estimate()

    def _merge_key(self) -> tuple:
        return (self.k, self.family.seed)

    def _merge_into(self, other: "KMinValues") -> None:
        for value in other._members:
            if value in self._members:
                continue
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, -value)
                self._members.add(value)
            elif value < -self._heap[0]:
                evicted = -heapq.heapreplace(self._heap, -value)
                self._members.discard(evicted)
                self._members.add(value)
        self.count += other.count

    def _empty_clone(self) -> "KMinValues":
        return KMinValues(self.k, seed=self.family.seed)

    def _split_into(self, n: int) -> list["KMinValues"]:
        # Merging re-inserts members (set union of retained minima), which
        # is idempotent — but ``count`` sums, so seed-part it is.
        return self._split_seed_part(n)

    def __len__(self) -> int:
        return len(self._heap)
