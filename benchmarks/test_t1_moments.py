"""T1.6 — Table 1 "Estimating Moments": frequency-moment estimation.

Regenerates the row as F2 (self-join size) accuracy-vs-space for the AMS
tug-of-war sketch and CountSketch's row-energy estimator, plus general F_k
sampling, against exact moments.
"""

import collections

from helpers import drive, rel_error, report

from repro.frequency import CountSketch
from repro.moments import AMSSketch, FkEstimator


def _f_k(counter, k):
    return sum(c**k for c in counter.values())


def test_ams_update(benchmark, zipf_50k):
    small = zipf_50k[:5_000]
    benchmark(lambda: drive(AMSSketch(groups=5, per_group=16, seed=0), small))


def test_countsketch_f2_update(benchmark, zipf_50k):
    benchmark(lambda: drive(CountSketch(width=2048, depth=5, seed=0), zipf_50k))


def test_fk_sampling_update(benchmark, zipf_50k):
    small = zipf_50k[:5_000]
    benchmark(lambda: drive(FkEstimator(k=3, groups=5, per_group=20, seed=0), small))


def test_t1_6_report(benchmark, zipf_50k, zipf_counts):
    stream = zipf_50k[:20_000]
    truth = collections.Counter(stream)
    true_f2 = _f_k(truth, 2)
    rows = [["exact counts", len(truth) * 16, "F2", 0.0]]

    for groups, per_group in ((5, 8), (7, 24), (9, 48)):
        ams = drive(AMSSketch(groups=groups, per_group=per_group, seed=1), stream)
        rows.append(
            [f"AMS {groups}x{per_group}", ams.size_bytes(), "F2",
             rel_error(ams.estimate_f2(), true_f2)]
        )

    cs = drive(CountSketch(width=1024, depth=5, seed=1), stream)
    rows.append(["CountSketch 1024x5", cs.size_bytes(), "F2",
                 rel_error(cs.second_moment(), true_f2)])

    fk3 = drive(FkEstimator(k=3, groups=9, per_group=60, seed=1), stream)
    rows.append(["AMS-sampling (k=3)", 9 * 60 * 24, "F3",
                 rel_error(fk3.estimate(), _f_k(truth, 3))])

    report(
        "T1.6 Frequency moments on zipf(1.1) stream, n=20k",
        ["estimator", "~bytes", "moment", "relative error"],
        rows,
    )
    # Shape: more estimators -> lower error (allowing sampling noise), and
    # the largest AMS configuration lands within 25%.
    assert float(rows[3][3]) < 0.25
    benchmark(lambda: drive(AMSSketch(groups=5, per_group=8, seed=2), stream[:2_000]))
