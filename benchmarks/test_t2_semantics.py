"""T2.2 — Table 2 delivery semantics under failure, measured.

The axis Table 2's systems actually differ on: at-most-once (S4-style),
at-least-once (Storm acking), exactly-once (MillWheel/Flink checkpoints).
Same two-stage word-count topology (sentence -> split -> count, so a lost
word leaves a *partially processed* sentence tree — the case that forces
duplicates under replay), same lossy channel. Reported: delivered and
duplicate fractions, replays/recoveries, throughput cost.
"""

import collections

from helpers import report

from repro.platform import (
    CountBolt,
    FaultInjector,
    FlatMapBolt,
    ListSpout,
    LocalExecutor,
    TopologyBuilder,
)
from repro.workloads import zipf_stream

WORDS_PER_SENTENCE = 5
_words = list(zipf_stream(4_000 * WORDS_PER_SENTENCE, universe=500, skew=1.0, seed=16_000))
SENTENCES = [
    " ".join(_words[i * WORDS_PER_SENTENCE : (i + 1) * WORDS_PER_SENTENCE])
    for i in range(4_000)
]
TRUTH = collections.Counter(_words)
TOTAL_WORDS = len(_words)


def _topology():
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(SENTENCES))
    builder.set_bolt(
        "split", lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()])
    ).shuffle("sentences")
    builder.set_bolt("count", CountBolt, parallelism=4).fields("split", 0)
    return builder.build()


def _counts(executor):
    merged = collections.Counter()
    for bolt in executor.bolt_instances("count"):
        merged.update(bolt.counts)
    return merged


def _run(semantics, drop=0.005, seed=1):
    ex = LocalExecutor(
        _topology(),
        semantics=semantics,
        faults=FaultInjector(drop_probability=drop, seed=seed),
        checkpoint_interval=400,
    )
    metrics = ex.run()
    return _counts(ex), metrics


def test_at_most_once_run(benchmark):
    benchmark(lambda: _run("at_most_once"))


def test_at_least_once_run(benchmark):
    benchmark(lambda: _run("at_least_once"))


def test_exactly_once_run(benchmark):
    benchmark(lambda: _run("exactly_once", drop=0.0005))


def test_t2_2_report(benchmark):
    rows = []

    counts, metrics = _run("at_most_once")
    delivered = sum(counts.values())
    rows.append(
        ["at-most-once (S4-style)", f"{delivered / TOTAL_WORDS:.2%}", "0.00%",
         0, 0, f"{metrics.throughput():,.0f}"]
    )
    amo_delivered = delivered

    counts, metrics = _run("at_least_once")
    delivered_keys = sum(min(counts[w], TRUTH[w]) for w in TRUTH)
    duplicates = sum(max(0, counts[w] - TRUTH[w]) for w in TRUTH)
    rows.append(
        ["at-least-once (Storm acker)", f"{delivered_keys / TOTAL_WORDS:.2%}",
         f"{duplicates / TOTAL_WORDS:.2%}", metrics.replays, 0,
         f"{metrics.throughput():,.0f}"]
    )
    alo = (delivered_keys, duplicates)

    counts, metrics = _run("exactly_once", drop=0.0005)
    delivered_keys = sum(min(counts[w], TRUTH[w]) for w in TRUTH)
    duplicates = sum(max(0, counts[w] - TRUTH[w]) for w in TRUTH)
    rows.append(
        ["exactly-once (checkpointed)", f"{delivered_keys / TOTAL_WORDS:.2%}",
         f"{duplicates / TOTAL_WORDS:.2%}", 0, metrics.recoveries,
         f"{metrics.throughput():,.0f}"]
    )

    report(
        "T2.2 Delivery semantics on a lossy channel (4k sentences / 20k words)",
        ["semantics", "delivered", "duplicates", "replays", "recoveries", "sentences/s"],
        rows,
    )
    # The defining shape of the table:
    assert amo_delivered < TOTAL_WORDS  # at-most-once loses data
    assert alo[0] == TOTAL_WORDS and alo[1] > 0  # at-least-once: complete + dupes
    assert counts == TRUTH  # exactly-once: exact
    benchmark(lambda: _run("at_most_once", drop=0.0))
