"""S2 — Section 2's synopsis techniques: histograms and wavelets.

Regenerates the section's comparison of distribution synopses: equi-width
vs V-optimal vs end-biased histograms vs Haar wavelet, on SSE and
range-query error, against the exact distribution.
"""

import numpy as np
from helpers import drive, rel_error, report

from repro.common.rng import make_np_rng
from repro.histograms import (
    EndBiasedHistogram,
    EquiWidthHistogram,
    StreamingVOptimal,
    WaveletHistogram,
    total_sse,
    v_optimal_histogram,
)
from repro.workloads import zipf_stream


def _bimodal(n=40_000, seed=18_000):
    rng = make_np_rng(seed)
    a = rng.normal(20, 3, size=n // 2)
    b = rng.normal(75, 8, size=n // 2)
    return np.concatenate([a, b]).clip(0, 100)


def test_equiwidth_update(benchmark):
    data = _bimodal()
    benchmark(lambda: drive(EquiWidthHistogram(0, 100, bins=64), data))


def test_voptimal_dp(benchmark):
    counts = drive(EquiWidthHistogram(0, 100, bins=128), _bimodal()).counts
    benchmark(lambda: v_optimal_histogram(counts.astype(float), 8))


def test_wavelet_update(benchmark):
    data = _bimodal()
    benchmark(lambda: drive(WaveletHistogram(0, 100, resolution=128, b=16), data))


def test_s2_report(benchmark):
    data = _bimodal()
    fine = drive(EquiWidthHistogram(0, 100, bins=128), data)
    true_counts = fine.counts.astype(float)
    rows = []

    # 8-bucket equi-width vs 8-bucket V-optimal: SSE of the piecewise fit.
    def equiwidth_sse(counts, buckets):
        per = len(counts) // buckets
        total = 0.0
        for b in range(buckets):
            seg = counts[b * per : (b + 1) * per]
            total += float(((seg - seg.mean()) ** 2).sum())
        return total

    eq_sse = equiwidth_sse(true_counts, 8)
    sv = drive(StreamingVOptimal(0, 100, n_buckets=8, resolution=128), data)
    vo_sse = total_sse(sv.histogram())
    rows.append(["equi-width (8 buckets)", f"{eq_sse:,.0f}", ""])
    rows.append(["V-optimal (8 buckets)", f"{vo_sse:,.0f}",
                 f"{eq_sse / max(vo_sse, 1):.1f}x lower SSE"])

    wav = drive(WaveletHistogram(0, 100, resolution=128, b=16), data)
    wave_sse = wav.l2_error() ** 2
    rows.append(["Haar wavelet (B=16)", f"{wave_sse:,.0f}", "L2-optimal truncation"])

    # Range query accuracy.
    coarse = drive(EquiWidthHistogram(0, 100, bins=16), data)
    true_range = float(((data >= 10) & (data < 30)).sum())
    rows.append(
        ["equi-width range [10,30)", f"{coarse.estimate_range_count(10, 30):,.0f}",
         f"true {true_range:,.0f} ({rel_error(coarse.estimate_range_count(10, 30), true_range):.1%})"]
    )

    # End-biased on a skewed categorical stream.
    tags = list(zipf_stream(30_000, universe=5_000, skew=1.3, seed=18_001))
    import collections

    truth = collections.Counter(tags)
    eb = drive(EndBiasedHistogram(head_size=32, seed=0), tags)
    top = truth.most_common(1)[0]
    rows.append(
        ["end-biased head item", f"{eb.estimate(top[0]):,.0f}",
         f"true {top[1]:,} ({rel_error(eb.estimate(top[0]), top[1]):.1%})"]
    )

    report("S2 Distribution synopses (bimodal values + skewed tags)", ["synopsis", "value", "vs truth"], rows)
    assert vo_sse <= eq_sse
    benchmark(lambda: drive(EquiWidthHistogram(0, 100, bins=32), data[:10_000]))
