"""Shared workloads for the bench suite (module-scoped, built once)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))  # make `helpers` importable

from repro.workloads import zipf_stream


@pytest.fixture(scope="session")
def zipf_50k():
    """The canonical skewed token stream used across benches."""
    return list(zipf_stream(50_000, universe=10_000, skew=1.1, seed=1000))


@pytest.fixture(scope="session")
def zipf_counts(zipf_50k):
    import collections

    return collections.Counter(zipf_50k)
