"""T1.4 — Table 1 "Estimating Cardinality": distinct-element counting.

Regenerates the row as error-vs-space across the estimator lineage the
tutorial walks (FM/PCSA -> LogLog -> HyperLogLog; linear counting; KMV),
swept over true cardinalities 1e2..1e6 against the exact-set baseline.
"""

import sys

from helpers import drive, rel_error, report

from repro.cardinality import (
    FlajoletMartin,
    HyperLogLog,
    KMinValues,
    LinearCounter,
    LogLog,
)
from repro.workloads import visitor_stream


def _stream(card, n=None, seed=0):
    return list(visitor_stream(n or card * 2, unique_visitors=card, seed=seed))


def test_hyperloglog_update(benchmark, zipf_50k):
    sketch = benchmark(lambda: drive(HyperLogLog(precision=12, seed=0), zipf_50k))
    assert sketch.count == len(zipf_50k)


def test_loglog_update(benchmark, zipf_50k):
    benchmark(lambda: drive(LogLog(precision=12, seed=0), zipf_50k))


def test_kmv_update(benchmark, zipf_50k):
    benchmark(lambda: drive(KMinValues(k=1024, seed=0), zipf_50k))


def test_linear_counting_update(benchmark, zipf_50k):
    benchmark(lambda: drive(LinearCounter(100_000, seed=0), zipf_50k))


def test_hll_merge(benchmark):
    parts = []
    for p in range(8):
        sketch = HyperLogLog(precision=12, seed=0)
        sketch.update_many(f"p{p}-u{i}" for i in range(5_000))
        parts.append(sketch)

    def merge_all():
        total = HyperLogLog(precision=12, seed=0)
        for part in parts:
            total.merge(part)
        return total

    merged = benchmark(merge_all)
    assert rel_error(merged.estimate(), 40_000) < 0.1


def test_t1_4_report(benchmark):
    sketches = {
        "exact set": None,
        "LinearCounter (64k bits)": lambda: LinearCounter(65_536, seed=1),
        "FM/PCSA (m=64)": lambda: FlajoletMartin(m=64, seed=1),
        "LogLog (p=11)": lambda: LogLog(precision=11, seed=1),
        "HyperLogLog (p=11)": lambda: HyperLogLog(precision=11, seed=1),
        "KMV (k=1024)": lambda: KMinValues(k=1024, seed=1),
    }
    cardinalities = (100, 10_000, 1_000_000)
    rows = []
    for name, factory in sketches.items():
        errors, size = [], 0
        for card in cardinalities:
            stream = _stream(card, n=min(card * 2, 1_200_000), seed=card)
            if factory is None:
                exact = set()
                for item in stream:
                    exact.add(item)
                errors.append(0.0)
                size = sys.getsizeof(exact)
            else:
                sketch = drive(factory(), stream)
                errors.append(rel_error(sketch.estimate(), card))
                size = sketch.size_bytes()
        rows.append([name, size] + [f"{e:.3%}" for e in errors])

    report(
        "T1.4 Cardinality estimation (error by true cardinality)",
        ["estimator", "bytes", "err@1e2", "err@1e4", "err@1e6"],
        rows,
    )
    # Shape check: HLL within its 3-sigma band everywhere; LogLog worse
    # than HLL at equal precision is typical but not guaranteed per-seed.
    hll_row = rows[4]
    assert all(float(cell.rstrip("%")) / 100 < 3 * 1.04 / (2**11) ** 0.5 * 3 for cell in hll_row[2:])
    benchmark(lambda: drive(HyperLogLog(precision=11, seed=2), _stream(10_000, seed=9)))
