"""T1.9 — Table 1 "Finding Subsequences": LIS / LCS over streams.

Regenerates the row as exact-vs-approximate LIS (memory and error) across
trend regimes, and windowed LCS similarity tracking of paired streams.
"""

from helpers import drive, report

from repro.common.rng import make_np_rng
from repro.subsequences import (
    ApproxLISTracker,
    LISTracker,
    WindowedLCS,
    longest_increasing_subsequence,
)


def _regimes(n=5_000, seed=6000):
    rng = make_np_rng(seed)
    noise = rng.normal(size=n)
    return {
        "strong uptrend": [0.01 * t + 0.5 * noise[t] for t in range(n)],
        "flat noise": list(noise),
        "downtrend": [-0.01 * t + 0.5 * noise[t] for t in range(n)],
    }


def test_lis_exact_update(benchmark):
    values = _regimes()["strong uptrend"]
    benchmark(lambda: drive(LISTracker(), values))


def test_lis_approx_update(benchmark):
    values = _regimes()["strong uptrend"]
    benchmark(lambda: drive(ApproxLISTracker(s=128), values))


def test_windowed_lcs_query(benchmark):
    rng = make_np_rng(6001)
    w = WindowedLCS(window=96)
    for __ in range(300):
        v = int(rng.integers(5))
        w.update((v, v if rng.random() < 0.8 else int(rng.integers(5))))
    sim = benchmark(w.similarity)
    assert 0.5 < sim <= 1.0


def test_t1_9_report(benchmark):
    rows = []
    for name, values in _regimes().items():
        exact = longest_increasing_subsequence(values)
        tracker = drive(LISTracker(), values)
        approx = drive(ApproxLISTracker(s=128), values)
        rows.append(
            [name, exact, tracker.memory_slots, f"{approx.lis_length():,.0f}",
             approx.memory_slots]
        )
    report(
        "T1.9 LIS over 5k-point streams (exact patience vs s=128 budget)",
        ["regime", "exact LIS", "exact memory", "approx LIS (lower bnd)", "approx memory"],
        rows,
    )
    for row in rows:
        assert float(row[3].replace(",", "")) <= row[1]  # lower bound holds
        assert row[4] <= 129
    values = _regimes()["flat noise"]
    benchmark(lambda: drive(LISTracker(), values[:2_000]))
