"""Shared helpers for the benchmark harness.

Every bench both (a) registers a pytest-benchmark timing for the hot loop
and (b) prints the characterization table that regenerates its paper
artifact (who wins, by what factor, where the crossovers are). Absolute
numbers are machine-specific; the *shape* is the reproduction target.
"""

from __future__ import annotations

import sys


def report(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned characterization table to stdout."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n### {title}", file=sys.stderr)
    print(line, file=sys.stderr)
    print("-" * len(line), file=sys.stderr)
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)), file=sys.stderr)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def rel_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth (0 when both are zero)."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def drive(synopsis, items) -> object:
    """Feed *items* into *synopsis* (the standard benchmarked hot loop)."""
    update = synopsis.update
    for item in items:
        update(item)
    return synopsis
