"""T1.3 — Table 1 "Correlation": correlated subsets in streams.

Regenerates the row as: exactness of one-pass Pearson, lag recovery, and
the all-pairs screening speed-up of sketch space vs exact space.
"""

import time

import numpy as np
from helpers import drive, rel_error, report

from repro.common.rng import make_np_rng
from repro.correlation import (
    CorrelationSketch,
    LagCorrelator,
    StreamingCorrelation,
    correlated_pairs,
)


def _pair_stream(n=20_000, rho=0.8, seed=4000):
    rng = make_np_rng(seed)
    x = rng.normal(size=n)
    y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
    return list(zip(x, y))


def test_streaming_pearson_update(benchmark):
    pairs = _pair_stream()
    benchmark(lambda: drive(StreamingCorrelation(), pairs))


def test_lag_correlator_update(benchmark):
    pairs = _pair_stream(5_000)
    benchmark(lambda: drive(LagCorrelator(window=512, max_lag=16), pairs))


def test_sketch_correlation_screen(benchmark):
    rng = make_np_rng(4001)
    base = rng.normal(size=2_000)
    sketches = []
    for i in range(30):
        s = CorrelationSketch(window=256, d=48, seed=7)
        noise = rng.normal(size=2_000)
        series = base + 0.05 * noise if i < 5 else noise
        s.update_many(series)
        sketches.append(s)
    hits = benchmark(lambda: correlated_pairs(sketches, threshold=0.7))
    found = {(i, j) for i, j, __ in hits}
    assert all((i, j) in found for i in range(5) for j in range(i + 1, 5))


def test_t1_3_report(benchmark):
    rows = []
    pairs = _pair_stream(rho=0.8)
    sc = drive(StreamingCorrelation(), pairs)
    x = np.array([p[0] for p in pairs])
    y = np.array([p[1] for p in pairs])
    exact = float(np.corrcoef(x, y)[0, 1])
    rows.append(["one-pass Pearson", "O(1) words", f"corr err {rel_error(sc.correlation(), exact):.2e}"])

    lc = LagCorrelator(window=1_024, max_lag=24)
    rng = make_np_rng(4002)
    base = rng.normal(size=6_000)
    for t in range(30, 6_000):
        lc.update((base[t], base[t - 9]))
    best_lag, corr = lc.best_lag()
    rows.append(["lag correlator", "O(window)", f"recovered lag {best_lag} (true 9), corr {corr:.2f}"])

    # All-pairs screening: sketch inner products vs exact windows.
    n_series = 60
    rng = make_np_rng(4003)
    seeds = rng.normal(size=(n_series, 1_500))
    sketches = []
    for i in range(n_series):
        s = CorrelationSketch(window=512, d=32, seed=11)
        s.update_many(seeds[i])
        sketches.append(s)
    t0 = time.perf_counter()
    correlated_pairs(sketches, threshold=0.7)
    sketch_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(n_series):
        for j in range(i + 1, n_series):
            sketches[i].exact_correlation(sketches[j])
    exact_time = time.perf_counter() - t0
    rows.append(
        ["sketch screen (60 series)", "d=32/series",
         f"{exact_time / sketch_time:.0f}x faster than exact all-pairs"]
    )

    report("T1.3 Correlation discovery", ["method", "space", "result"], rows)
    assert best_lag == 9
    benchmark(lambda: drive(StreamingCorrelation(), pairs[:5_000]))
