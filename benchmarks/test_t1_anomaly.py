"""T1.11 — Table 1 "Anomaly Detection": sensor-network outliers.

Regenerates the row as precision/recall/update-cost across the detector
family (z-score, EWMA, MAD, HS-Trees, subspace) on telemetry with injected
ground-truth anomalies — including the contamination regime where robust
statistics are supposed to win.
"""

import numpy as np
from helpers import report

from repro.anomaly import (
    EWMAControlChart,
    HalfSpaceTrees,
    RollingZScore,
    SlidingMAD,
    SubspaceTracker,
)
from repro.workloads import sensor_stream_with_anomalies


def _precision_recall(flags, truth_indices):
    truth = set(truth_indices)
    flagged = {i for i, f in enumerate(flags) if f}
    tp = len(truth & flagged)
    precision = tp / len(flagged) if flagged else 1.0
    recall = tp / len(truth) if truth else 1.0
    return precision, recall


def test_zscore_update(benchmark):
    annotated = sensor_stream_with_anomalies(10_000, seed=8000)
    det = RollingZScore(window=256)
    benchmark(lambda: [det.update(v) for v in annotated.values])


def test_ewma_update(benchmark):
    annotated = sensor_stream_with_anomalies(10_000, seed=8000)
    det = EWMAControlChart(alpha=0.2)
    benchmark(lambda: [det.update(v) for v in annotated.values])


def test_mad_update(benchmark):
    annotated = sensor_stream_with_anomalies(10_000, seed=8000)
    det = SlidingMAD(window=256)
    benchmark(lambda: [det.update(v) for v in annotated.values])


def test_hstrees_update(benchmark):
    annotated = sensor_stream_with_anomalies(3_000, seed=8000)
    values = (annotated.values - annotated.values.min()) / np.ptp(annotated.values)
    det = HalfSpaceTrees(dims=1, n_trees=15, max_depth=6, window=200, seed=0)
    benchmark(lambda: [det.update([v]) for v in values])


def test_t1_11_report(benchmark):
    annotated = sensor_stream_with_anomalies(15_000, anomaly_rate=0.004, seed=8001)
    rows = []

    detectors = {
        "rolling z-score": RollingZScore(window=256, threshold=4.0),
        "EWMA chart": EWMAControlChart(alpha=0.2, L=4.0),
        "sliding MAD": SlidingMAD(window=256, threshold=4.5),
    }
    for name, det in detectors.items():
        flags = [det.update(v) for v in annotated.values]
        precision, recall = _precision_recall(flags, annotated.anomaly_indices)
        rows.append([name, f"{precision:.1%}", f"{recall:.1%}", "univariate"])

    # Multivariate: subspace tracker on a correlated 3D stream with
    # off-subspace anomalies.
    from repro.common.rng import make_np_rng

    rng = make_np_rng(8002)
    tracker = SubspaceTracker(dims=3, k=1, threshold=5.0, seed=0)
    direction = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
    flags, truth = [], []
    for t in range(6_000):
        if t > 1_000 and t % 211 == 0:
            x = np.array([0.0, 0.0, 6.0])
            truth.append(t)
        else:
            x = direction * rng.normal(0, 4) + rng.normal(0, 0.05, size=3)
        flags.append(tracker.update(x))
    precision, recall = _precision_recall(flags, truth)
    rows.append(["subspace tracker", f"{precision:.1%}", f"{recall:.1%}", "multivariate"])

    report(
        "T1.11 Anomaly detection (8-sigma injected spikes, rate 0.4%)",
        ["detector", "precision", "recall", "regime"],
        rows,
    )
    assert all(float(r[2].rstrip("%")) > 80 for r in rows)  # recall floor
    det = RollingZScore(window=128)
    benchmark(lambda: [det.update(v) for v in annotated.values[:5_000]])
