"""T2.4 — Table 2's Spark column: micro-batching vs tuple-at-a-time.

The discretized-stream trade the survey describes: micro-batching
amortises per-record overhead (higher throughput) and gets exactly-once
"for free" via lineage recomputation, but every record waits for its
batch — per-record latency is ~batch/2 record-slots versus ~1 for a
tuple-at-a-time engine. Both shapes measured on the same word count.
"""

import collections
import time

from helpers import report

from repro.platform import CountBolt, ListSpout, LocalExecutor, TopologyBuilder
from repro.platform.microbatch import MicroBatchContext
from repro.workloads import zipf_stream

WORDS = list(zipf_stream(20_000, universe=500, skew=1.0, seed=22_000))
TRUTH = collections.Counter(WORDS)


def _run_tuple_at_a_time():
    builder = TopologyBuilder()
    builder.set_spout("w", lambda: ListSpout(WORDS))
    builder.set_bolt("count", CountBolt, parallelism=2).fields("w", 0)
    ex = LocalExecutor(builder.build())
    ex.run()
    merged = collections.Counter()
    for bolt in ex.bolt_instances("count"):
        merged.update(bolt.counts)
    return merged


def _run_microbatch(batch_size=500, fail_at=None):
    ctx = MicroBatchContext(batch_size=batch_size, checkpoint_every=5)
    counts = (
        ctx.source(WORDS)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b, stateful=True)
        .collect()
    )
    ctx.run(fail_at=fail_at)
    return dict(counts.batches()[-1]), ctx


def test_tuple_at_a_time(benchmark):
    counts = benchmark(_run_tuple_at_a_time)
    assert counts == TRUTH


def test_microbatch(benchmark):
    counts, __ = benchmark(_run_microbatch)
    assert counts == dict(TRUTH)


def test_microbatch_with_recovery(benchmark):
    counts, ctx = benchmark(lambda: _run_microbatch(fail_at=17))
    assert counts == dict(TRUTH)


def test_t2_4_report(benchmark):
    rows = []
    t0 = time.perf_counter()
    counts = _run_tuple_at_a_time()
    tuple_s = time.perf_counter() - t0
    rows.append(
        ["tuple-at-a-time executor", f"{len(WORDS)/tuple_s:,.0f}", "~1 record-slot",
         "exact" if counts == TRUTH else "WRONG"]
    )
    for batch in (100, 1_000):
        t0 = time.perf_counter()
        mb_counts, ctx = _run_microbatch(batch_size=batch)
        mb_s = time.perf_counter() - t0
        rows.append(
            [f"micro-batch (batch={batch})", f"{len(WORDS)/mb_s:,.0f}",
             f"~{batch // 2} record-slots",
             "exact" if mb_counts == dict(TRUTH) else "WRONG"]
        )
    mb_counts, ctx = _run_microbatch(batch_size=500, fail_at=17)
    rows.append(
        ["micro-batch + crash at batch 17", "-",
         f"lineage recompute x{ctx.recomputations}",
         "exact" if mb_counts == dict(TRUTH) else "WRONG"]
    )
    report(
        "T2.4 Micro-batching vs tuple-at-a-time (20k words)",
        ["engine", "words/s", "per-record latency", "result"],
        rows,
    )
    assert all(row[3] == "exact" for row in rows)
    # The defining shape: micro-batch throughput beats per-tuple dispatch.
    tuple_tput = float(rows[0][1].replace(",", ""))
    mb_tput = float(rows[2][1].replace(",", ""))
    assert mb_tput > tuple_tput
    benchmark(lambda: _run_microbatch(batch_size=1_000))
