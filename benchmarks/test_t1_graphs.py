"""T1.15 — Table 1 "Graph analysis": semi-streaming graph algorithms.

Regenerates the row as quality-vs-space for matching, vertex cover,
spanners, sparsifiers and triangle counting against exact (full-memory)
baselines on web-graph edge streams.
"""

import networkx as nx
from helpers import drive, rel_error, report

from repro.graphs import (
    EdgeSamplingSparsifier,
    GreedyMatching,
    StreamingConnectivity,
    StreamingSpanner,
    TriangleCounter,
    count_triangles_exact,
)
from repro.workloads import edge_stream, power_law_edge_stream


def _edges(n=6_000):
    return list(edge_stream(400, n, seed=12_000))


def test_matching_update(benchmark):
    edges = _edges()
    benchmark(lambda: drive(GreedyMatching(), edges))


def test_connectivity_update(benchmark):
    edges = _edges()
    benchmark(lambda: drive(StreamingConnectivity(), edges))


def test_triangle_counter_update(benchmark):
    edges = list(edge_stream(300, 4_000, seed=12_001, allow_duplicates=False))
    benchmark(lambda: drive(TriangleCounter(reservoir_size=1_000, seed=0), edges))


def test_sparsifier_update(benchmark):
    edges = _edges()
    benchmark(lambda: drive(EdgeSamplingSparsifier(p=0.1, seed=0), edges))


def test_t1_15_report(benchmark):
    rows = []

    edges = _edges()
    distinct = len(set(edges))
    gm = drive(GreedyMatching(), edges)
    opt = len(nx.max_weight_matching(nx.Graph(edges)))
    rows.append(
        ["greedy matching", f"{gm.matching_size()} matched", f"OPT {opt}",
         f"ratio {gm.matching_size() / opt:.2f} (>=0.5 guaranteed)"]
    )
    rows.append(
        ["vertex cover (2-approx)", f"{len(gm.vertex_cover())} vertices",
         "covers all edges: " + str(all(gm.is_covered(e) for e in edges)), ""]
    )

    sp = drive(StreamingSpanner(t=3), edges)
    g = nx.Graph(edges)
    stretches = []
    for u, v in edges[:100]:
        stretches.append(sp.spanner_distance(u, v) / max(nx.shortest_path_length(g, u, v), 1))
    rows.append(
        ["3-spanner", f"{sp.n_edges}/{distinct} edges kept",
         f"max stretch {max(stretches):.1f}", "distances preserved to 3x"]
    )

    sparse = drive(EdgeSamplingSparsifier(p=0.15, seed=1), edges)
    side = set(range(200))
    true_cut = sum(1 for u, v in edges if (u in side) != (v in side))
    rows.append(
        ["sparsifier (p=0.15)", f"{sparse.n_edges}/{len(edges)} edges kept",
         f"cut err {rel_error(sparse.estimate_cut(side), true_cut):.1%}", ""]
    )

    tri_edges = list(power_law_edge_stream(300, 8_000, skew=1.2, seed=12_002))
    simple = list(dict.fromkeys(tri_edges))
    tc = drive(TriangleCounter(reservoir_size=1_500, seed=1), simple)
    exact_tri = count_triangles_exact(simple)
    rows.append(
        ["triangle count (reservoir 1.5k)", f"{tc.reservoir_edges} edges held",
         f"est {tc.estimate():,.0f} vs exact {exact_tri:,}",
         f"err {rel_error(tc.estimate(), exact_tri):.1%}"]
    )

    report("T1.15 Graph analysis (semi-streaming vs exact)", ["task", "space", "quality", "notes"], rows)
    assert gm.matching_size() >= opt / 2
    assert max(stretches) <= 3.0
    small = edges[:2_000]
    benchmark(lambda: drive(GreedyMatching(), small))
