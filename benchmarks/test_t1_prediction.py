"""T1.13 — Table 1 "Data Prediction": missing values in sensor streams.

Regenerates the row as imputation RMSE across predictors (Kalman local
trend, online AR, Holt-Winters) against naive baselines (zero-fill,
last-value) on a seasonal series with 8% dropouts.
"""

import numpy as np
from helpers import report

from repro.prediction import HoltWinters, LocalTrendFilter, OnlineAR
from repro.workloads import series_with_missing_values


def _workload():
    return series_with_missing_values(8_000, missing_rate=0.08, period=64, seed=10_000)


def test_kalman_update(benchmark):
    annotated = _workload()
    kf = LocalTrendFilter(process_noise=1e-2, observation_noise=0.3)
    benchmark(lambda: [kf.update(None if np.isnan(v) else v) for v in annotated.values])


def test_online_ar_update(benchmark):
    annotated = _workload()
    ar = OnlineAR(order=8)
    clean = np.nan_to_num(annotated.values)
    benchmark(lambda: [ar.update(v) for v in clean])


def test_holt_winters_update(benchmark):
    annotated = _workload()
    hw = HoltWinters(period=64)
    clean = np.nan_to_num(annotated.values)
    benchmark(lambda: [hw.update(v) for v in clean])


def test_t1_13_report(benchmark):
    annotated = _workload()
    gaps = list(annotated.missing_indices)
    truth = annotated.clean

    def run_kalman():
        kf = LocalTrendFilter(process_noise=1e-2, observation_noise=0.3)
        preds = {}
        for i, v in enumerate(annotated.values):
            if np.isnan(v):
                preds[i] = kf.predict_next()
                kf.update(None)
            else:
                kf.update(v)
        return preds

    def run_ar():
        ar = OnlineAR(order=12, forgetting=0.999)
        preds = {}
        for i, v in enumerate(annotated.values):
            if np.isnan(v):
                preds[i] = ar.predict_next()
                ar.update(preds[i])  # feed own prediction through the gap
            else:
                ar.update(v)
        return preds

    def run_hw():
        hw = HoltWinters(period=64, alpha=0.3, beta=0.02, gamma=0.3)
        preds = {}
        last = 0.0
        for i, v in enumerate(annotated.values):
            if np.isnan(v):
                preds[i] = hw.forecast(1) if hw.ready else last
                hw.update(preds[i])
            else:
                hw.update(v)
                last = v
        return preds

    def run_last_value():
        preds = {}
        last = 0.0
        for i, v in enumerate(annotated.values):
            if np.isnan(v):
                preds[i] = last
            else:
                last = v
        return preds

    def rmse(preds):
        return float(np.sqrt(np.mean([(preds[i] - truth[i]) ** 2 for i in gaps])))

    rows = [
        ["zero-fill", float(np.sqrt(np.mean([truth[i] ** 2 for i in gaps])))],
        ["last value", rmse(run_last_value())],
        ["Kalman local trend", rmse(run_kalman())],
        ["online AR(12)", rmse(run_ar())],
        ["Holt-Winters (p=64)", rmse(run_hw())],
    ]
    report(
        f"T1.13 Missing-value imputation ({len(gaps)} gaps in a seasonal series)",
        ["predictor", "RMSE"],
        rows,
    )
    # Shape: every model beats zero-fill; the seasonal/trend models beat
    # last-value.
    zero = rows[0][1]
    assert all(r[1] < zero for r in rows[1:])
    assert min(rows[2][1], rows[3][1], rows[4][1]) < rows[1][1]
    kf = LocalTrendFilter()
    benchmark(lambda: [kf.update(float(v)) for v in truth[:3_000]])
