"""T1.12 — Table 1 "Temporal Pattern Analysis": patterns in streams.

Regenerates the row as motif recovery via SAX + SpaceSaving and warped
subsequence matching via SPRING, with match recall and per-point cost
against full-DTW rescans.
"""

import numpy as np
from helpers import report

from repro.common.rng import make_np_rng
from repro.temporal import MotifDetector, SpringMatcher, dtw_distance, sax_word


def _motif_stream(reps=40, seed=9000):
    rng = make_np_rng(seed)
    # A non-periodic shape (single asymmetric hump) so shifted alignments
    # of one embedding do not themselves match.
    t = np.linspace(0, 1, 32)
    motif = 3.0 * np.sin(np.pi * t) * t
    stream = []
    embeddings = []
    for __ in range(reps):
        stream.extend(rng.normal(0, 0.3, size=48))
        embeddings.append((len(stream), len(stream) + 32))
        stream.extend(motif + rng.normal(0, 0.05, size=32))
    return stream, motif, embeddings


def test_motif_detector_update(benchmark):
    stream, __, __e = _motif_stream()
    det = MotifDetector(window=32, segments=8, stride=4)
    benchmark(lambda: det.update_many(stream))


def test_spring_update(benchmark):
    stream, motif, __e = _motif_stream(reps=10)
    matcher = SpringMatcher(list(motif), threshold=5.0)
    benchmark(lambda: [matcher.update(x) for x in stream])


def test_full_dtw_baseline(benchmark):
    stream, motif, __e = _motif_stream(reps=3)
    query = list(motif)

    def rescan():
        hits = 0
        for start in range(0, len(stream) - len(query), 16):
            if dtw_distance(stream[start : start + len(query)], query) < 5.0:
                hits += 1
        return hits

    assert benchmark(rescan) > 0


def test_t1_12_report(benchmark):
    stream, motif, embeddings = _motif_stream(reps=40)
    rows = []

    det = MotifDetector(window=32, segments=8, alphabet_size=4, stride=4)
    det.update_many(stream)
    motif_word = sax_word(motif, 8, 4)
    top_words = [w for w, __ in det.motifs(3)]
    rows.append(
        ["SAX motif (w=32)", f"motif word rank {top_words.index(motif_word) + 1 if motif_word in top_words else '>3'}",
         f"{det.frequency(motif_word)} occurrences (true 40+)"]
    )

    matcher = SpringMatcher(list(motif), threshold=3.0)
    matches = [m for x in stream if (m := matcher.update(x))]
    if (tail := matcher.flush()) is not None:
        matches.append(tail)
    # Score against the true embedding intervals (1-based match positions).
    hit_embeddings = {
        i
        for i, (lo, hi) in enumerate(embeddings)
        for m in matches
        if m.start - 1 < hi and m.end - 1 >= lo
    }
    false_matches = [
        m
        for m in matches
        if not any(m.start - 1 < hi and m.end - 1 >= lo for lo, hi in embeddings)
    ]
    rows.append(
        ["SPRING (warped)",
         f"{len(hit_embeddings)}/40 embeddings found, {len(false_matches)} false",
         f"mean dist {np.mean([m.distance for m in matches]):.2f}"]
    )

    report("T1.12 Temporal patterns (32-sample motif embedded 40x)", ["method", "recall", "detail"], rows)
    assert motif_word in top_words
    assert len(hit_embeddings) >= 38
    assert len(false_matches) <= 4
    det2 = MotifDetector(window=32, segments=8, stride=8)
    benchmark(lambda: det2.update_many(stream[:1_500]))
