"""T1.7 — Table 1 "Finding Frequent Elements": trending hashtags.

Regenerates the row as recall/precision of the top-20 and per-item count
error across the counter-based (Misra-Gries, lossy counting, SpaceSaving)
and sketch-based (Count-Min, Count-Sketch) families, against exact counts.
"""

import collections

import numpy as np
from helpers import drive, report

from repro.frequency import (
    CountMinSketch,
    CountSketch,
    LossyCounting,
    MisraGries,
    SpaceSaving,
    StickySampling,
)
from repro.workloads import hashtag_stream


def _stream():
    return list(
        hashtag_stream(
            100_000,
            background_tags=20_000,
            trending={"#hot1": 0.02, "#hot2": 0.01},
            seed=3000,
        )
    )


def test_space_saving_update(benchmark, zipf_50k):
    benchmark(lambda: drive(SpaceSaving(k=256), zipf_50k))


def test_misra_gries_update(benchmark, zipf_50k):
    benchmark(lambda: drive(MisraGries(k=256), zipf_50k))


def test_lossy_counting_update(benchmark, zipf_50k):
    benchmark(lambda: drive(LossyCounting(epsilon=0.001), zipf_50k))


def test_count_min_update(benchmark, zipf_50k):
    benchmark(lambda: drive(CountMinSketch(width=2048, depth=4, seed=0), zipf_50k))


def test_count_sketch_update(benchmark, zipf_50k):
    benchmark(lambda: drive(CountSketch(width=2048, depth=4, seed=0), zipf_50k))


def test_t1_7_report(benchmark):
    stream = _stream()
    truth = collections.Counter(stream)
    true_top = [w for w, __ in truth.most_common(20)]

    def evaluate(name, sketch, top_fn, space):
        est_top = top_fn(sketch)
        recall = len(set(est_top) & set(true_top)) / len(true_top)
        errs = [abs(sketch.estimate(w) - truth[w]) / truth[w] for w in true_top]
        return [name, space, f"{recall:.0%}", f"{np.mean(errs):.3%}", f"{np.max(errs):.3%}"]

    rows = []
    ss = drive(SpaceSaving(k=512), stream)
    rows.append(evaluate("SpaceSaving (k=512)", ss, lambda s: [w for w, _ in s.top(20)], 512 * 3 * 8))
    mg = drive(MisraGries(k=512), stream)
    rows.append(evaluate("Misra-Gries (k=512)", mg, lambda s: [w for w, _ in s.top(20)], 512 * 2 * 8))
    lc = drive(LossyCounting(epsilon=0.0005), stream)
    rows.append(
        evaluate(
            "Lossy (eps=5e-4)", lc,
            lambda s: sorted(s.heavy_hitters(0.003), key=lambda w: -s.estimate(w))[:20],
            lc.n_entries * 3 * 8,
        )
    )
    st = drive(StickySampling(support=0.003, epsilon=0.0005, seed=1), stream)
    rows.append(
        evaluate(
            "Sticky (s=0.003)", st,
            lambda s: sorted(s.heavy_hitters(), key=lambda w: -s.estimate(w))[:20],
            st.n_entries * 2 * 8,
        )
    )
    cms = drive(CountMinSketch(width=4096, depth=4, seed=1), stream)
    rows.append(
        evaluate(
            "Count-Min 4096x4", cms,
            lambda s: sorted(true_top, key=lambda w: -s.estimate(w)),  # sketch has no top-k index
            cms.size_bytes(),
        )
    )
    cs = drive(CountSketch(width=4096, depth=5, seed=1), stream)
    rows.append(
        evaluate(
            "Count-Sketch 4096x5", cs,
            lambda s: sorted(true_top, key=lambda w: -s.estimate(w)),
            cs.size_bytes(),
        )
    )

    report(
        "T1.7 Frequent elements (100k tags, 2 injected trends, top-20)",
        ["algorithm", "~bytes", "top-20 recall", "mean err", "max err"],
        rows,
    )
    # Shape: SpaceSaving should achieve full recall of the injected trends.
    assert "#hot1" in [w for w, __ in ss.top(20)]
    assert "#hot2" in [w for w, __ in ss.top(20)]
    assert rows[0][2] == "100%"
    benchmark(lambda: drive(SpaceSaving(k=128), stream[:10_000]))
