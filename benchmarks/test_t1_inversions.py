"""T1.8 — Table 1 "Counting Inversions": sortedness of a stream.

Regenerates the row as estimator-vs-exact across sortedness regimes
(sorted, noisy, random, reversed) with the O(k)-space pair sampler against
the O(n log n) exact baselines.
"""

from helpers import drive, rel_error, report

from repro.common.rng import make_np_rng
from repro.inversions import (
    InversionEstimator,
    count_inversions_bit,
    count_inversions_mergesort,
)


def _regimes(n=3_000, seed=5000):
    rng = make_np_rng(seed)
    random_vals = rng.normal(size=n)
    noisy = sorted(random_vals)
    for i in rng.choice(n, size=n // 20, replace=False):
        j = int(rng.integers(n))
        noisy[i], noisy[j] = noisy[j], noisy[i]
    return {
        "sorted": sorted(random_vals),
        "5% shuffled": noisy,
        "random": list(random_vals),
        "reversed": sorted(random_vals, reverse=True),
    }


def test_exact_bit(benchmark):
    values = list(make_np_rng(5001).normal(size=5_000))
    count = benchmark(lambda: count_inversions_bit(values))
    assert count > 0


def test_exact_mergesort(benchmark):
    values = list(make_np_rng(5001).normal(size=5_000))
    benchmark(lambda: count_inversions_mergesort(values))


def test_estimator_update(benchmark):
    values = list(make_np_rng(5002).normal(size=5_000))
    benchmark(lambda: drive(InversionEstimator(k=200, seed=0), values))


def test_t1_8_report(benchmark):
    rows = []
    for name, values in _regimes().items():
        exact = count_inversions_bit(values)
        est = drive(InversionEstimator(k=600, seed=1), values)
        max_pairs = len(values) * (len(values) - 1) / 2
        rows.append(
            [name, exact, f"{est.estimate():,.0f}",
             f"{abs(est.estimate() - exact) / max_pairs:.4f}",
             f"{est.sortedness():.3f}"]
        )
    report(
        "T1.8 Inversion counting (n=3k, 600 pair samplers ~ O(k) space)",
        ["regime", "exact inversions", "estimate", "err/maxpairs", "sortedness"],
        rows,
    )
    # Shape: sortedness orders the regimes correctly.
    sortedness = [float(r[4]) for r in rows]
    assert sortedness[0] > sortedness[1] > sortedness[2] > sortedness[3]
    values = list(make_np_rng(5003).normal(size=2_000))
    benchmark(lambda: drive(InversionEstimator(k=100, seed=2), values))
