"""T1.17 — Table 1 "Significant One Counting" [Lee & Ting].

Regenerates the row as the space saving bought by the weaker guarantee:
accuracy only required when the count clears theta*n. Compared directly
against DGIM at equal epsilon (the trade Table 1 highlights for traffic
accounting).
"""

from helpers import drive, rel_error, report

from repro.common.rng import make_np_rng
from repro.windowing import DGIM, SignificantOneCounter

WINDOW = 50_000


def _bits(density, n=120_000, seed=14_000):
    return (make_np_rng(seed).random(n) < density).astype(bool).tolist()


def test_significant_one_update(benchmark):
    bits = _bits(0.5, n=60_000)
    benchmark(
        lambda: drive(SignificantOneCounter(WINDOW, theta=0.2, epsilon=0.05), bits)
    )


def test_dgim_same_epsilon_update(benchmark):
    bits = _bits(0.5, n=60_000)
    benchmark(lambda: drive(DGIM(WINDOW, epsilon=0.05), bits))


def test_t1_17_report(benchmark):
    theta, eps = 0.2, 0.05
    rows = []
    for density in (0.5, 0.05):
        bits = _bits(density, seed=14_000 + int(density * 100))
        true = sum(bits[-WINDOW:])
        soc = drive(SignificantOneCounter(WINDOW, theta=theta, epsilon=eps), bits)
        dgim = drive(DGIM(WINDOW, epsilon=eps), bits)
        significant = true >= theta * WINDOW
        rows.append(
            [f"density {density}", "yes" if significant else "no",
             soc.n_blocks, dgim.n_buckets,
             f"{rel_error(soc.estimate(), true):.3f}" if significant else "n/a (below theta)",
             f"{rel_error(dgim.estimate(), true):.3f}"]
        )
    report(
        f"T1.17 Significant-one vs DGIM (window {WINDOW:,}, theta={theta}, eps={eps})",
        ["stream", "significant?", "SOC blocks", "DGIM buckets", "SOC err", "DGIM err"],
        rows,
    )
    # Shape: in the significant regime SOC is accurate with fewer records
    # than DGIM; the guarantee is allowed to lapse below theta.
    assert rows[0][1] == "yes"
    assert rows[0][2] < rows[0][3]
    assert float(rows[0][4]) <= eps + 0.02
    bits = _bits(0.5, n=30_000)
    benchmark(lambda: drive(SignificantOneCounter(WINDOW, theta=theta, epsilon=eps), bits))
