"""Ablations — the design choices DESIGN.md calls out, measured.

* Count-Min plain vs conservative update vs Count-Sketch (bias/variance);
* Bloom double hashing (Kirsch–Mitzenmacher) vs independent hashes;
* HyperLogLog raw estimator vs range corrections;
* t-digest delta sweep and GK epsilon sweep (space vs error);
* DGIM buckets-per-size vs error;
* acking / checkpointing overhead vs plain execution.
"""

import collections

import numpy as np
from helpers import drive, rel_error, report

from repro.cardinality import HyperLogLog
from repro.common.hashing import HashFamily
from repro.filtering import BloomFilter
from repro.frequency import CountMinSketch, CountSketch
from repro.platform import CountBolt, ListSpout, LocalExecutor, TopologyBuilder
from repro.quantiles import GKQuantiles, TDigest
from repro.windowing import DGIM
from repro.common.rng import make_np_rng
from repro.workloads import zipf_stream


def test_ablation_cms_conservative(benchmark, zipf_50k, zipf_counts):
    rows = []
    for name, sketch in (
        ("Count-Min plain", CountMinSketch(width=1024, depth=4, seed=1)),
        ("Count-Min conservative", CountMinSketch(width=1024, depth=4, seed=1, conservative=True)),
        ("Count-Sketch", CountSketch(width=1024, depth=5, seed=1)),
    ):
        drive(sketch, zipf_50k)
        errs = [sketch.estimate(w) - c for w, c in zipf_counts.items()]
        rows.append(
            [name, f"{np.mean(errs):+.1f}", f"{np.std(errs):.1f}",
             f"{np.mean(np.abs(errs)):.1f}"]
        )
    report(
        "Ablation: frequency-sketch update rules (1024-wide, zipf 50k)",
        ["sketch", "bias", "std", "mean |err|"],
        rows,
    )
    # Conservative update strictly reduces overestimation bias.
    assert float(rows[1][1]) <= float(rows[0][1])
    sketch = CountMinSketch(width=512, depth=4, seed=2)
    benchmark(lambda: drive(sketch, zipf_50k[:10_000]))


def test_ablation_bloom_hashing(benchmark):
    keys = [f"k{i}" for i in range(20_000)]

    class IndependentBloom(BloomFilter):
        def update(self, item):
            self.count += 1
            for h in self.family.independent_hashes(item, self.k):
                self._bits[h % self.m] = True

        def contains(self, item):
            return all(
                self._bits[h % self.m]
                for h in self.family.independent_hashes(item, self.k)
            )

        __contains__ = contains

    rows = []
    for name, cls in (("double hashing (KM)", BloomFilter), ("k independent hashes", IndependentBloom)):
        bf = cls.for_capacity(20_000, 0.01, seed=3)
        bf.update_many(keys)
        fp = sum(1 for i in range(30_000) if f"x{i}" in bf) / 30_000
        rows.append([name, f"{fp:.4%}"])
    report("Ablation: Bloom hashing scheme (target fp 1%)", ["scheme", "measured fp"], rows)
    # KM double hashing preserves the asymptotics: same fp within noise.
    assert abs(float(rows[0][1].rstrip("%")) - float(rows[1][1].rstrip("%"))) < 0.8
    bf = BloomFilter.for_capacity(20_000, 0.01, seed=4)
    benchmark(lambda: bf.update_many(keys[:5_000]))


def test_ablation_hll_corrections(benchmark):
    rows = []
    for card in (50, 500, 50_000):
        hll = HyperLogLog(precision=11, seed=5)
        hll.update_many(f"u{i}" for i in range(card))
        rows.append(
            [f"n={card:,}", rel_error(hll.raw_estimate(), card),
             rel_error(hll.estimate(), card)]
        )
    report(
        "Ablation: HyperLogLog range corrections (p=11)",
        ["cardinality", "raw estimator err", "corrected err"],
        rows,
    )
    # Small range: correction (linear counting) must dominate raw.
    assert rows[0][2] < rows[0][1]
    hll = HyperLogLog(precision=11, seed=6)
    benchmark(lambda: hll.update_many(f"v{i}" for i in range(10_000)))


def test_ablation_quantile_parameter_sweep(benchmark):
    data = make_np_rng(19_000).lognormal(3, 1, size=30_000)
    data_sorted = np.sort(data)

    def rank_err(est, q):
        return abs(np.searchsorted(data_sorted, est) - q * len(data)) / len(data)

    rows = []
    for delta in (50, 100, 400):
        td = drive(TDigest(delta=delta), data)
        rows.append([f"t-digest d={delta}", td.n_centroids, f"{rank_err(td.quantile(0.99), 0.99):.5f}"])
    for eps in (0.05, 0.01, 0.002):
        gk = drive(GKQuantiles(epsilon=eps), data)
        rows.append([f"GK eps={eps}", gk.n_tuples, f"{rank_err(gk.quantile(0.99), 0.99):.5f}"])
    report("Ablation: quantile space/accuracy sweep (p99)", ["config", "cells", "p99 rank err"], rows)
    # More space -> no worse error, within noise, at both families' extremes.
    assert float(rows[2][2]) <= float(rows[0][2]) + 0.002
    assert float(rows[5][2]) <= float(rows[3][2]) + 0.002
    benchmark(lambda: drive(TDigest(delta=100), data[:10_000]))


def test_ablation_dgim_epsilon(benchmark):
    bits = (make_np_rng(19_001).random(60_000) < 0.4).tolist()
    window = 20_000
    true = sum(bits[-window:])
    rows = []
    for eps in (1.0, 0.3, 0.1, 0.03):
        d = drive(DGIM(window, epsilon=eps), bits)
        rows.append([f"eps={eps}", d.n_buckets, rel_error(d.estimate(), true)])
    report("Ablation: DGIM buckets-per-size vs error", ["epsilon", "buckets", "measured err"], rows)
    assert rows[-1][1] > rows[0][1]  # tighter epsilon costs more buckets
    assert rows[-1][2] < 0.05
    short = bits[:20_000]
    benchmark(lambda: drive(DGIM(window, epsilon=0.1), short))


def test_ablation_delta_vs_bulk_iteration(benchmark):
    """Flink's delta-iteration claim: total work collapses versus bulk
    supersteps while producing identical results."""
    from repro.platform import bulk_connected_components, connected_components
    from repro.workloads import edge_stream

    edges = list(edge_stream(800, 1_500, seed=19_003))
    delta = connected_components(edges)
    bulk = bulk_connected_components(edges)
    rows = [
        ["bulk label propagation", bulk.supersteps, bulk.total_work],
        ["delta iteration", delta.supersteps, delta.total_work],
    ]
    report(
        "Ablation: delta vs bulk iterations (connected components, 800 vertices)",
        ["engine", "supersteps", "total vertex-visits"],
        rows,
    )
    assert delta.solution == bulk.solution
    assert delta.total_work < bulk.total_work
    benchmark(lambda: connected_components(edges))


def test_ablation_reliability_overhead(benchmark):
    words = list(zipf_stream(3_000, universe=300, skew=1.0, seed=19_002))

    def topo():
        builder = TopologyBuilder()
        builder.set_spout("w", lambda: ListSpout(words))
        builder.set_bolt("count", CountBolt, parallelism=4).fields("w", 0)
        return builder.build()

    rows = []
    for semantics in ("at_most_once", "at_least_once", "exactly_once"):
        ex = LocalExecutor(topo(), semantics=semantics, checkpoint_interval=200)
        metrics = ex.run()
        merged = collections.Counter()
        for bolt in ex.bolt_instances("count"):
            merged.update(bolt.counts)
        rows.append(
            [semantics, f"{metrics.throughput():,.0f}", metrics.checkpoints,
             "exact" if sum(merged.values()) == len(words) else "lossy"]
        )
    report(
        "Ablation: reliability overhead (no faults injected)",
        ["semantics", "words/s", "checkpoints", "result"],
        rows,
    )
    benchmark(lambda: LocalExecutor(topo(), semantics="at_most_once").run())
