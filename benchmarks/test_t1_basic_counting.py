"""T1.16 — Table 1 "Basic Counting": DGIM over sliding windows.

Regenerates the row as error-vs-space for DGIM at several epsilon values
against the exact ring-buffer baseline, plus the EH generalisations to
sums and variance.
"""

from collections import deque

import numpy as np
from helpers import drive, rel_error, report

from repro.common.rng import make_np_rng
from repro.windowing import DGIM, EHSum, EHVariance

WINDOW = 10_000


def _bits(n=40_000, p=0.3, seed=13_000):
    return (make_np_rng(seed).random(n) < p).astype(bool).tolist()


def test_dgim_update(benchmark):
    bits = _bits(20_000)
    benchmark(lambda: drive(DGIM(window=WINDOW, epsilon=0.1), bits))


def test_exact_ring_buffer_update(benchmark):
    bits = _bits(20_000)

    def run():
        buf = deque(maxlen=WINDOW)
        ones = 0
        for b in bits:
            if len(buf) == WINDOW:
                ones -= buf[0]
            buf.append(b)
            ones += b
        return ones

    benchmark(run)


def test_eh_sum_update(benchmark):
    values = make_np_rng(13_001).integers(0, 50, size=15_000).tolist()
    benchmark(lambda: drive(EHSum(window=5_000, epsilon=0.1, max_value=50), values))


def test_t1_16_report(benchmark):
    bits = _bits()
    true = int(np.sum(bits[-WINDOW:]))
    rows = [["exact ring buffer", WINDOW, 0.0]]
    for eps in (0.5, 0.1, 0.02):
        d = drive(DGIM(window=WINDOW, epsilon=eps), bits)
        rows.append(
            [f"DGIM (eps={eps})", d.n_buckets, rel_error(d.estimate(), true)]
        )
    report(
        f"T1.16 Basic counting (window {WINDOW:,}, ~30% ones)",
        ["structure", "records kept", "relative error"],
        rows,
    )
    # Shape: error within the guarantee, and O((1/eps) log^2 W) records
    # instead of W bit positions.
    for row, eps in zip(rows[1:], (0.5, 0.1, 0.02)):
        assert float(row[2]) <= eps + 0.02
        assert row[1] < WINDOW / 10

    # EH extensions: sum and variance stay within epsilon too.
    rng = make_np_rng(13_002)
    values = rng.integers(0, 50, size=30_000)
    s = drive(EHSum(window=WINDOW, epsilon=0.1, max_value=50), values.tolist())
    assert rel_error(s.estimate(), float(values[-WINDOW:].sum())) < 0.12
    v = drive(EHVariance(window=WINDOW, epsilon=0.1), rng.normal(5, 2, size=30_000))
    assert rel_error(v.estimate_variance(), 4.0) < 0.25

    short = bits[:10_000]
    benchmark(lambda: drive(DGIM(window=WINDOW, epsilon=0.1), short))
