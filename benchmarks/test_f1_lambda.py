"""F1 — Figure 1: the Lambda Architecture, end to end.

Regenerates the figure as a measured experiment: query correctness as the
batch/speed boundary moves, speed-layer memory vs batch lag, and query
latency of merged reads.
"""

import collections

from helpers import report

from repro.lambda_arch import CountView, LambdaArchitecture, UniqueVisitorsView
from repro.workloads import click_stream

CLICKS = list(click_stream(20_000, unique_visitors=2_000, pages=100, seed=17_000))
TRUTH = collections.Counter(e.page for e in CLICKS)


def test_ingest_throughput(benchmark):
    def run():
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(CLICKS[:5_000])
        return la

    benchmark(run)


def test_batch_recompute(benchmark):
    la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
    la.ingest_many(CLICKS)
    benchmark(la.run_batch)


def test_merged_query(benchmark):
    la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
    la.ingest_many(CLICKS[:15_000])
    la.run_batch()
    la.ingest_many(CLICKS[15_000:])
    hot = TRUTH.most_common(1)[0][0]
    result = benchmark(lambda: la.query(hot))
    assert result == TRUTH[hot]


def test_f1_report(benchmark):
    hot = TRUTH.most_common(1)[0][0]
    rows = []
    for batch_at in (0, 5_000, 15_000, 20_000):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(CLICKS[:batch_at])
        if batch_at:
            la.run_batch()
        la.ingest_many(CLICKS[batch_at:])
        correct = la.query(hot) == TRUTH[hot]
        rows.append(
            [f"batch ran at {batch_at:,}", la.batch_lag, la.speed.n_pending_events,
             "exact" if correct else "WRONG"]
        )
        assert correct

    # HLL view: merged batch+speed distinct counts stay within sketch error.
    view = UniqueVisitorsView(key_fn=lambda e: "site", user_fn=lambda e: e.user_id)
    la = LambdaArchitecture(view)
    la.ingest_many(CLICKS[:10_000])
    la.run_batch()
    la.ingest_many(CLICKS[10_000:])
    exact = len({e.user_id for e in CLICKS})
    est = la.query("site")
    rows.append(
        ["HLL audience view", la.batch_lag, la.speed.n_pending_events,
         f"{abs(est - exact) / exact:.2%} err"]
    )
    assert abs(est - exact) / exact < 0.1

    report(
        "F1 Lambda Architecture (20k clicks; queries always merge batch+speed)",
        ["scenario", "batch lag", "speed events held", "query result"],
        rows,
    )
    la2 = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
    benchmark(lambda: la2.ingest_many(CLICKS[:2_000]))
