"""T1.14 — Table 1 "Clustering": clustering a data stream.

Regenerates the row as clustering cost and memory across online k-means,
divide-and-conquer streaming k-median and CluStream, against batch Lloyd's
(upper-bound quality, full-memory) on a drifting Gaussian mixture.
"""

import numpy as np
from helpers import report

from repro.clustering import CluStream, OnlineKMeans, StreamingKMedian, weighted_kmeans
from repro.common.rng import make_np_rng

CENTRES = np.array([[0.0, 0.0], [12.0, 0.0], [0.0, 12.0], [12.0, 12.0]])


def _stream(n=12_000, seed=11_000):
    rng = make_np_rng(seed)
    assign = rng.integers(0, len(CENTRES), size=n)
    drift = np.linspace(0, 1.5, n)[:, None]  # slow drift of all centres
    return CENTRES[assign] + drift + rng.normal(0, 0.6, size=(n, 2))


def _avg_cost(points, centres):
    d = np.sqrt(((points[:, None, :] - centres[None, :, :]) ** 2).sum(axis=2))
    return float(d.min(axis=1).mean())


def test_online_kmeans_update(benchmark):
    pts = _stream(5_000)
    km = OnlineKMeans(4, 2, seed=0)
    benchmark(lambda: km.update_many(pts))


def test_streaming_kmedian_update(benchmark):
    pts = _stream(5_000)
    km = StreamingKMedian(4, 2, buffer_size=400, seed=0)
    benchmark(lambda: km.update_many(pts))


def test_clustream_update(benchmark):
    pts = _stream(5_000)
    cs = CluStream(dims=2, max_micro_clusters=40, seed=0)
    benchmark(lambda: cs.update_many(pts))


def test_t1_14_report(benchmark):
    pts = _stream()
    rows = []

    batch_centres, __ = weighted_kmeans(pts, np.ones(len(pts)), 4, seed=0)
    rows.append(["batch Lloyd's (full memory)", len(pts), _avg_cost(pts, batch_centres)])

    km = OnlineKMeans(4, 2, seed=1)
    km.update_many(pts)
    rows.append(["online k-means", 4, _avg_cost(pts, km.centres)])

    skm = StreamingKMedian(4, 2, buffer_size=500, seed=1)
    skm.update_many(pts)
    rows.append(["streaming k-median (D&C)", skm.memory_points, _avg_cost(pts, skm.centres())])

    cs = CluStream(dims=2, max_micro_clusters=50, seed=1)
    cs.update_many(pts)
    rows.append(["CluStream (50 micro)", cs.n_micro_clusters, _avg_cost(pts, cs.macro_clusters(4))])

    report(
        "T1.14 Stream clustering (drifting 4-Gaussian mixture, n=12k)",
        ["algorithm", "points held", "avg distance to centre"],
        rows,
    )
    batch_cost = rows[0][2]
    # Shape: streaming algorithms within 1.5x of batch cost at a fraction
    # of the memory.
    for row in rows[2:]:
        assert row[2] < batch_cost * 1.5
        assert row[1] < len(pts) / 5
    small = pts[:3_000]
    cs2 = CluStream(dims=2, max_micro_clusters=30, seed=2)
    benchmark(lambda: cs2.update_many(small))
