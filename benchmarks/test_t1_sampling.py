"""T1.1 — Table 1 "Sampling": representative sets of the stream.

Regenerates the row as a measured comparison: uniform reservoir (R vs L),
biased reservoir under drift, and window samplers — sample quality
(inclusion-rate error / recency bias) and update cost.
"""

import collections

from helpers import drive, rel_error, report

from repro.sampling import (
    AlgorithmLSampler,
    BiasedReservoirSampler,
    ChainSampler,
    ReservoirSampler,
)


def test_reservoir_algorithm_r(benchmark, zipf_50k):
    sampler = benchmark(lambda: drive(ReservoirSampler(1_000, seed=0), zipf_50k))
    assert len(sampler) == 1_000


def test_reservoir_algorithm_l(benchmark, zipf_50k):
    sampler = benchmark(lambda: drive(AlgorithmLSampler(1_000, seed=0), zipf_50k))
    assert len(sampler) == 1_000


def test_biased_reservoir(benchmark, zipf_50k):
    sampler = benchmark(lambda: drive(BiasedReservoirSampler(0.01, seed=0), zipf_50k))
    assert len(sampler) <= sampler.capacity


def test_chain_sampler_window(benchmark, zipf_50k):
    sampler = benchmark(lambda: drive(ChainSampler(16, window=5_000, seed=0), zipf_50k))
    assert len(sampler.sample) <= 16


def test_t1_1_report(zipf_50k, zipf_counts, benchmark):
    """Sample-quality characterization across the samplers."""
    n = len(zipf_50k)
    rows = []

    # Uniform samplers: the sample's top-item frequency should match the
    # stream's (a representative set, per the paper's A/B-testing use case).
    true_top_frac = zipf_counts.most_common(1)[0][1] / n
    for name, cls in (("Algorithm R", ReservoirSampler), ("Algorithm L", AlgorithmLSampler)):
        sampler = drive(cls(2_000, seed=1), zipf_50k)
        sample_counts = collections.Counter(sampler.sample)
        sample_top_frac = sample_counts[zipf_counts.most_common(1)[0][0]] / len(sampler)
        rows.append([name, 2_000, f"{rel_error(sample_top_frac, true_top_frac):.3f}", "uniform"])

    # Biased reservoir: mean age should be << uniform's n/2.
    biased = drive(BiasedReservoirSampler(0.01, seed=1), list(range(n)))
    mean_age = n - sum(biased.sample) / len(biased.sample)
    rows.append(["Biased (lam=0.01)", biased.capacity, f"mean age {mean_age:,.0f} vs uniform {n/2:,.0f}", "recency-biased"])

    chain = drive(ChainSampler(16, window=5_000, seed=1), list(range(n)))
    in_window = all(x > n - 5_000 for x in chain.sample)
    rows.append(["Chain (window 5k)", 16, f"all in window: {in_window}", "sliding window"])

    report(
        "T1.1 Sampling (stream n=50k)",
        ["algorithm", "sample size", "quality", "regime"],
        rows,
    )
    benchmark(lambda: drive(ReservoirSampler(100, seed=2), zipf_50k[:5_000]))
