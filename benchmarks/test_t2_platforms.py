"""T2.1 — Table 2: the streaming-platform design space, measured.

Regenerates the platform survey as an experiment: the same word-count
topology run across the architectural choices the systems differ on —
grouping strategy, bolt parallelism, and the pipeline-API overhead — with
throughput and queue behaviour reported.
"""

import collections

from helpers import report

from repro.core import Pipeline
from repro.platform import CountBolt, FlatMapBolt, ListSpout, LocalExecutor, TopologyBuilder
from repro.workloads import zipf_stream

SENTENCE_WORDS = 5


def _sentences(n=3_000):
    words = list(zipf_stream(n * SENTENCE_WORDS, universe=2_000, skew=1.05, seed=15_000))
    return [
        " ".join(words[i * SENTENCE_WORDS : (i + 1) * SENTENCE_WORDS]) for i in range(n)
    ]


def _word_count(parallelism, sentences):
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(sentences))
    builder.set_bolt(
        "split", lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()])
    ).shuffle("sentences")
    builder.set_bolt("count", CountBolt, parallelism=parallelism).fields("split", 0)
    return builder.build()


def _truth(sentences):
    counter = collections.Counter()
    for s in sentences:
        counter.update(s.split())
    return counter


def test_topology_run_parallelism_1(benchmark):
    sentences = _sentences(1_500)
    benchmark(lambda: LocalExecutor(_word_count(1, sentences)).run())


def test_topology_run_parallelism_8(benchmark):
    sentences = _sentences(1_500)
    benchmark(lambda: LocalExecutor(_word_count(8, sentences)).run())


def test_pipeline_api_run(benchmark):
    sentences = _sentences(1_500)

    def run():
        return (
            Pipeline.from_list(sentences)
            .flat_map(lambda v: [(w,) for w in v[0].split()])
            .key_by(0)
            .count()
            .run()
        )

    benchmark(run)


def test_t2_1_report(benchmark):
    sentences = _sentences()
    truth = _truth(sentences)
    rows = []
    for parallelism in (1, 2, 4, 8):
        ex = LocalExecutor(_word_count(parallelism, sentences))
        metrics = ex.run()
        merged = collections.Counter()
        for bolt in ex.bolt_instances("count"):
            merged.update(bolt.counts)
        assert merged == truth
        high_water = max(
            m.queue_high_water for name, m in metrics.components.items() if "count" in name
        )
        rows.append(
            [f"fields grouping, p={parallelism}",
             f"{metrics.throughput():,.0f}",
             high_water,
             "exact"]
        )
    report(
        "T2.1 Platform design space (word count, 3k sentences / 15k words)",
        ["configuration", "sentences/s", "max queue depth", "result"],
        rows,
    )
    benchmark(lambda: LocalExecutor(_word_count(4, sentences[:500])).run())
