"""T1.5 — Table 1 "Estimating Quantiles": small-memory quantile summaries.

Regenerates the row as rank-error vs memory across GK, t-digest, q-digest,
P2 and frugal streaming against the exact sorted baseline — including the
tail (p99/p999) where t-digest's variable centroid sizing should win.
"""

import numpy as np
from helpers import drive, report

from repro.common.rng import make_np_rng
from repro.quantiles import Frugal2U, GKQuantiles, P2Quantile, QDigest, TDigest

QS = (0.5, 0.9, 0.99, 0.999)


def _data(n=50_000, seed=2000):
    return make_np_rng(seed).lognormal(3.0, 1.2, size=n)


def _rank_err(estimate, data_sorted, q):
    rank = np.searchsorted(data_sorted, estimate, side="right")
    return abs(rank - q * len(data_sorted)) / len(data_sorted)


def test_gk_update(benchmark):
    data = _data(20_000)
    benchmark(lambda: drive(GKQuantiles(epsilon=0.01), data))


def test_tdigest_update(benchmark):
    data = _data(20_000)
    benchmark(lambda: drive(TDigest(delta=100), data))


def test_p2_update(benchmark):
    data = _data(20_000)
    benchmark(lambda: drive(P2Quantile(q=0.99), data))


def test_frugal_update(benchmark):
    data = _data(20_000)
    benchmark(lambda: drive(Frugal2U(q=0.5, seed=0), data))


def test_qdigest_update(benchmark):
    data = (_data(20_000) * 10).astype(int).clip(0, 2**16 - 1)
    benchmark(lambda: drive(QDigest(depth=16, k=256), data))


def test_t1_5_report(benchmark):
    data = _data()
    data_sorted = np.sort(data)
    rows = [["exact sort", data.nbytes, 0.0, 0.0, 0.0, 0.0]]

    gk = drive(GKQuantiles(epsilon=0.005), data)
    rows.append(
        ["GK (eps=0.005)", gk.n_tuples * 24]
        + [_rank_err(gk.quantile(q), data_sorted, q) for q in QS]
    )
    td = drive(TDigest(delta=200), data)
    rows.append(
        ["t-digest (d=200)", td.n_centroids * 16]
        + [_rank_err(td.quantile(q), data_sorted, q) for q in QS]
    )
    qd = drive(QDigest(depth=16, k=256), (data * 10).astype(int).clip(0, 2**16 - 1))
    rows.append(
        ["q-digest (k=256)", qd.n_nodes * 12]
        + [_rank_err(qd.quantile(q) / 10.0, data_sorted, q) for q in QS]
    )
    p2s = [drive(P2Quantile(q=q), data) for q in QS]
    rows.append(
        ["P2 (per-q)", 5 * 8 * len(QS)]
        + [_rank_err(p2.quantile(), data_sorted, q) for p2, q in zip(p2s, QS)]
    )
    frugals = [drive(Frugal2U(q=q, seed=3), data) for q in QS]
    rows.append(
        ["Frugal-2U (per-q)", 2 * 8 * len(QS)]
        + [_rank_err(f.quantile(), data_sorted, q) for f, q in zip(frugals, QS)]
    )

    report(
        "T1.5 Quantiles on lognormal(3, 1.2), n=50k (rank error)",
        ["summary", "~bytes", "p50", "p90", "p99", "p999"],
        rows,
    )
    # Shape checks: sketches beat raw storage by >10x; GK within epsilon;
    # t-digest tail error below GK-at-equal-ish-size tail error or tiny.
    assert rows[1][1] < data.nbytes / 10
    assert all(float(e) <= 0.006 for e in rows[1][2:])
    assert float(rows[2][4]) < 0.01  # t-digest p99
    benchmark(lambda: drive(TDigest(delta=100), data[:10_000]))
