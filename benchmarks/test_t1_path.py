"""T1.10 — Table 1 "Path Analysis": bounded-length paths in dynamic graphs.

Regenerates the row as exact dynamic-graph queries vs the spanner-backed
oracle: retained edges (space) and query agreement under stretch slack,
on a growing web-graph edge stream with deletions.
"""

import networkx as nx
from helpers import report

from repro.graphs import ApproxPathOracle, DynamicGraph
from repro.workloads import power_law_edge_stream


def _edges(n=4_000):
    return list(power_law_edge_stream(500, n, skew=1.1, seed=7000))


def test_dynamic_graph_insert(benchmark):
    edges = _edges()

    def build():
        g = DynamicGraph()
        g.update_many(edges)
        return g

    benchmark(build)


def test_dynamic_graph_query(benchmark):
    g = DynamicGraph()
    g.update_many(_edges())
    pairs = _edges(200)
    benchmark(lambda: sum(g.has_path_within(u, v, 4) for u, v in pairs))


def test_path_oracle_insert(benchmark):
    edges = _edges()

    def build():
        oracle = ApproxPathOracle(t=3)
        oracle.update_many(edges)
        return oracle

    benchmark(build)


def test_t1_10_report(benchmark):
    edges = _edges()
    exact = DynamicGraph()
    exact.update_many(edges)
    oracle = ApproxPathOracle(t=3)
    oracle.update_many(edges)

    g = nx.Graph(edges)
    queries = edges[:200]
    agree = 0
    for u, v in queries:
        d = nx.shortest_path_length(g, u, v)
        agree += oracle.has_path_within(u, v, oracle.stretch * d)
    rows = [
        ["exact dynamic graph", exact.n_edges, "exact", "supports deletion"],
        ["3-spanner oracle", oracle.n_edges,
         f"{agree}/{len(queries)} found within 3x slack", "insert-only"],
    ]
    report(
        "T1.10 Path analysis (power-law web graph, 4k edge events)",
        ["structure", "edges retained", "l-bounded path queries", "notes"],
        rows,
    )
    assert oracle.n_edges < exact.n_edges
    assert agree == len(queries)
    small = edges[:1_000]
    benchmark(lambda: DynamicGraph().update_many(small))
