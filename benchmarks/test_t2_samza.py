"""T2.3 — Table 2's Samza column: log-backed stages, measured.

Section 3 on Samza: persisting every intermediate stream buys durability
and composability "at the cost of increased latency". This bench runs the
same split->count job (a) directly on the topology executor and (b) as
log-backed stages, and measures the durability payoff (crash mid-run,
exact recovery from committed offsets). Note on the latency claim: the
paper's cost is *disk* persistence between stages; our in-memory log
cannot model that, so the throughput column here mostly reflects the two
runtimes' per-record overheads, while the durability/exactly-once columns
are the faithfully reproduced behaviour.
"""

import collections

from helpers import report

from repro.platform import (
    CountBolt,
    FlatMapBolt,
    InMemoryLog,
    ListSpout,
    LocalExecutor,
    TopologyBuilder,
)
from repro.platform.samza import LoggedTask, SamzaPipeline
from repro.workloads import zipf_stream

WORDS_PER_SENTENCE = 4
_words = list(zipf_stream(3_000 * WORDS_PER_SENTENCE, universe=400, skew=1.0, seed=20_000))
SENTENCES = [
    " ".join(_words[i * WORDS_PER_SENTENCE : (i + 1) * WORDS_PER_SENTENCE])
    for i in range(3_000)
]
TRUTH = collections.Counter(_words)


class _SplitTask(LoggedTask):
    def process(self, record):
        return record.split()


class _CountTask(LoggedTask):
    def __init__(self):
        self.counts = collections.Counter()

    def process(self, record):
        self.counts[record] += 1
        return []

    def snapshot(self):
        return dict(self.counts)

    def restore(self, state):
        self.counts = collections.Counter(state or {})


def _run_direct():
    builder = TopologyBuilder()
    builder.set_spout("s", lambda: ListSpout(SENTENCES))
    builder.set_bolt("split", lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()])).shuffle("s")
    builder.set_bolt("count", CountBolt, parallelism=2).fields("split", 0)
    ex = LocalExecutor(builder.build())
    ex.run()
    merged = collections.Counter()
    for bolt in ex.bolt_instances("count"):
        merged.update(bolt.counts)
    return merged, ex.metrics


def _run_logged(transactional=False, crash=False):
    source = InMemoryLog()
    source.append_many(SENTENCES)
    words = InMemoryLog()
    pipeline = SamzaPipeline()
    split = pipeline.add_stage(
        "split", _SplitTask(), source, words, commit_interval=200,
        transactional=transactional,
    )
    count_task = _CountTask()
    count = pipeline.add_stage("count", count_task, words, commit_interval=200)
    if crash:
        split.run(max_records=1_000)
        count.run(max_records=1_500)
        split.crash()
        count.crash()
    pipeline.run_until_quiescent()
    return count_task.counts, split, count


def test_direct_executor(benchmark):
    counts, __ = benchmark(_run_direct)
    assert counts == TRUTH


def test_logged_pipeline(benchmark):
    counts, __, __c = benchmark(_run_logged)
    assert counts == TRUTH


def test_logged_transactional(benchmark):
    counts, __, __c = benchmark(lambda: _run_logged(transactional=True))
    assert counts == TRUTH


def test_t2_3_report(benchmark):
    import time

    rows = []
    t0 = time.perf_counter()
    counts, __m = _run_direct()
    direct_s = time.perf_counter() - t0
    rows.append(["direct topology", f"{len(SENTENCES)/direct_s:,.0f}", "none",
                 "exact" if counts == TRUTH else "WRONG"])

    t0 = time.perf_counter()
    counts, split, count = _run_logged()
    logged_s = time.perf_counter() - t0
    rows.append(
        [f"logged stages ({split.commits + count.commits} commits)",
         f"{len(SENTENCES)/logged_s:,.0f}",
         "restartable from offsets",
         "exact" if counts == TRUTH else "WRONG"]
    )

    counts, split, count = _run_logged(transactional=True, crash=True)
    rows.append(
        [f"logged + crash mid-run ({split.restarts + count.restarts} restarts)",
         "-", "exactly-once via atomic commit",
         "exact" if counts == TRUTH else "WRONG"]
    )

    report(
        "T2.3 Samza-style log-backed execution (3k sentences / 12k words)",
        ["configuration", "sentences/s", "durability", "result"],
        rows,
    )
    assert all(row[3] == "exact" for row in rows)
    benchmark(lambda: _run_logged(transactional=True))
