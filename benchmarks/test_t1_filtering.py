"""T1.2 — Table 1 "Filtering": approximate set membership.

Regenerates the row as measured bits/key vs false-positive rate for the
Bloom family and the cuckoo filter, plus the exact-set baseline — the
classic space/accuracy frontier.
"""

from helpers import report

from repro.filtering import BloomFilter, CountingBloomFilter, CuckooFilter, ScalableBloomFilter

N_KEYS = 20_000
N_PROBES = 50_000


def _keys():
    return [f"key{i}" for i in range(N_KEYS)]


def _fp_rate(filt) -> float:
    hits = sum(1 for i in range(N_PROBES) if f"absent{i}" in filt)
    return hits / N_PROBES


def test_bloom_insert(benchmark):
    keys = _keys()
    bf = BloomFilter.for_capacity(N_KEYS, 0.01, seed=0)

    def build():
        bf.update_many(keys)
        return bf

    benchmark(build)


def test_bloom_query(benchmark):
    bf = BloomFilter.for_capacity(N_KEYS, 0.01, seed=0)
    bf.update_many(_keys())
    benchmark(lambda: sum(1 for i in range(5_000) if f"absent{i}" in bf))


def test_cuckoo_insert(benchmark):
    keys = _keys()

    def build():
        cf = CuckooFilter.for_capacity(N_KEYS, seed=0)
        cf.update_many(keys)
        return cf

    benchmark(build)


def test_scalable_bloom_insert(benchmark):
    keys = _keys()

    def build():
        sbf = ScalableBloomFilter(initial_capacity=1_024, fp_rate=0.01, seed=0)
        sbf.update_many(keys)
        return sbf

    benchmark(build)


def test_t1_2_report(benchmark):
    keys = _keys()
    rows = []

    exact = set(keys)
    import sys

    rows.append(["exact set", sys.getsizeof(exact) * 8 / N_KEYS, 0.0, "yes"])

    for target in (0.1, 0.01, 0.001):
        bf = BloomFilter.for_capacity(N_KEYS, target, seed=1)
        bf.update_many(keys)
        rows.append(
            [f"Bloom (target {target})", bf.size_bytes() * 8 / N_KEYS, _fp_rate(bf), "no"]
        )

    cbf = CountingBloomFilter.for_capacity(N_KEYS, 0.01, seed=1)
    cbf.update_many(keys)
    rows.append(["Counting Bloom (0.01)", cbf.size_bytes() * 8 / N_KEYS, _fp_rate(cbf), "delete"])

    cf = CuckooFilter.for_capacity(N_KEYS, seed=1)
    cf.update_many(keys)
    cuckoo_bits = cf.buckets * cf.bucket_size * cf.fingerprint_bits / N_KEYS
    rows.append(["Cuckoo (12-bit fp)", cuckoo_bits, _fp_rate(cf), "delete"])

    report(
        f"T1.2 Filtering ({N_KEYS:,} keys; no false negatives by construction)",
        ["structure", "bits/key", "false-positive rate", "supports delete"],
        rows,
    )
    # All approximate structures must be far below the exact set's footprint
    # (~840 bits/key for the container alone; counting Bloom's 8-bit
    # counters are the family's most expensive at ~77 bits/key).
    assert all(float(r[1]) < 128 for r in rows[1:])
    bf = BloomFilter.for_capacity(N_KEYS, 0.01, seed=2)
    benchmark(lambda: bf.update_many(keys[:5_000]))
