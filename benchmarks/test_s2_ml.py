"""S2-ML — Section 2's incremental machine learning, measured.

Regenerates the section's claim as an experiment: online learners reach
useful accuracy in one pass and *adapt to drift*, where a frozen batch
model decays. Progressive validation (predict-then-learn) throughout.
"""

import numpy as np
from helpers import report

from repro.common.rng import make_np_rng
from repro.ml import HoeffdingTree, OnlineLogisticRegression, StreamingNaiveBayes


def _drifting_stream(n, dims=6, drift_at=None, seed=21_000):
    """Logistic-model stream whose true weights flip sign at *drift_at*."""
    rng = make_np_rng(seed)
    w = rng.normal(size=dims)
    for i in range(n):
        if drift_at is not None and i == drift_at:
            w = -w
        x = rng.normal(size=dims)
        p = 1.0 / (1.0 + np.exp(-(x @ w) * 3.0))
        yield x, int(rng.random() < p)


def test_logistic_update(benchmark):
    data = list(_drifting_stream(10_000))
    lr = OnlineLogisticRegression(dims=6)
    benchmark(lambda: lr.update_many(data))


def test_hoeffding_update(benchmark):
    rng = make_np_rng(21_001)
    data = [(rng.uniform(0, 1, size=2), int(rng.random() < 0.5)) for __ in range(5_000)]
    tree = HoeffdingTree(dims=2, grace_period=200)
    benchmark(lambda: tree.update_many(data))


def test_naive_bayes_update(benchmark):
    rng = make_np_rng(21_002)
    docs = [
        ([f"w{int(rng.integers(50))}" for __ in range(5)], int(rng.integers(2)))
        for __ in range(5_000)
    ]
    nb = StreamingNaiveBayes()
    benchmark(lambda: nb.update_many(docs))


def test_s2_ml_report(benchmark):
    n, drift_at = 30_000, 15_000
    rows = []

    # Online learner: accuracy windows before and after the drift.
    lr = OnlineLogisticRegression(dims=6, adagrad=True)
    window_hits: list[int] = []
    acc_before = acc_after = acc_recovered = 0.0
    for i, (x, y) in enumerate(_drifting_stream(n, drift_at=drift_at)):
        window_hits.append(int(lr.predict(x) == y))
        lr.update((x, y))
        if i == drift_at - 1:
            acc_before = float(np.mean(window_hits[-3_000:]))
        if i == drift_at + 999:
            acc_after = float(np.mean(window_hits[-1_000:]))
    acc_recovered = float(np.mean(window_hits[-3_000:]))
    rows.append(
        ["online logistic (AdaGrad)", f"{acc_before:.1%}", f"{acc_after:.1%}",
         f"{acc_recovered:.1%}"]
    )

    # Frozen model trained on the first half only: decays after the drift.
    frozen = OnlineLogisticRegression(dims=6, adagrad=True)
    stream = list(_drifting_stream(n, drift_at=drift_at))
    frozen.update_many(stream[:drift_at])
    pre = float(np.mean([frozen.predict(x) == y for x, y in stream[drift_at - 3_000 : drift_at]]))
    post = float(np.mean([frozen.predict(x) == y for x, y in stream[-3_000:]]))
    rows.append(["frozen batch model", f"{pre:.1%}", "-", f"{post:.1%}"])

    report(
        "S2-ML Incremental learning under concept drift (flip at 15k)",
        ["model", "acc before drift", "acc right after", "acc at end"],
        rows,
    )
    # Shape: the online model recovers after the drift; the frozen one
    # ends up at or below chance.
    assert acc_before > 0.75
    assert acc_recovered > 0.75
    assert post < 0.55
    small = list(_drifting_stream(3_000))
    lr2 = OnlineLogisticRegression(dims=6)
    benchmark(lambda: lr2.update_many(small))
