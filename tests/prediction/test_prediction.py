"""Tests for stream predictors and imputation."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.prediction import HoltWinters, KalmanFilter, LocalTrendFilter, OnlineAR
from repro.workloads import seasonal_series, series_with_missing_values


class TestKalman:
    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            KalmanFilter(F=np.ones((2, 3)), H=np.ones((1, 2)), Q=np.eye(2), R=np.eye(1))
        with pytest.raises(ParameterError):
            KalmanFilter(F=np.eye(2), H=np.ones((1, 3)), Q=np.eye(2), R=np.eye(1))

    def test_converges_to_constant_signal(self):
        kf = LocalTrendFilter(process_noise=1e-4, observation_noise=1.0)
        rng = make_np_rng(91)
        for __ in range(500):
            kf.update(5.0 + rng.normal(0, 0.5))
        assert abs(kf.level - 5.0) < 0.3
        assert abs(kf.velocity) < 0.05

    def test_tracks_linear_trend(self):
        kf = LocalTrendFilter(process_noise=1e-3, observation_noise=0.5)
        rng = make_np_rng(92)
        for t in range(800):
            kf.update(0.5 * t + rng.normal(0, 0.5))
        assert abs(kf.velocity - 0.5) < 0.05
        assert abs(kf.predict_next() - 0.5 * 800) < 5.0

    def test_missing_observation_prediction(self):
        kf = LocalTrendFilter(process_noise=1e-3, observation_noise=0.5)
        for t in range(200):
            kf.update(float(t))
        kf.update(None)  # predict-only step
        assert abs(kf.level - 200.0) < 2.0

    def test_imputation_beats_zero_fill(self):
        annotated = series_with_missing_values(2_000, missing_rate=0.05, seed=93)
        kf = LocalTrendFilter(process_noise=1e-2, observation_noise=0.3)
        errors, zero_errors = [], []
        for i, v in enumerate(annotated.values):
            if np.isnan(v):
                pred = kf.predict_next()
                truth = annotated.clean[i]
                errors.append((pred - truth) ** 2)
                zero_errors.append(truth**2)
                kf.update(None)
            else:
                kf.update(v)
        assert np.mean(errors) < np.mean(zero_errors) * 0.5


class TestOnlineAR:
    def test_validation(self):
        with pytest.raises(ParameterError):
            OnlineAR(order=0)
        with pytest.raises(ParameterError):
            OnlineAR(forgetting=0.0)

    def test_learns_ar1_process(self):
        rng = make_np_rng(94)
        ar = OnlineAR(order=1, forgetting=0.999)
        x = 0.0
        for __ in range(5_000):
            x = 0.8 * x + rng.normal(0, 0.1)
            ar.update(x)
        assert abs(ar.coefficients[0] - 0.8) < 0.05

    def test_forecast_sine_wave(self):
        ar = OnlineAR(order=8, forgetting=0.999)
        t = np.arange(3_000)
        series = np.sin(2 * np.pi * t / 50)
        errs = []
        for i, v in enumerate(series):
            if i > 2_000:
                errs.append((ar.predict_next() - v) ** 2)
            ar.update(float(v))
        assert np.mean(errs) < 0.01

    def test_adapts_to_regime_change(self):
        rng = make_np_rng(95)
        ar = OnlineAR(order=1, forgetting=0.99)
        x = 0.0
        for __ in range(2_000):
            x = 0.9 * x + rng.normal(0, 0.1)
            ar.update(x)
        for __ in range(3_000):
            x = -0.5 * x + rng.normal(0, 0.1)
            ar.update(x)
        assert abs(ar.coefficients[0] - (-0.5)) < 0.2


class TestHoltWinters:
    def test_validation(self):
        with pytest.raises(ParameterError):
            HoltWinters(period=1)
        with pytest.raises(ParameterError):
            HoltWinters(period=4, alpha=1.0)

    def test_forecast_before_warmup_rejected(self):
        hw = HoltWinters(period=4)
        hw.update(1.0)
        with pytest.raises(ParameterError):
            hw.forecast()

    def test_forecasts_seasonal_series(self):
        series = seasonal_series(2_000, period=96, amplitude=10, noise_std=0.5, seed=96)
        hw = HoltWinters(period=96, alpha=0.3, beta=0.02, gamma=0.3)
        errs = []
        for i, v in enumerate(series):
            if hw.ready and i > 1_000:
                errs.append((hw.forecast(1) - v) ** 2)
            hw.update(float(v))
        rmse = float(np.sqrt(np.mean(errs)))
        assert rmse < 2.5  # amplitude 10: seasonality clearly captured

    def test_tracks_trend(self):
        hw = HoltWinters(period=8, alpha=0.4, beta=0.1, gamma=0.1)
        for t in range(800):
            hw.update(0.1 * t + np.sin(2 * np.pi * t / 8))
        assert hw.trend == pytest.approx(0.1, abs=0.05)
