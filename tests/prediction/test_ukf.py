"""Tests for the unscented Kalman filter."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.prediction import LocalTrendFilter, UnscentedKalmanFilter


def _linear_ukf(q=1e-3, r=0.25):
    F = np.array([[1.0, 1.0], [0.0, 1.0]])
    H = np.array([[1.0, 0.0]])
    return UnscentedKalmanFilter(
        f=lambda x: F @ x,
        h=lambda x: H @ x,
        Q=q * np.eye(2),
        R=np.array([[r]]),
        x0=np.zeros(2),
    )


class TestUKF:
    def test_validation(self):
        with pytest.raises(ParameterError):
            UnscentedKalmanFilter(
                f=lambda x: x, h=lambda x: x, Q=np.eye(3), R=np.eye(1), x0=np.zeros(2)
            )
        with pytest.raises(ParameterError):
            UnscentedKalmanFilter(
                f=lambda x: x, h=lambda x: x, Q=np.eye(1), R=np.eye(1),
                x0=np.zeros(1), alpha=0.0,
            )

    def test_tracks_linear_trend_like_kf(self):
        """On a linear model the UKF must agree with the linear KF."""
        rng = make_np_rng(95)
        ukf = _linear_ukf()
        kf = LocalTrendFilter(process_noise=1e-3, observation_noise=0.25)
        for t in range(400):
            z = 0.3 * t + rng.normal(0, 0.5)
            ukf.update(z)
            kf.update(z)
        assert abs(ukf.x[0] - kf.level) < 1.0
        assert abs(ukf.x[1] - 0.3) < 0.1

    def test_nonlinear_observation_model(self):
        """State observed through a square root: linear KF can't express
        this; UKF recovers the underlying level."""
        rng = make_np_rng(96)
        level_true = 49.0
        ukf = UnscentedKalmanFilter(
            f=lambda x: x,  # constant level
            h=lambda x: np.array([np.sqrt(np.abs(x[0]) + 1e-9)]),
            Q=np.array([[1e-5]]),
            R=np.array([[0.01]]),
            x0=np.array([10.0]),
            P0=np.array([[100.0]]),
        )
        for __ in range(400):
            z = np.sqrt(level_true) + rng.normal(0, 0.1)
            ukf.update(z)
        assert abs(ukf.x[0] - level_true) < 3.0

    def test_nonlinear_process_model(self):
        """Track a sinusoidal phase oscillator (nonlinear dynamics)."""
        rng = make_np_rng(97)
        omega = 0.1

        def f(x):  # state = [phase]; advances by omega
            return np.array([x[0] + omega])

        def h(x):
            return np.array([np.sin(x[0])])

        ukf = UnscentedKalmanFilter(
            f=f, h=h,
            Q=np.array([[1e-6]]),
            R=np.array([[0.04]]),
            x0=np.array([0.3]),  # near the true initial phase 0.0
            P0=np.array([[0.25]]),
        )
        phase = 0.0
        errs = []
        for t in range(600):
            phase += omega
            z = np.sin(phase) + rng.normal(0, 0.2)
            ukf.update(z)
            if t > 400:
                errs.append(abs(np.sin(ukf.x[0]) - np.sin(phase)))
        assert np.mean(errs) < 0.15

    def test_missing_observations(self):
        ukf = _linear_ukf()
        for t in range(100):
            ukf.update(float(t))
        before = ukf.x[0]
        ukf.update(None)  # predict-only
        assert ukf.x[0] > before  # trend carried the level forward

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            _linear_ukf().merge(_linear_ukf())
