"""Tests for the Lambda Architecture."""

import collections

import pytest

from repro.lambda_arch import CountView, LambdaArchitecture, UniqueVisitorsView
from repro.workloads import click_stream


@pytest.fixture()
def clicks():
    return list(click_stream(3_000, unique_visitors=300, pages=40, seed=201))


class TestCountViewLambda:
    def test_query_before_any_batch_uses_speed_only(self, clicks):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(clicks[:100])
        truth = collections.Counter(e.page for e in clicks[:100])
        page, count = truth.most_common(1)[0]
        assert la.query(page) == count
        assert la.batch_lag == 100

    def test_batch_plus_speed_equals_truth(self, clicks):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(clicks[:2_000])
        la.run_batch()
        la.ingest_many(clicks[2_000:])  # arrives after the batch run
        truth = collections.Counter(e.page for e in clicks)
        for page in list(truth)[:20]:
            assert la.query(page) == truth[page], page

    def test_speed_layer_expired_by_batch(self, clicks):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(clicks)
        assert la.speed.n_pending_events == len(clicks)
        la.run_batch()
        assert la.speed.n_pending_events == 0
        assert la.batch_lag == 0
        truth = collections.Counter(e.page for e in clicks)
        for page in list(truth)[:20]:
            assert la.query(page) == truth[page]

    def test_repeated_batches_stay_consistent(self, clicks):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        for chunk_start in range(0, 3_000, 500):
            la.ingest_many(clicks[chunk_start : chunk_start + 500])
            la.run_batch()
        truth = collections.Counter(e.page for e in clicks)
        assert all(la.query(p) == truth[p] for p in truth)

    def test_unknown_key_returns_zero(self):
        la = LambdaArchitecture(CountView())
        assert la.query("never-seen") == 0

    def test_keys_union_of_layers(self, clicks):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(clicks[:1_000])
        la.run_batch()
        la.ingest_many(clicks[1_000:1_100])
        expected = {e.page for e in clicks[:1_100]}
        assert la.keys() == expected


class TestUniqueVisitorsLambda:
    def test_merged_distinct_counts(self, clicks):
        view = UniqueVisitorsView(
            key_fn=lambda e: e.page, user_fn=lambda e: e.user_id, precision=12
        )
        la = LambdaArchitecture(view)
        la.ingest_many(clicks[:2_500])
        la.run_batch()
        la.ingest_many(clicks[2_500:])
        truth = collections.defaultdict(set)
        for e in clicks:
            truth[e.page].add(e.user_id)
        top_pages = sorted(truth, key=lambda p: -len(truth[p]))[:5]
        for page in top_pages:
            estimate = la.query(page)
            exact = len(truth[page])
            assert abs(estimate - exact) / exact < 0.15, page

    def test_hll_values_merge_across_layers(self, clicks):
        """A user seen in both batch and speed ranges is counted once."""
        view = UniqueVisitorsView(
            key_fn=lambda e: "all", user_fn=lambda e: e.user_id, precision=13
        )
        la = LambdaArchitecture(view)
        la.ingest_many(clicks[:1_500])
        la.run_batch()
        la.ingest_many(clicks[1_500:])  # heavy user overlap with batch range
        exact = len({e.user_id for e in clicks})
        assert abs(la.query("all") - exact) / exact < 0.1
