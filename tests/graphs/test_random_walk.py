"""Tests for streaming random walks and Monte-Carlo PageRank."""

import networkx as nx
import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.graphs import StreamingRandomWalker
from repro.workloads import power_law_edge_stream


class TestWalks:
    def test_validation(self):
        walker = StreamingRandomWalker()
        with pytest.raises(ParameterError):
            walker.walk("nope", 5)
        walker.update((1, 2))
        with pytest.raises(ParameterError):
            walker.walk(1, -1)
        with pytest.raises(ParameterError):
            walker.pagerank(walks_per_node=0)

    def test_walk_follows_edges(self):
        walker = StreamingRandomWalker(seed=0)
        walker.update_many([(1, 2), (2, 3), (3, 4)])
        path = walker.walk(1, 10)
        for a, b in zip(path, path[1:]):
            assert abs(a - b) == 1  # the path graph only has chain edges

    def test_self_loops_ignored(self):
        walker = StreamingRandomWalker()
        walker.update((5, 5))
        assert walker.n_vertices == 0


class TestPageRank:
    def test_matches_networkx_on_hub_graph(self):
        edges = list(power_law_edge_stream(200, 3_000, skew=1.3, seed=90))
        walker = StreamingRandomWalker(seed=1)
        walker.update_many(edges)
        pr = walker.pagerank(walks_per_node=40, damping=0.85)

        g = nx.MultiGraph()
        g.add_edges_from(edges)
        exact = nx.pagerank(nx.Graph(g), alpha=0.85)

        # Top-10 overlap between estimated and exact rankings.
        est_top = sorted(pr, key=pr.get, reverse=True)[:10]
        true_top = sorted(exact, key=exact.get, reverse=True)[:10]
        assert len(set(est_top) & set(true_top)) >= 6

    def test_probabilities_normalised(self):
        walker = StreamingRandomWalker(seed=2)
        walker.update_many([(0, 1), (1, 2), (2, 0)])
        pr = walker.pagerank(walks_per_node=100)
        assert sum(pr.values()) == pytest.approx(1.0)
        # Symmetric triangle: all ranks equal-ish.
        vals = list(pr.values())
        assert max(vals) < 1.5 * min(vals)


class TestHittingTime:
    def test_adjacent_nodes_fast(self):
        walker = StreamingRandomWalker(seed=3)
        walker.update_many([(0, 1)] * 3)
        assert walker.hitting_time_estimate(0, 1) == 1.0

    def test_distant_nodes_slower(self):
        walker = StreamingRandomWalker(seed=4)
        chain = [(i, i + 1) for i in range(10)]
        walker.update_many(chain)
        near = walker.hitting_time_estimate(0, 1, trials=100)
        far = walker.hitting_time_estimate(0, 9, trials=100)
        assert far > near

    def test_unreachable_is_inf(self):
        walker = StreamingRandomWalker(seed=5)
        walker.update_many([(0, 1), (2, 3)])
        assert walker.hitting_time_estimate(0, 3, max_steps=50, trials=5) == float("inf")
