"""Tests for the semi-streaming graph algorithms."""

import networkx as nx
import pytest

from repro.common.exceptions import ParameterError
from repro.graphs import (
    ApproxPathOracle,
    DynamicGraph,
    EdgeSamplingSparsifier,
    GreedyMatching,
    StreamingConnectivity,
    StreamingSpanner,
    TriangleCounter,
    UnionFind,
    WeightedGreedyMatching,
    count_triangles_exact,
)
from repro.workloads import edge_stream


class TestUnionFind:
    def test_components_tracked(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.n_components == 2
        uf.union(2, 3)
        assert uf.n_components == 1
        assert uf.connected(1, 4)

    def test_union_returns_change(self):
        uf = UnionFind()
        assert uf.union("a", "b")
        assert not uf.union("a", "b")


class TestStreamingConnectivity:
    def test_connectivity_matches_networkx(self):
        edges = list(edge_stream(100, 150, seed=0))
        sc = StreamingConnectivity()
        sc.update_many(edges)
        g = nx.Graph(edges)
        g.add_nodes_from(range(100))
        seen_nodes = {n for e in edges for n in e}
        assert sc.n_components == nx.number_connected_components(g.subgraph(seen_nodes))

    def test_spanning_forest_certifies(self):
        edges = list(edge_stream(50, 200, seed=1))
        sc = StreamingConnectivity()
        sc.update_many(edges)
        forest = sc.spanning_forest()
        assert len(forest) == sc.n_vertices - sc.n_components
        replay = StreamingConnectivity()
        replay.update_many(forest)
        for u, v in edges[:50]:
            assert replay.connected(u, v) == sc.connected(u, v)

    def test_merge(self):
        a, b = StreamingConnectivity(), StreamingConnectivity()
        a.update((1, 2))
        b.update((2, 3))
        a.merge(b)
        assert a.connected(1, 3)


class TestMatching:
    def test_matching_is_valid(self):
        gm = GreedyMatching()
        edges = list(edge_stream(80, 300, seed=2))
        gm.update_many(edges)
        seen = set()
        for u, v in gm.matching():
            assert u not in seen and v not in seen
            seen.update((u, v))

    def test_two_approximation(self):
        edges = list(edge_stream(60, 250, seed=3))
        gm = GreedyMatching()
        gm.update_many(edges)
        opt = len(nx.max_weight_matching(nx.Graph(edges)))
        assert gm.matching_size() >= opt / 2

    def test_vertex_cover_covers_every_edge(self):
        edges = list(edge_stream(60, 250, seed=4))
        gm = GreedyMatching()
        gm.update_many(edges)
        assert all(gm.is_covered(e) for e in edges)

    def test_vertex_cover_two_approx(self):
        edges = list(edge_stream(40, 120, seed=5))
        gm = GreedyMatching()
        gm.update_many(edges)
        opt_matching = len(nx.max_weight_matching(nx.Graph(edges)))
        # |cover| = 2*|matching| <= 2*OPT_vc (since OPT_vc >= max matching).
        assert len(gm.vertex_cover()) <= 2 * 2 * opt_matching

    def test_weighted_matching_prefers_heavy(self):
        wm = WeightedGreedyMatching(gamma=0.1)
        wm.update(("a", "b", 1.0))
        wm.update(("a", "c", 10.0))  # displaces the light edge
        matched = wm.matching()
        assert ("a", "c", 10.0) in matched or ("c", "a", 10.0) in matched
        assert wm.total_weight() == 10.0

    def test_weighted_matching_constant_factor(self):
        import networkx as nx

        edges = [(u, v, float((u * v) % 17 + 1)) for u, v in edge_stream(40, 200, seed=6)]
        wm = WeightedGreedyMatching(gamma=0.2)
        wm.update_many(edges)
        g = nx.Graph()
        for u, v, w in edges:
            if not g.has_edge(u, v) or g[u][v]["weight"] < w:
                g.add_edge(u, v, weight=w)
        opt = sum(g[u][v]["weight"] for u, v in nx.max_weight_matching(g))
        assert wm.total_weight() >= opt / 8  # theory: ~1/(3+2sqrt2) with charging


class TestSpanner:
    def test_stretch_respected(self):
        edges = list(edge_stream(60, 500, seed=7))
        sp = StreamingSpanner(t=3)
        sp.update_many(edges)
        g = nx.Graph(edges)
        for u, v in edges[:60]:
            true_d = nx.shortest_path_length(g, u, v)
            assert sp.spanner_distance(u, v) <= 3 * true_d

    def test_spanner_sparser_than_graph(self):
        edges = list(edge_stream(60, 800, seed=8))
        sp = StreamingSpanner(t=5)
        sp.update_many(edges)
        distinct = len(set(edges))
        assert sp.n_edges < distinct * 0.6

    def test_validation(self):
        with pytest.raises(ParameterError):
            StreamingSpanner(t=0)


class TestSparsifier:
    def test_edge_count_estimate(self):
        edges = list(edge_stream(200, 5_000, seed=9))
        sp = EdgeSamplingSparsifier(p=0.2, seed=0)
        sp.update_many(edges)
        assert abs(sp.estimate_total_edges() - 5_000) / 5_000 < 0.15

    def test_cut_estimate(self):
        edges = list(edge_stream(100, 4_000, seed=10))
        sp = EdgeSamplingSparsifier(p=0.3, seed=1)
        sp.update_many(edges)
        side = set(range(50))
        true_cut = sum(1 for u, v in edges if (u in side) != (v in side))
        assert abs(sp.estimate_cut(side) - true_cut) / true_cut < 0.2

    def test_space_reduced(self):
        sp = EdgeSamplingSparsifier(p=0.1, seed=2)
        sp.update_many(edge_stream(100, 10_000, seed=11))
        assert sp.n_edges < 1_500


class TestTriangles:
    def test_exact_counter_on_known_graph(self):
        # K4 has 4 triangles.
        edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        assert count_triangles_exact(edges) == 4

    def test_exact_below_reservoir(self):
        edges = list(edge_stream(30, 200, seed=12, allow_duplicates=False))
        tc = TriangleCounter(reservoir_size=500, seed=0)
        tc.update_many(edges)
        assert tc.estimate() == count_triangles_exact(edges)

    def test_estimate_with_sampling(self):
        edges = list(edge_stream(120, 3_000, seed=13, allow_duplicates=False))
        tc = TriangleCounter(reservoir_size=800, seed=1)
        tc.update_many(edges)
        exact = count_triangles_exact(edges)
        assert abs(tc.estimate() - exact) / exact < 0.5
        assert tc.reservoir_edges <= 800

    def test_duplicate_edges_ignored(self):
        tc = TriangleCounter(reservoir_size=100, seed=2)
        tc.update_many([(0, 1), (1, 2), (0, 2), (0, 2), (0, 2)])
        assert tc.estimate() == 1.0


class TestDynamicGraph:
    def test_path_within(self):
        g = DynamicGraph()
        for u, v in [(1, 2), (2, 3), (3, 4), (4, 5)]:
            g.add_edge(u, v)
        assert g.has_path_within(1, 5, 4)
        assert not g.has_path_within(1, 5, 3)
        assert g.has_path_within(1, 1, 0)

    def test_deletion_breaks_path(self):
        g = DynamicGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.has_path_within("a", "c", 2)
        g.remove_edge("b", "c")
        assert not g.has_path_within("a", "c", 10)

    def test_remove_missing_edge_rejected(self):
        g = DynamicGraph()
        with pytest.raises(ParameterError):
            g.remove_edge(1, 2)

    def test_distance_matches_networkx(self):
        edges = list(edge_stream(40, 150, seed=14))
        g = DynamicGraph()
        g.update_many(edges)
        nxg = nx.Graph(edges)
        for u, v in edges[:30]:
            assert g.distance(u, v) == nx.shortest_path_length(nxg, u, v)

    def test_bidirectional_matches_exact(self):
        edges = list(edge_stream(50, 120, seed=15))
        g = DynamicGraph()
        g.update_many(edges)
        nxg = nx.Graph(edges)
        for u, v in edges[:30]:
            d = nx.shortest_path_length(nxg, u, v)
            for limit in (d - 1, d, d + 1):
                if limit >= 0:
                    assert g.has_path_within(u, v, limit) == (d <= limit)


class TestApproxPathOracle:
    def test_no_false_positive_on_spanner(self):
        oracle = ApproxPathOracle(t=3)
        oracle.update_many([(1, 2), (3, 4)])
        assert not oracle.has_path_within(1, 4, 10)

    def test_true_paths_found_with_stretch_slack(self):
        edges = list(edge_stream(50, 400, seed=16))
        oracle = ApproxPathOracle(t=3)
        oracle.update_many(edges)
        g = nx.Graph(edges)
        for u, v in edges[:40]:
            d = nx.shortest_path_length(g, u, v)
            assert oracle.has_path_within(u, v, oracle.stretch * d)

    def test_space_bounded(self):
        oracle = ApproxPathOracle(t=5)
        oracle.update_many(edge_stream(40, 2_000, seed=17))
        assert oracle.n_edges < 500
