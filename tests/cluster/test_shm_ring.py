"""SPSC ring protocol: wraparound, backpressure, torn writes, lifecycle.

The ring is the data plane's only concurrency primitive, so its contract
is tested exhaustively against a plain-deque model: frames come out in
order and byte-identical no matter how often the indices wrap; a full
ring refuses a push without side effects; an unpublished (crashed
mid-write) frame is invisible to the reader; and every segment a ring
creates disappears from ``/dev/shm`` on destroy — idempotently.
"""

import os
import pickle
import random
from collections import deque

import pytest

from repro.cluster.shm import (
    SEGMENT_PREFIX,
    ShmChannel,
    SpscRing,
    leaked_segments,
    shm_available,
)
from repro.common.exceptions import ParameterError, SerializationError

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture
def ring():
    r = SpscRing(capacity=256, suffix="test")
    yield r
    r.destroy()


class TestProtocol:
    def test_fifo_roundtrip(self, ring):
        frames = [bytes([i]) * (i + 1) for i in range(10)]
        for frame in frames:
            assert ring.try_push(frame)
        assert [ring.try_pop() for __ in frames] == frames
        assert ring.try_pop() is None

    def test_empty_frame_is_legal(self, ring):
        assert ring.try_push(b"")
        assert ring.try_pop() == b""
        assert ring.try_pop() is None

    def test_wraparound_fuzz_against_model(self, ring):
        """Randomized push/pop keeps the ring equal to a deque model.

        The 256-byte capacity forces the indices to wrap dozens of times
        over the run, exercising both split-write and split-read paths.
        """
        rnd = random.Random(13)
        model: deque[bytes] = deque()
        pushed = 0
        while pushed < 500:
            if rnd.random() < 0.6:
                frame = os.urandom(rnd.randrange(0, 90))
                if ring.try_push(frame):
                    model.append(frame)
                    pushed += 1
                else:
                    # model and ring agree the ring is full
                    assert ring.free_bytes() < len(frame) + 4
            else:
                got = ring.try_pop()
                if model:
                    assert got == model.popleft()
                else:
                    assert got is None
        while model:
            assert ring.try_pop() == model.popleft()
        assert ring.try_pop() is None
        assert ring.used_bytes() == 0

    def test_frame_spanning_the_seam_is_intact(self, ring):
        # Advance the indices so the next frame must wrap the data area.
        ring.try_push(b"x" * 200)
        assert ring.try_pop() == b"x" * 200
        frame = bytes(range(100))
        assert ring.try_push(frame)  # straddles offset 204 -> 256 -> 52
        assert ring.try_pop() == frame


class TestBackpressure:
    def test_full_ring_refuses_without_side_effects(self, ring):
        big = b"a" * 120
        assert ring.try_push(big)
        assert ring.try_push(big)  # 2 * (4 + 120) = 248 <= 256
        used = ring.used_bytes()
        assert not ring.try_push(b"bbbbb")  # 4 + 5 > 8 free
        assert ring.used_bytes() == used  # nothing written, nothing published
        assert ring.try_pop() == big
        assert ring.try_pop() == big
        assert ring.try_pop() is None

    def test_freed_space_is_reusable(self, ring):
        assert ring.try_push(b"a" * 240)
        assert not ring.try_push(b"b" * 240)
        assert ring.try_pop() == b"a" * 240
        assert ring.try_push(b"b" * 240)  # pop freed the space

    def test_oversized_frame_rejected_loudly(self, ring):
        with pytest.raises(ParameterError):
            ring.try_push(b"x" * 253)  # 4 + 253 > 256: can never fit

    def test_byte_accounting(self, ring):
        assert ring.used_bytes() == 0
        assert ring.free_bytes() == 256
        ring.try_push(b"ab")
        assert ring.used_bytes() == 6  # u32 length + 2 payload bytes
        assert ring.free_bytes() == 250
        ring.try_pop()
        assert ring.used_bytes() == 0

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ParameterError):
            SpscRing(capacity=4)


class TestCrashRecovery:
    def test_unpublished_write_is_invisible(self, ring):
        """A producer that dies mid-write leaves no observable frame.

        The protocol writes payload bytes first and publishes ``head``
        last; simulate the crash by doing the byte writes without the
        publish and assert the reader sees nothing.
        """
        head = int(ring._idx[0])
        ring._write(head, b"\x08\x00\x00\x00")  # length word of a torn frame
        ring._write(head + 4, b"partial!")  # ...and its payload bytes
        assert ring.try_pop() is None  # head never published: invisible
        assert ring.used_bytes() == 0
        # Recovery resets and the ring is fully usable again.
        ring.reset()
        assert ring.try_push(b"after recovery")
        assert ring.try_pop() == b"after recovery"

    def test_reset_discards_enqueued_frames(self, ring):
        ring.try_push(b"stale-1")
        ring.try_push(b"stale-2")
        ring.reset()
        assert ring.try_pop() is None
        assert ring.used_bytes() == 0


class TestLifecycle:
    def test_segment_exists_then_destroy_unlinks(self):
        ring = SpscRing(capacity=128)
        assert ring.name.startswith(f"{SEGMENT_PREFIX}_{os.getpid()}_")
        assert leaked_segments([ring.name]) == [ring.name]
        ring.destroy()
        assert leaked_segments([ring.name]) == []

    def test_destroy_is_idempotent(self):
        ring = SpscRing(capacity=128)
        ring.destroy()
        ring.destroy()  # second call must be a no-op, not an error
        assert leaked_segments([ring.name]) == []

    def test_channel_owns_two_segments(self):
        channel = ShmChannel(worker_id=3, capacity=128)
        names = channel.segment_names
        assert len(names) == 2
        assert leaked_segments(names) == names
        channel.inbox.try_push(b"in")
        channel.outbox.try_push(b"out")
        channel.reset()
        assert channel.inbox.try_pop() is None
        assert channel.outbox.try_pop() is None
        channel.destroy()
        channel.destroy()
        assert leaked_segments(names) == []

    def test_ring_handles_refuse_to_pickle(self, ring):
        with pytest.raises(SerializationError):
            pickle.dumps(ring)

    def test_channel_handles_refuse_to_pickle(self):
        channel = ShmChannel(worker_id=0, capacity=128)
        try:
            with pytest.raises(SerializationError):
                pickle.dumps(channel)
        finally:
            channel.destroy()
