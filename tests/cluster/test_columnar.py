"""Columnar codec: exact envelope round-trips, fallbacks, chunking.

The codec must be invisible to everything above it: for any envelope of
delivery entries ``(component, task, values, root, tuple_id, trace)``
plus the parallel khash list, decode(encode(x)) == x — same tuples, same
order, same types. These tests pin that contract, the per-column type
paths, the counted pickle fallback, and ``encode_frames`` chunking.
"""

import pytest

from repro.cluster.columnar import (
    CodecStats,
    component_table,
    decode_entries,
    encode_entries,
    encode_frames,
    frame_epoch,
)
from repro.common.exceptions import ExecutionError

COMP_IDS, COMP_NAMES = component_table(["count", "quantile", "split"])


def _entry(component, task, values, root=None, tuple_id=0, trace=None):
    return (component, task, values, root, tuple_id, trace)


def _roundtrip(entries, epoch=0, khashes=None):
    frame, stats = encode_entries(entries, epoch, COMP_IDS, khashes=khashes)
    got_epoch, got_entries, got_khashes = decode_entries(frame, COMP_NAMES)
    assert got_epoch == epoch
    assert got_entries == entries
    return got_khashes, stats, frame


class TestComponentTable:
    def test_deterministic_and_inverse(self):
        ids, names = component_table(["b", "a", "c"])
        assert names == ["a", "b", "c"]
        assert ids == {"a": 0, "b": 1, "c": 2}
        assert component_table(["c", "b", "a"]) == (ids, names)


class TestColumnTypes:
    @pytest.mark.parametrize(
        "values",
        [
            [(1,), (2,), (-5,)],
            [(0.5,), (-1.25,), (3.0,)],
            [(True,), (False,), (True,)],
            [("word",), ("",), ("émoji ✓",)],
        ],
        ids=["int64", "float64", "bool", "str"],
    )
    def test_typed_columns_roundtrip_without_pickle(self, values):
        entries = [_entry("count", 0, v, tuple_id=i) for i, v in enumerate(values)]
        __, stats, __ = _roundtrip(entries)
        assert stats.pickled_bytes == 0
        assert stats.n_entries == len(entries)

    def test_decoded_types_are_exact(self):
        entries = [_entry("count", 0, (1, 2.0, True, "x"))]
        frame, __ = encode_entries(entries, 0, COMP_IDS)
        __, [(_, __t, values, *_rest)], __ = decode_entries(frame, COMP_NAMES)
        assert [type(v) for v in values] == [int, float, bool, str]

    def test_mixed_type_column_falls_back_to_pickle_counted(self):
        entries = [
            _entry("count", 0, (1,)),
            _entry("count", 0, ("one",)),  # int/str mix in position 0
        ]
        __, stats, __ = _roundtrip(entries)
        assert stats.pickled_bytes > 0

    def test_big_int_column_falls_back_to_pickle(self):
        entries = [_entry("count", 0, (1 << 80,)), _entry("count", 0, (2,))]
        __, stats, __ = _roundtrip(entries)
        assert stats.pickled_bytes > 0

    def test_ragged_arity_group_falls_back_to_pickle(self):
        entries = [_entry("count", 0, (1, 2)), _entry("count", 0, (3,))]
        __, stats, __ = _roundtrip(entries)
        assert stats.pickled_bytes > 0

    def test_empty_tuple_values(self):
        entries = [_entry("count", 0, ()), _entry("count", 1, ())]
        __, stats, __ = _roundtrip(entries)
        assert stats.pickled_bytes == 0


class TestEnvelopeFidelity:
    def test_interleaved_components_keep_envelope_order(self):
        entries = [
            _entry("split", 0, ("a b",), tuple_id=1),
            _entry("count", 1, ("a",), root=1, tuple_id=2),
            _entry("split", 0, ("c d",), tuple_id=3),
            _entry("quantile", 0, (0.5,), root=1, tuple_id=4),
            _entry("count", 0, ("c",), root=3, tuple_id=5),
        ]
        _roundtrip(entries, epoch=7)

    def test_roots_none_and_mixed(self):
        _roundtrip([_entry("count", 0, (1,)), _entry("count", 1, (2,))])
        _roundtrip(
            [_entry("count", 0, (1,), root=9), _entry("count", 1, (2,), root=None)]
        )

    def test_khash_roundtrip_including_zero_and_none(self):
        entries = [_entry("count", i, (i,), tuple_id=i) for i in range(4)]
        khashes = [0, None, (1 << 64) - 1, 42]  # 0 is a legal hash, not "absent"
        got, __, __ = _roundtrip(entries, khashes=khashes)
        assert got == khashes

    def test_all_none_khashes_cost_no_column(self):
        entries = [_entry("count", 0, (1,)), _entry("count", 0, (2,))]
        __, __, bare = _roundtrip(entries, khashes=None)
        got, __, framed = _roundtrip(entries, khashes=[None, None])
        assert got == [None, None]
        assert len(framed) == len(bare)  # no khash column was emitted

    def test_sparse_traces_roundtrip(self):
        entries = [
            _entry("count", 0, (1,), trace=(11, 22, 1)),
            _entry("count", 0, (2,)),
            _entry("count", 0, (3,), trace=(33, 44, 2)),
        ]
        _roundtrip(entries)


class TestFrameHeader:
    def test_epoch_peek_matches_decode(self):
        frame, __ = encode_entries([_entry("count", 0, (1,))], 41, COMP_IDS)
        assert frame_epoch(frame) == 41

    def test_garbage_rejected(self):
        with pytest.raises(ExecutionError):
            frame_epoch(b"\x00" * 16)
        with pytest.raises(ExecutionError):
            decode_entries(b"\x00" * 16, COMP_NAMES)


class TestChunking:
    def test_split_frames_concatenate_to_the_unsplit_decode(self):
        entries = [
            _entry("count", i % 3, ("w%d" % i,), tuple_id=i) for i in range(64)
        ]
        khashes = [i if i % 2 else None for i in range(64)]
        whole, __ = encode_entries(entries, 5, COMP_IDS, khashes=khashes)
        frames = list(encode_frames(entries, 5, COMP_IDS, len(whole) // 3, khashes=khashes))
        assert len(frames) > 1
        rebuilt, rebuilt_kh = [], []
        for frame, stats in frames:
            assert len(frame) <= len(whole) // 3
            assert stats.frame_bytes == len(frame)
            epoch, part, part_kh = decode_entries(frame, COMP_NAMES)
            assert epoch == 5
            rebuilt.extend(part)
            rebuilt_kh.extend(part_kh)
        assert rebuilt == entries
        assert rebuilt_kh == khashes

    def test_small_envelope_stays_one_frame(self):
        entries = [_entry("count", 0, (1,))]
        frames = list(encode_frames(entries, 0, COMP_IDS, 1 << 16))
        assert len(frames) == 1

    def test_single_entry_over_limit_is_an_error(self):
        entries = [_entry("count", 0, ("x" * 4096,))]
        with pytest.raises(ExecutionError):
            list(encode_frames(entries, 0, COMP_IDS, 64))


class TestCodecStats:
    def test_add_accumulates_all_counters(self):
        total = CodecStats()
        total.add(CodecStats(n_entries=3, frame_bytes=100, pickled_bytes=10))
        total.add(CodecStats(n_entries=2, frame_bytes=50, pickled_bytes=0))
        assert (total.n_entries, total.frame_bytes, total.pickled_bytes) == (
            5,
            150,
            10,
        )
