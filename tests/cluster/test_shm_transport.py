"""Shared-memory transport, end to end: equivalence, backpressure, leaks.

The shm data plane must be *invisible*: for every worker count and every
semantics rung, merged state under ``transport="shm"`` is bit-identical
to the single-process run and to the queue transport. On top of that it
must be honest (byte accounting proves the data plane is pickle-free)
and clean (no ``/dev/shm`` segment survives the executor — clean
shutdown or injected crash alike).
"""

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.cluster.coordinator import ClusterExecutor
from repro.cluster.shm import ShmChannel, SpscRing, leaked_segments, shm_available
from repro.common.exceptions import ParameterError, SerializationError
from repro.core.stateship import capture
from repro.obs.demo import build_demo_topology, demo_records
from repro.platform.executor import LocalExecutor
from repro.platform.faults import FaultInjector

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

N_RECORDS = 600
SEED = 7


@pytest.fixture(scope="module")
def records():
    return demo_records(N_RECORDS, SEED)


@pytest.fixture(scope="module")
def reference(records):
    executor = LocalExecutor(build_demo_topology(records), semantics="at_most_once")
    executor.run()
    sketch = executor.bolt_instances("sketch")[0].synopsis
    counts: dict = {}
    for bolt in executor.bolt_instances("count"):
        for key, value in bolt.counts.items():
            counts[key] = counts.get(key, 0) + value
    return state_fingerprint(sketch), counts


def _merged_counts(executor: ClusterExecutor) -> dict:
    out: dict = {}
    for partial in executor.bolt_states("count"):
        for key, value in partial.items():
            out[key] = out.get(key, 0) + value
    return out


class TestEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_shm_matches_single_process(self, records, reference, n_workers):
        ref_fingerprint, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records), n_workers=n_workers, transport="shm"
        ) as executor:
            executor.run()
            merged = executor.merged_synopsis("sketch")
            counts = _merged_counts(executor)
        assert state_fingerprint(merged) == ref_fingerprint
        assert counts == ref_counts

    def test_shm_at_least_once_clean_run(self, records, reference):
        ref_fingerprint, __ = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_least_once",
            transport="shm",
        ) as executor:
            metrics = executor.run()
            merged = executor.merged_synopsis("sketch")
        assert state_fingerprint(merged) == ref_fingerprint
        assert metrics.summary()["replays"] == 0

    def test_shm_exactly_once_survives_a_crash(self, records, reference):
        ref_fingerprint, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="exactly_once",
            checkpoint_interval=100,
            transport="shm",
            worker_faults={1: FaultInjector(crash_after=250, seed=3)},
        ) as executor:
            metrics = executor.run()
            merged = executor.merged_synopsis("sketch")
            counts = _merged_counts(executor)
        assert metrics.summary()["recoveries"] >= 1
        assert state_fingerprint(merged) == ref_fingerprint
        assert counts == ref_counts


class TestByteAccounting:
    def test_shm_data_plane_bypasses_queues(self, records):
        with ClusterExecutor(
            build_demo_topology(records), n_workers=2, transport="shm"
        ) as executor:
            executor.run()
            stats = dict(executor.transport_stats)
        assert stats["transport"] == "shm"
        assert stats["data_bytes_shm"] > 0
        assert stats["data_bytes_queue"] == 0  # queues carry control only
        assert stats["data_frames"] > 0
        # Demo payloads are all-str columns: nothing fell back to pickle.
        assert stats["codec_pickled_bytes"] == 0

    def test_queue_transport_accounts_symmetrically(self, records):
        with ClusterExecutor(
            build_demo_topology(records), n_workers=2, transport="queue"
        ) as executor:
            executor.run()
            stats = dict(executor.transport_stats)
        assert stats["transport"] == "queue"
        assert stats["data_bytes_queue"] > 0
        assert stats["data_bytes_shm"] == 0


class TestBackpressure:
    def test_tiny_ring_stalls_but_stays_exact(self, records, reference):
        """A ring far smaller than the traffic forces ring-full waits;
        the run must still complete and match the reference exactly."""
        ref_fingerprint, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            transport="shm",
            ring_capacity=4096,
            max_frame=1024,
        ) as executor:
            executor.run()
            merged = executor.merged_synopsis("sketch")
            counts = _merged_counts(executor)
            waits = executor.transport_stats["backpressure_waits"]
        assert waits > 0
        assert state_fingerprint(merged) == ref_fingerprint
        assert counts == ref_counts

    def test_frame_limit_must_fit_the_ring(self, records):
        with pytest.raises(ParameterError):
            ClusterExecutor(
                build_demo_topology(records),
                transport="shm",
                ring_capacity=1024,
                max_frame=1024,  # + length header it can never fit
            )

    def test_unknown_transport_rejected(self, records):
        with pytest.raises(ParameterError):
            ClusterExecutor(build_demo_topology(records), transport="carrier_pigeon")


class TestSegmentHygiene:
    def test_clean_shutdown_leaves_no_segments(self, records):
        with ClusterExecutor(
            build_demo_topology(records), n_workers=2, transport="shm"
        ) as executor:
            executor.run()
            names = [
                name
                for channel in executor._channels
                for name in channel.segment_names
            ]
            assert names and leaked_segments(names) == names  # live during run
        assert leaked_segments(names) == []
        assert leaked_segments() == []  # nothing pid-stamped left behind

    def test_crashed_run_leaves_no_segments(self, records):
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="exactly_once",
            checkpoint_interval=100,
            transport="shm",
            worker_faults={0: FaultInjector(crash_after=200, seed=5)},
        ) as executor:
            metrics = executor.run()
            names = [
                name
                for channel in executor._channels
                for name in channel.segment_names
            ]
        assert metrics.summary()["recoveries"] >= 1
        assert leaked_segments(names) == []
        assert leaked_segments() == []

    def test_abandoned_executor_cleans_up_on_close(self, records):
        executor = ClusterExecutor(
            build_demo_topology(records), n_workers=1, transport="shm"
        )
        with executor:
            pass  # never ran; exit must still unlink the pre-created rings
        assert leaked_segments() == []


class TestHandlesStayLocal:
    def test_stateship_refuses_a_captured_ring(self):
        ring = SpscRing(capacity=128)
        try:
            with pytest.raises(SerializationError):
                capture({"transport": ring})
        finally:
            ring.destroy()

    def test_stateship_refuses_a_captured_channel(self):
        channel = ShmChannel(worker_id=0, capacity=128)
        try:
            with pytest.raises(SerializationError):
                capture({"transport": channel})
        finally:
            channel.destroy()
