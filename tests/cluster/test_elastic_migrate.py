"""Live rescale protocol: state must survive any rescale schedule intact.

The contract is the elastic half of the partitioned-computation claim:
a cluster rescaled mid-flight — workers added or removed, synopsis bolts
re-sharded by ``merge`` + ``split`` — produces merged state
**bit-identical** to a single-process run over the same records, under
exactly-once, with nothing replayed and nothing leaked.
"""

import threading
import time

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.cardinality.hyperloglog import HyperLogLog
from repro.cluster.coordinator import ClusterExecutor
from repro.cluster.elastic.migrate import (
    STRATEGY_DRAIN_RESTART,
    STRATEGY_SPLIT,
    STRATEGY_STATELESS,
    reshard_states,
)
from repro.cluster.shm import leaked_segments
from repro.common.exceptions import ExecutionError, ParameterError
from repro.core import stateship
from repro.platform.executor import LocalExecutor
from repro.quantiles.gk import GKQuantiles
from repro.workloads.spike import build_spike_topology, spike_records

SYNOPSES = ("hot_keys", "audience", "latency")
AMPLIFY = 4


@pytest.fixture(scope="module")
def records():
    return spike_records(n_calm=200, n_spike=400, n_tail=200, seed=7)


@pytest.fixture(scope="module")
def reference(records):
    executor = LocalExecutor(build_spike_topology(records, amplify=AMPLIFY))
    executor.run()
    return {
        name: state_fingerprint(executor.bolt_instances(name)[0].synopsis)
        for name in SYNOPSES
    }


def _merged_fingerprints(executor):
    return {
        name: state_fingerprint(executor.merged_synopsis(name))
        for name in SYNOPSES
    }


class TestPostRunRescale:
    """Rescale a quiesced-but-live cluster; merged answers must not move."""

    def test_scale_up_resharding_synopses(self, records, reference):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=1
        ) as executor:
            executor.run()
            report = executor.rescale(
                n_workers=2, parallelism={name: 2 for name in SYNOPSES}
            )
            assert _merged_fingerprints(executor) == reference
        assert report.from_workers == 1
        assert report.to_workers == 2
        assert set(report.strategies) == set(SYNOPSES)
        assert set(report.strategies.values()) <= {
            STRATEGY_SPLIT,
            STRATEGY_DRAIN_RESTART,
        }
        assert report.total_s > 0
        assert report.moved_state_bytes > 0
        assert report.parallelism_after["latency"] == 2

    def test_scale_down_merging_shards(self, records, reference):
        with ClusterExecutor(
            build_spike_topology(
                records,
                quantile_parallelism=2,
                sketch_parallelism=2,
                amplify=AMPLIFY,
            ),
            n_workers=2,
        ) as executor:
            executor.run()
            executor.rescale(
                n_workers=1, parallelism={name: 1 for name in SYNOPSES}
            )
            assert _merged_fingerprints(executor) == reference

    def test_worker_move_without_resharding(self, records, reference):
        # No parallelism change: shards (any state shape) move
        # byte-for-byte to the new worker set.
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=1
        ) as executor:
            executor.run()
            report = executor.rescale(n_workers=3)
            assert report.strategies == {}
            assert _merged_fingerprints(executor) == reference

    def test_epoch_advances_and_report_recorded(self, records):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=1
        ) as executor:
            executor.run()
            before = executor.epoch
            executor.rescale(n_workers=2)
            assert executor.epoch == before + 1
            assert len(executor.rescale_reports) == 1

    def test_credit_window_scales_with_workers(self, records):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY),
            n_workers=1,
            max_outstanding=8,
        ) as executor:
            executor.run()
            executor.rescale(n_workers=4)
            assert executor.max_outstanding == 32
            executor.rescale(n_workers=1)
            assert executor.max_outstanding == 8


class TestMidRunRescale:
    def test_exactly_once_rescale_mid_flight(self, records, reference):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY),
            n_workers=1,
            semantics="exactly_once",
            checkpoint_interval=200,
        ) as executor:
            outcome = {}

            def _grow():
                time.sleep(0.05)
                outcome["report"] = executor.rescale(
                    n_workers=2, parallelism={name: 2 for name in SYNOPSES}
                )

            thread = threading.Thread(target=_grow)
            thread.start()
            metrics = executor.run()
            thread.join()
            assert _merged_fingerprints(executor) == reference
            # The re-baseline means the rescale itself replays nothing.
            assert metrics.summary()["replays"] == 0
            offsets = {
                name: [spout.offset for spout in partitions]
                for name, partitions in executor._spouts.items()
            }
            assert executor._checkpoint["offsets"] == offsets
        assert outcome["report"].to_workers == 2

    def test_shm_rescale_leaks_nothing(self, records, reference):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY),
            n_workers=1,
            transport="shm",
        ) as executor:
            executor.run()
            executor.rescale(n_workers=3)
            executor.rescale(n_workers=1)
            assert _merged_fingerprints(executor) == reference
        assert leaked_segments() == []


class TestValidation:
    def test_noop_request_returns_none(self, records):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=2
        ) as executor:
            executor.run()
            assert executor.rescale(n_workers=2) is None

    def test_nonpositive_workers_rejected(self, records):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=1
        ) as executor:
            with pytest.raises(ParameterError):
                executor.rescale(n_workers=0)

    def test_unknown_bolt_rejected(self, records):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=1
        ) as executor:
            with pytest.raises(ParameterError):
                executor.rescale(parallelism={"nope": 2})

    def test_nonpositive_parallelism_rejected(self, records):
        with ClusterExecutor(
            build_spike_topology(records, amplify=AMPLIFY), n_workers=1
        ) as executor:
            with pytest.raises(ParameterError):
                executor.rescale(parallelism={"latency": 0})


class TestReshardStates:
    """The pure re-dealing step, unit-tested on hand-captured payloads."""

    @staticmethod
    def _topology():
        return build_spike_topology(
            spike_records(n_calm=10, n_spike=10, n_tail=0, seed=7),
            amplify=AMPLIFY,
        )

    @staticmethod
    def _payload(synopsis):
        return stateship.capture({"state": synopsis})

    def test_splittable_synopsis_round_trips(self):
        source = HyperLogLog(precision=10)
        for i in range(500):
            source.update(f"item-{i}")
        states, strategies = reshard_states(
            self._topology(),
            {("audience", 0): self._payload(source)},
            {"audience": 3},
        )
        assert strategies == {"audience": STRATEGY_SPLIT}
        shards = [
            stateship.restore(states[("audience", task)])["state"]
            for task in range(3)
        ]
        merged = shards[0]
        merged.merge(shards[1])
        merged.merge(shards[2])
        assert state_fingerprint(merged) == state_fingerprint(source)

    def test_unsplittable_synopsis_parks_on_task_zero(self):
        source = GKQuantiles(epsilon=0.05)
        for i in range(200):
            source.update(float(i))
        assert not GKQuantiles.supports_split()
        states, strategies = reshard_states(
            self._topology(),
            {("latency", 0): self._payload(source)},
            {"latency": 2},
        )
        assert strategies == {"latency": STRATEGY_DRAIN_RESTART}
        parked = stateship.restore(states[("latency", 0)])["state"]
        assert state_fingerprint(parked) == state_fingerprint(source)
        assert states[("latency", 1)] is None

    def test_stateless_bolt_starts_fresh_everywhere(self):
        states, strategies = reshard_states(
            self._topology(), {("burst", 0): None}, {"burst": 2}
        )
        assert strategies == {"burst": STRATEGY_STATELESS}
        assert states == {("burst", 0): None, ("burst", 1): None}

    def test_non_synopsis_state_cannot_reshard(self):
        payload = stateship.capture({"state": {"k1": 3, "k2": 5}})
        with pytest.raises(ExecutionError, match="not a mergeable synopsis"):
            reshard_states(
                self._topology(), {("latency", 0): payload}, {"latency": 2}
            )

    def test_untouched_bolts_pass_through(self):
        source = HyperLogLog(precision=10)
        source.update("only")
        payload = self._payload(source)
        states, strategies = reshard_states(
            self._topology(),
            {("audience", 0): payload, ("hot_keys", 0): b"opaque"},
            {"audience": 2},
        )
        assert strategies == {"audience": STRATEGY_SPLIT}
        assert states[("hot_keys", 0)] == b"opaque"
