"""Cluster execution equivalence: sharded must equal single-process.

The contract under test is the paper's partitioned-computation claim: a
topology sharded across worker processes, with merge-on-query over the
shard partials, produces state **bit-identical** to the single-process
:class:`LocalExecutor` over the same records — fingerprints, not
approximations.
"""

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.cluster.coordinator import ClusterExecutor
from repro.common.exceptions import ExecutionError, ParameterError
from repro.obs.demo import build_demo_topology, demo_records
from repro.platform.executor import LocalExecutor
from repro.platform.topology import Bolt, ListSpout, Spout, TopologyBuilder

N_RECORDS = 600
SEED = 7


@pytest.fixture(scope="module")
def records():
    return demo_records(N_RECORDS, SEED)


@pytest.fixture(scope="module")
def reference(records):
    """Single-process baseline: sketch fingerprint + merged word counts."""
    executor = LocalExecutor(build_demo_topology(records), semantics="at_most_once")
    executor.run()
    sketch = executor.bolt_instances("sketch")[0].synopsis
    counts: dict = {}
    for bolt in executor.bolt_instances("count"):
        for key, value in bolt.counts.items():
            counts[key] = counts.get(key, 0) + value
    return state_fingerprint(sketch), counts


def _merged_counts(executor: ClusterExecutor) -> dict:
    out: dict = {}
    for partial in executor.bolt_states("count"):
        for key, value in partial.items():
            out[key] = out.get(key, 0) + value
    return out


class TestEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_merged_state_matches_single_process(
        self, records, reference, n_workers
    ):
        ref_fingerprint, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records), n_workers=n_workers
        ) as executor:
            executor.run()
            merged = executor.merged_synopsis("sketch")
            counts = _merged_counts(executor)
        assert state_fingerprint(merged) == ref_fingerprint
        assert counts == ref_counts

    def test_reliable_run_matches_too(self, records, reference):
        ref_fingerprint, __ = reference
        with ClusterExecutor(
            build_demo_topology(records), n_workers=2, semantics="at_least_once"
        ) as executor:
            metrics = executor.run()
            merged = executor.merged_synopsis("sketch")
        assert state_fingerprint(merged) == ref_fingerprint
        # every source record acked, none replayed on a clean run
        assert metrics.summary()["replays"] == 0

    def test_partitioned_spout(self, records, reference):
        __, ref_counts = reference
        builder = TopologyBuilder()
        builder.set_spout("sentences", lambda: ListSpout(records), parallelism=2)
        from repro.platform.operators import CountBolt, FlatMapBolt

        builder.set_bolt(
            "split", lambda: FlatMapBolt(lambda values: [(w,) for w in values[0].split()])
        ).shuffle("sentences")
        builder.set_bolt("count", lambda: CountBolt(0), parallelism=2).fields(
            "split", 0
        )
        with ClusterExecutor(builder.build(), n_workers=2) as executor:
            executor.run()
            counts = _merged_counts(executor)
        assert counts == ref_counts


class TestApiContract:
    def test_bolt_states_in_task_order(self, records):
        with ClusterExecutor(build_demo_topology(records), n_workers=2) as executor:
            executor.run()
            partials = executor.bolt_states("count")
        assert len(partials) == 2  # CountBolt parallelism in the demo

    def test_unknown_bolt_rejected(self, records):
        with ClusterExecutor(build_demo_topology(records), n_workers=2) as executor:
            with pytest.raises(ParameterError):
                executor.bolt_states("nope")
            with pytest.raises(ParameterError):
                executor.bolt_states("sentences")  # spout, not bolt

    def test_closed_executor_cannot_restart(self, records):
        executor = ClusterExecutor(build_demo_topology(records), n_workers=1)
        with executor:
            executor.run()
        with pytest.raises(ExecutionError):
            executor.run()

    def test_parameter_validation(self, records):
        topology = build_demo_topology(records)
        with pytest.raises(ParameterError):
            ClusterExecutor(topology, n_workers=0)
        with pytest.raises(ParameterError):
            ClusterExecutor(topology, semantics="maybe_once")
        with pytest.raises(ParameterError):
            ClusterExecutor(topology, checkpoint_interval=0)
        with pytest.raises(ParameterError):
            ClusterExecutor(topology, batch_size=0)

    def test_unsplittable_parallel_spout_rejected(self):
        class _Fixed(Spout):
            def next_tuple(self):
                return None

        builder = TopologyBuilder()
        builder.set_spout("src", _Fixed, parallelism=2)

        class _Sink(Bolt):
            def process(self, values, emit):
                pass

        builder.set_bolt("sink", _Sink).shuffle("src")
        with pytest.raises(ExecutionError):
            ClusterExecutor(builder.build(), n_workers=2)


class TestCli:
    def test_demo_cli_verifies_fingerprint(self, capsys):
        from repro.cluster.cli import main

        code = main(["--workers", "2", "--records", "400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH" in out
