"""Worker-crash recovery and the delivery-semantics ladder, cluster-wide.

One suite, three rungs (Table 2 of the paper's systems comparison):

* ``at_most_once`` + lossy transport — some records simply vanish;
  merged counts are a subset of the sequential run's.
* ``at_least_once`` + lossy transport — lost deliveries replay until the
  tuple tree completes; merged counts dominate the sequential run's
  (duplicates allowed, loss not).
* ``exactly_once`` + a worker crash — checkpoint/rollback recovery; the
  merged state is **bit-identical** to a crash-free sequential run.
"""

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.cluster.coordinator import ClusterExecutor
from repro.obs.demo import build_demo_topology, demo_records
from repro.platform.executor import LocalExecutor
from repro.platform.faults import FaultInjector

N_RECORDS = 600
SEED = 7


@pytest.fixture(scope="module")
def records():
    return demo_records(N_RECORDS, SEED)


@pytest.fixture(scope="module")
def reference(records):
    executor = LocalExecutor(build_demo_topology(records), semantics="at_most_once")
    executor.run()
    sketch = executor.bolt_instances("sketch")[0].synopsis
    counts: dict = {}
    for bolt in executor.bolt_instances("count"):
        for key, value in bolt.counts.items():
            counts[key] = counts.get(key, 0) + value
    return state_fingerprint(sketch), counts


def _merged_counts(executor: ClusterExecutor) -> dict:
    out: dict = {}
    for partial in executor.bolt_states("count"):
        for key, value in partial.items():
            out[key] = out.get(key, 0) + value
    return out


class TestExactlyOnceCrash:
    def test_crash_recovery_is_bit_identical(self, records, reference):
        ref_fingerprint, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="exactly_once",
            checkpoint_interval=100,
            worker_faults={1: FaultInjector(crash_after=250, seed=3)},
        ) as executor:
            metrics = executor.run()
            merged = executor.merged_synopsis("sketch")
            counts = _merged_counts(executor)
        summary = metrics.summary()
        assert summary["recoveries"] >= 1  # the crash actually happened
        assert summary["checkpoints"] >= 1
        assert state_fingerprint(merged) == ref_fingerprint
        assert counts == ref_counts

    def test_loss_triggers_rollback_and_still_exact(self, records, reference):
        __, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="exactly_once",
            # Loss is repaired by *global rollback*, so the drop rate must
            # stay well below one expected drop per inter-checkpoint
            # segment or the run cannot make progress past a checkpoint.
            checkpoint_interval=50,
            worker_faults={0: FaultInjector(drop_probability=0.0008, seed=11)},
        ) as executor:
            metrics = executor.run()
            counts = _merged_counts(executor)
        assert metrics.summary()["recoveries"] >= 1  # at least one loss fired
        assert counts == ref_counts


class TestAtLeastOnceLoss:
    def test_replays_dominate_the_reference(self, records, reference):
        __, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_least_once",
            worker_faults={0: FaultInjector(drop_probability=0.01, seed=5)},
        ) as executor:
            metrics = executor.run()
            counts = _merged_counts(executor)
        assert metrics.summary()["replays"] >= 1
        # no key under-counts; replays may over-count (duplicates allowed)
        for key, expected in ref_counts.items():
            assert counts.get(key, 0) >= expected
        assert sum(counts.values()) >= sum(ref_counts.values())

    def test_crash_without_checkpoints_completes(self, records):
        # Storm without Trident: the dead worker's state is gone, but the
        # run must still finish and report the recovery.
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_least_once",
            worker_faults={1: FaultInjector(crash_after=250, seed=3)},
        ) as executor:
            metrics = executor.run()
            executor.bolt_states("count")  # queryable after recovery
        assert metrics.summary()["recoveries"] >= 1


class TestAtMostOnceLoss:
    def test_losses_are_silent_undercounts(self, records, reference):
        __, ref_counts = reference
        with ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_most_once",
            worker_faults={0: FaultInjector(drop_probability=0.05, seed=5)},
        ) as executor:
            metrics = executor.run()
            counts = _merged_counts(executor)
        assert metrics.summary()["replays"] == 0  # nothing replays
        # no key over-counts; drops silently shrink totals
        for key, observed in counts.items():
            assert observed <= ref_counts.get(key, 0)
        assert sum(counts.values()) < sum(ref_counts.values())
