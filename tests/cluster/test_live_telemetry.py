"""Live telemetry end-to-end: streamed flushes land exactly, watermarks
settle, crashes leave a flight dump, span loss is bounded."""

import pytest

from repro.cluster.coordinator import ClusterExecutor
from repro.obs.context import Observability
from repro.obs.demo import build_demo_topology, demo_records
from repro.obs.flight import FlightRecorder, read_flight
from repro.platform.faults import FaultInjector

INTERVAL = 0.02  # fast flushes so short test runs span several intervals


def absorbed_processed(registry):
    """Per-worker absorbed ``tuples_processed_total`` from live telemetry."""
    family = registry.get("repro_cluster_worker_tuples_processed_total")
    if family is None:
        return {}
    totals: dict[str, float] = {}
    for sample in family.samples():
        worker = dict(sample.labels)["worker"]
        totals[worker] = totals.get(worker, 0.0) + sample.value
    return totals


def coordinator_bolt_processed(metrics):
    return sum(
        component.processed
        for name, component in metrics.components.items()
        if name.startswith("bolt:")
    )


class TestDeltaAbsorption:
    def test_streamed_counters_settle_exactly(self):
        # Satellite 4, in vivo: across many flush intervals plus the final
        # forced flush, the coordinator's absorbed per-worker counters sum
        # to exactly its own processing totals — replace semantics never
        # double- or under-counts.
        records = demo_records(3_000, 7)
        obs = Observability.create(sample_rate=0.05, seed=7)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_least_once",
            obs=obs,
            telemetry_interval=INTERVAL,
        )
        with executor:
            metrics = executor.run()
        health = executor.last_health
        totals = absorbed_processed(obs.registry)
        assert set(totals) == {"0", "1"}
        assert sum(totals.values()) == coordinator_bolt_processed(metrics)
        # The run streamed, not one-shot: several flushes were absorbed
        # along the way (at least the final forced one per worker).
        assert sum(w.flushes for w in health.workers) >= 3
        assert all(w.flushes >= 1 for w in health.workers)

    def test_final_snapshot_is_settled(self):
        records = demo_records(1_000, 11)
        obs = Observability.create(sample_rate=0.0, seed=11)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_least_once",
            obs=obs,
            telemetry_interval=INTERVAL,
        )
        with executor:
            executor.run()
        health = executor.last_health
        assert health.reason == "final"
        assert health.watermark_unit == "offset"
        assert health.source_frontier == float(len(records))
        # Every watermark has caught up: zero lag everywhere at shutdown.
        assert health.max_lag() == 0.0
        for op in health.operators:
            assert op.watermark == health.source_frontier
        # Shm transport: ring capacity known, occupancy is a fraction.
        assert 0.0 <= health.max_ring_occupancy() <= 1.0

    def test_health_query_mid_run_shape(self):
        records = demo_records(500, 3)
        obs = Observability.create(sample_rate=0.0, seed=3)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_most_once",
            obs=obs,
            telemetry_interval=INTERVAL,
        )
        with executor:
            executor.run()
            snap = executor.health()
        assert snap.reason == "query"
        assert {op.kind for op in snap.operators} == {"spout", "bolt"}
        assert len(snap.workers) == 2
        # at-most-once issues no root ids: offset watermarks stay 0 and
        # only throughput/occupancy signals move.
        assert snap.source_frontier == 0.0

    def test_telemetry_off_falls_back_to_one_shot(self):
        # interval 0 disables *streaming*; each worker still force-flushes
        # once at shutdown so cluster-wide metric aggregation stays whole
        # (the obsbridge-equivalent baseline).
        records = demo_records(300, 5)
        obs = Observability.create(sample_rate=0.0, seed=5)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_most_once",
            obs=obs,
            telemetry_interval=0.0,
        )
        with executor:
            metrics = executor.run()
        health = executor.last_health
        assert all(w.flushes == 1 for w in health.workers)
        totals = absorbed_processed(obs.registry)
        assert sum(totals.values()) == coordinator_bolt_processed(metrics)


class TestCrashTelemetry:
    @pytest.fixture(scope="class")
    def crash_run(self, tmp_path_factory):
        flight_path = tmp_path_factory.mktemp("flight") / "flight.jsonl"
        records = demo_records(3_000, 7)
        obs = Observability.create(sample_rate=1.0, seed=7)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="exactly_once",
            checkpoint_interval=500,
            # Crash late enough that flush intervals elapse first; the
            # large span ring keeps the crashed worker's shipped spans
            # from being washed out by the survivor's flushes.
            worker_faults={1: FaultInjector(crash_after=2_000, seed=3)},
            obs=obs,
            telemetry_interval=0.002,
            flight=FlightRecorder(span_capacity=8_192),
            flight_path=flight_path,
        )
        with executor:
            metrics = executor.run()
        return executor, metrics, obs, flight_path

    def test_respawn_accounting_stays_exact(self, crash_run):
        executor, metrics, obs, __ = crash_run
        assert metrics.summary()["recoveries"] >= 1
        health = executor.last_health
        assert health.worker(1).incarnation >= 1
        assert health.worker(0).incarnation == 0
        # Seal-on-respawn: sealed base + fresh incarnation == coordinator
        # truth, exactly — no double count across the crash.
        totals = absorbed_processed(obs.registry)
        assert sum(totals.values()) == coordinator_bolt_processed(metrics)

    def test_crash_dumps_flight_recorder(self, crash_run):
        executor, __, __, flight_path = crash_run
        assert flight_path.exists()
        dump = read_flight(flight_path)
        header = dump[0]
        assert header["type"] == "flight_header"
        assert header["reason"] == "crash"
        assert header["snapshots"] >= 1
        kinds = [r["kind"] for r in dump if r["type"] == "event"]
        assert "crash" in kinds
        # The dump's last snapshot was taken at crash-handling time: its
        # workers' telemetry is at most ~one flush interval + handling
        # time stale (the flight-recorder freshness pin, integration
        # half; the deterministic half lives in tests/obs/test_health.py).
        last_health = [r for r in dump if r["type"] == "health"][-1]
        assert last_health["reason"] == "crash"

    def test_crashed_incarnation_spans_survive(self, crash_run):
        # The obsbridge span-loss fix: the crashed worker never reached a
        # shutdown export, yet spans from shards it owned are in the
        # crash-time dump — they arrived via periodic flushes, bounding
        # the loss to one flush interval instead of everything.
        executor, __, __, flight_path = crash_run
        crashed_shards = {
            (f"bolt:{component}", task)
            for component, task in executor.plan.tasks_of(1)
        }
        dump = read_flight(flight_path)
        dumped_spans = [r for r in dump if r["type"] == "span"]
        from_crashed = [
            s
            for s in dumped_spans
            if (s["component"], s["task"]) in crashed_shards
        ]
        assert from_crashed, "no pre-crash spans from the crashed worker"
