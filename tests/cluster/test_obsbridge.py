"""Cross-process observability: worker metric export/absorb, span travel."""

import pytest

from repro.cluster import obsbridge
from repro.cluster.coordinator import ClusterExecutor
from repro.obs.context import Observability
from repro.obs.demo import build_demo_topology, demo_records
from repro.obs.metrics import MetricRegistry
from repro.obs.tracing import Span, SpanCollector


class TestMetricRoundTrip:
    def test_counter_values_travel(self):
        source = MetricRegistry()
        counter = source.counter("m_total", "help", labelnames=("component",))
        counter.labels(component="a").inc(3)
        counter.labels(component="b").inc(5)
        target = MetricRegistry()
        obsbridge.absorb_metrics(target, obsbridge.export_metrics(source), worker=1)
        family = target.get("m_total")
        values = {sample.labels: sample.value for sample in family.samples()}
        assert values[(("worker", "1"), ("component", "a"))] == 3
        assert values[(("worker", "1"), ("component", "b"))] == 5

    def test_gauge_values_travel(self):
        source = MetricRegistry()
        source.gauge("m_depth", "help").set(7.5)
        target = MetricRegistry()
        obsbridge.absorb_metrics(target, obsbridge.export_metrics(source), worker=0)
        sample = target.get("m_depth").samples()[0]
        assert sample.value == 7.5
        assert ("worker", "0") in sample.labels

    def test_histogram_digest_merges_exactly(self):
        source_a, source_b = MetricRegistry(), MetricRegistry()
        for source, offset in ((source_a, 0.0), (source_b, 100.0)):
            hist = source.histogram("m_latency", "help")
            for i in range(50):
                hist.observe(offset + i)
        target = MetricRegistry()
        # same metric from two workers lands in two labelled children
        obsbridge.absorb_metrics(target, obsbridge.export_metrics(source_a), worker=0)
        obsbridge.absorb_metrics(target, obsbridge.export_metrics(source_b), worker=1)
        family = target.get("m_latency")
        children = {labels: child for labels, child in family._label_tuples()}
        assert children[(("worker", "0"),)].count == 50
        assert children[(("worker", "1"),)].count == 50
        # the digest really crossed: quantiles live in the right range
        assert children[(("worker", "1"),)].digest.quantile(0.5) >= 100.0

    def test_absorbing_twice_accumulates(self):
        source = MetricRegistry()
        source.counter("m_total", "help").inc(2)
        target = MetricRegistry()
        records = obsbridge.export_metrics(source)
        obsbridge.absorb_metrics(target, records, worker=0)
        obsbridge.absorb_metrics(target, records, worker=0)
        assert target.get("m_total").samples()[0].value == 4

    def test_unknown_kind_dropped_silently(self):
        target = MetricRegistry()
        obsbridge.absorb_metrics(
            target,
            [{"name": "m", "kind": "summary", "help": "", "labelnames": [], "labels": {}}],
            worker=0,
        )
        assert "m" not in target.names()


class TestSpanTravel:
    def test_spans_rerecorded(self):
        collector = SpanCollector()
        spans = [
            Span(
                trace_id=1,
                span_id=2,
                parent_id=None,
                component="bolt:x",
                kind="process",
                start=0.0,
            )
        ]
        obsbridge.absorb_spans(collector, spans)
        assert collector.spans == spans


class TestClusterAggregation:
    def test_worker_metrics_land_in_coordinator_registry(self):
        records = demo_records(300, 7)
        obs = Observability.create(sample_rate=1.0, seed=7)
        executor = ClusterExecutor(
            build_demo_topology(records),
            n_workers=2,
            semantics="at_least_once",  # tracing rides the reliable path
            obs=obs,
        )
        with executor:
            metrics = executor.run()
        family = obs.registry.get("repro_cluster_worker_tuples_processed_total")
        assert family is not None
        by_worker: dict[str, float] = {}
        total = 0.0
        for sample in family.samples():
            labels = dict(sample.labels)
            by_worker[labels["worker"]] = by_worker.get(labels["worker"], 0) + sample.value
            total += sample.value
        assert set(by_worker) == {"0", "1"}  # both workers reported
        # cluster-wide processed == sum of the coordinator's bolt counters
        expected = sum(
            component.processed
            for name, component in metrics.components.items()
            if name.startswith("bolt:")
        )
        assert total == pytest.approx(expected)
        # bolt process spans crossed the boundary too (full sampling)
        assert any(
            span.component.startswith("bolt:") for span in obs.collector.spans
        )
