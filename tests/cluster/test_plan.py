"""Shard planning: deterministic round-robin task → worker assignment."""

import pytest

from repro.cluster.plan import plan_topology
from repro.common.exceptions import ParameterError
from repro.platform.topology import Bolt, ListSpout, TopologyBuilder


class _Noop(Bolt):
    def process(self, values, emit):
        pass


def _topology(parallelisms: dict[str, int]):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: ListSpout([]))
    previous = "src"
    for name, parallelism in parallelisms.items():
        builder.set_bolt(name, _Noop, parallelism=parallelism).shuffle(previous)
        previous = name
    return builder.build()


class TestPlanTopology:
    def test_round_robin_deals_tasks_across_workers(self):
        plan = plan_topology(_topology({"a": 4}), 4)
        owners = [plan.worker_of("a", task) for task in range(4)]
        assert sorted(owners) == [0, 1, 2, 3]  # one task per worker

    def test_more_tasks_than_workers_wraps(self):
        plan = plan_topology(_topology({"a": 3, "b": 2}), 2)
        owners = [
            plan.worker_of(name, task)
            for name, count in (("a", 3), ("b", 2))
            for task in range(count)
        ]
        # every worker carries a share, and all 5 shards are assigned
        assert set(owners) == {0, 1}
        assert len(owners) == 5

    def test_deterministic(self):
        p1 = plan_topology(_topology({"a": 3, "b": 5}), 3)
        p2 = plan_topology(_topology({"a": 3, "b": 5}), 3)
        assert p1.assignments == p2.assignments

    def test_tasks_of_partitions_the_assignment(self):
        plan = plan_topology(_topology({"a": 3, "b": 5}), 3)
        seen = []
        for worker in range(3):
            seen.extend(plan.tasks_of(worker))
        assert sorted(seen) == sorted(plan.assignments)

    def test_spouts_not_assigned_to_workers(self):
        plan = plan_topology(_topology({"a": 2}), 2)
        assert all(name != "src" for name, __ in plan.assignments)

    def test_describe_mentions_every_worker(self):
        plan = plan_topology(_topology({"a": 2, "b": 2}), 2)
        text = plan.describe()
        assert "worker 0" in text and "worker 1" in text

    def test_idle_worker_still_listed(self):
        plan = plan_topology(_topology({"a": 1}), 3)
        assert "(idle)" in plan.describe()

    def test_worker_of_unknown_shard_raises(self):
        plan = plan_topology(_topology({"a": 2}), 2)
        with pytest.raises(ParameterError):
            plan.worker_of("a", 99)

    def test_worker_count_must_be_positive(self):
        with pytest.raises(ParameterError):
            plan_topology(_topology({"a": 1}), 0)
