"""Backpressure autoscaler policy loop, driven by synthetic health ticks.

The executor-facing half (decisions actually rescaling a cluster) is
covered by the elastic bench gate; here the policy itself is pinned —
streak hysteresis, cooldown, MIMD targets, bounds, tracked parallelism
and the lag-recovery watch — against hand-built
:class:`~repro.obs.health.HealthSnapshot` ticks.
"""

import pytest

from repro.cluster.elastic.autoscaler import (
    AutoscaleDecision,
    BackpressureAutoscaler,
    PressurePolicy,
)
from repro.cluster.elastic.migrate import RescaleReport
from repro.common.exceptions import ParameterError
from repro.obs.health import HealthSnapshot, OperatorHealth, WorkerHealth


def snap(
    seq,
    clock=0.0,
    throttled=0,
    backpressure=0,
    occupancy=0.0,
    in_flight=0,
    lag=0.0,
):
    workers = (
        WorkerHealth(
            worker=0,
            alive=True,
            incarnation=0,
            telemetry_seq=seq,
            telemetry_age_s=0.0,
            flushes=seq,
            ring_in_used=int(occupancy * 100),
            ring_out_used=0,
            ring_capacity=100,
            processed_total=0,
        ),
    )
    operators = (
        OperatorHealth(
            name="latency",
            kind="bolt",
            processed=0,
            emitted=0,
            watermark=0.0,
            lag=lag,
            processed_rate=0.0,
        ),
    )
    return HealthSnapshot(
        seq=seq,
        clock=clock,
        reason="autoscale",
        watermark_unit="offset",
        source_frontier=float(lag),
        backpressure_waits=backpressure,
        latency_p50_s=0.0,
        latency_p99_s=0.0,
        workers=workers,
        operators=operators,
        in_flight=in_flight,
        spout_throttled=throttled,
    )


def policy(**kw):
    defaults = dict(
        min_workers=1,
        max_workers=8,
        up_consecutive=2,
        down_consecutive=3,
        cooldown_ticks=2,
    )
    defaults.update(kw)
    return PressurePolicy(**defaults)


PAR = {"latency": 1, "hot_keys": 1}


class TestScaleUp:
    def test_fires_after_consecutive_pressured_ticks(self):
        scaler = BackpressureAutoscaler(policy())
        # tick 1 establishes the counter baselines (delta 0 → not pressured)
        assert scaler.observe(snap(1), 1, PAR).action == "hold"
        assert scaler.observe(snap(2, throttled=5), 1, PAR).action == "hold"
        decision = scaler.observe(snap(3, throttled=12), 1, PAR)
        assert decision.action == "up"
        assert decision.n_workers == 2  # MIMD: double
        assert decision.pressured

    def test_backpressure_delta_counts_as_pressure(self):
        scaler = BackpressureAutoscaler(policy(up_consecutive=1))
        scaler.observe(snap(1), 1, PAR)
        assert scaler.observe(snap(2, backpressure=3), 1, PAR).action == "up"

    def test_high_occupancy_counts_as_pressure(self):
        scaler = BackpressureAutoscaler(policy(up_consecutive=1))
        scaler.observe(snap(1), 1, PAR)
        assert scaler.observe(snap(2, occupancy=0.8), 1, PAR).action == "up"

    def test_clamped_at_max_workers(self):
        scaler = BackpressureAutoscaler(policy(up_consecutive=1, max_workers=4))
        scaler.observe(snap(1), 1, PAR)
        decision = scaler.observe(snap(2, throttled=5), 3, PAR)
        assert decision.action == "up" and decision.n_workers == 4
        scaler2 = BackpressureAutoscaler(policy(up_consecutive=1, max_workers=4))
        scaler2.observe(snap(1), 4, PAR)
        held = scaler2.observe(snap(2, throttled=5), 4, PAR)
        assert held.action == "hold"
        assert "max_workers" in held.reason

    def test_tracked_parallelism_follows_target(self):
        scaler = BackpressureAutoscaler(
            policy(up_consecutive=1, track_parallelism=("latency",))
        )
        scaler.observe(snap(1), 2, PAR)
        decision = scaler.observe(snap(2, throttled=1), 2, PAR)
        assert decision.action == "up"
        assert decision.parallelism["latency"] == 4
        assert decision.parallelism["hot_keys"] == 1  # untracked: unchanged


class TestScaleDown:
    def test_fires_after_consecutive_idle_ticks(self):
        scaler = BackpressureAutoscaler(policy())
        for seq in range(1, 3):
            assert scaler.observe(snap(seq), 4, PAR).action == "hold"
        decision = scaler.observe(snap(3), 4, PAR)
        assert decision.action == "down"
        assert decision.n_workers == 2  # MIMD: halve
        assert decision.idle

    def test_clamped_at_min_workers(self):
        scaler = BackpressureAutoscaler(policy(down_consecutive=1, min_workers=2))
        scaler.observe(snap(1), 2, PAR)
        held = scaler.observe(snap(2), 2, PAR)
        assert held.action == "hold"
        assert "min_workers" in held.reason


class TestHysteresis:
    def test_band_resets_both_streaks(self):
        scaler = BackpressureAutoscaler(policy(up_consecutive=2))
        scaler.observe(snap(1), 1, PAR)
        scaler.observe(snap(2, throttled=5), 1, PAR)  # pressured, streak 1
        # occupancy between low and high, no deltas: the hysteresis band
        scaler.observe(snap(3, throttled=5, occupancy=0.2), 1, PAR)
        decision = scaler.observe(snap(4, throttled=9), 1, PAR)
        assert decision.action == "hold"  # streak restarted at 1

    def test_cooldown_blocks_and_resets(self):
        scaler = BackpressureAutoscaler(policy(up_consecutive=1, cooldown_ticks=2))
        scaler.observe(snap(1), 1, PAR)
        decision = scaler.observe(snap(2, throttled=5), 1, PAR)
        assert decision.action == "up"
        report = RescaleReport(
            seq=1, reason="r", trigger="autoscale_up", from_workers=1, to_workers=2
        )
        scaler.note_applied(decision, report, clock=1.0)
        held = scaler.observe(snap(3, throttled=50), 2, PAR)
        assert held.action == "hold" and "cooldown" in held.reason
        held = scaler.observe(snap(4, throttled=90), 2, PAR)
        assert held.action == "hold"
        # cooldown spent; pressure must re-accumulate from zero
        assert scaler.observe(snap(5, throttled=130), 2, PAR).action == "up"


class TestLagWatch:
    @staticmethod
    def _armed(clock=10.0):
        scaler = BackpressureAutoscaler(policy(up_consecutive=1))
        scaler.observe(snap(1), 1, PAR)
        decision = scaler.observe(snap(2, throttled=5), 1, PAR)
        report = RescaleReport(
            seq=1, reason="r", trigger="autoscale_up", from_workers=1, to_workers=2
        )
        scaler.note_applied(decision, report, clock=clock)
        return scaler, report

    def test_recovery_stamped_when_lag_falls_under_target(self):
        scaler, report = self._armed(clock=10.0)
        # peak lag 1000 observed → target 100; still above → unresolved
        scaler.observe(snap(3, clock=11.0, throttled=6, lag=1000.0), 2, PAR)
        assert report.lag_recovery_s is None
        scaler.observe(snap(4, clock=14.5, throttled=7, lag=50.0), 2, PAR)
        assert report.lag_recovery_s == pytest.approx(4.5)

    def test_drained_cluster_counts_as_recovered(self):
        scaler, report = self._armed(clock=10.0)
        scaler.observe(snap(3, clock=11.0, throttled=6, lag=1000.0), 2, PAR)
        # lag frozen high (workload phase stopped feeding the operator)
        # but nothing in flight and nothing stalled: provably drained
        scaler.observe(
            snap(4, clock=12.0, throttled=6, lag=1000.0, in_flight=0), 2, PAR
        )
        assert report.lag_recovery_s == pytest.approx(2.0)

    def test_only_scale_ups_are_watched(self):
        scaler = BackpressureAutoscaler(policy(down_consecutive=1))
        scaler.observe(snap(1), 4, PAR)
        decision = scaler.observe(snap(2), 4, PAR)
        assert decision.action == "down"
        report = RescaleReport(
            seq=1, reason="r", trigger="autoscale_down", from_workers=4, to_workers=2
        )
        scaler.note_applied(decision, report, clock=1.0)
        scaler.observe(snap(3, clock=2.0), 2, PAR)
        assert report.lag_recovery_s is None


class TestIntrospection:
    def test_describe_is_json_shaped(self):
        scaler = BackpressureAutoscaler(policy())
        scaler.observe(snap(1), 1, PAR)
        described = scaler.describe()
        assert described["ticks"] == 1
        assert described["min_workers"] == 1
        assert described["last_decision"]["action"] == "hold"
        assert isinstance(scaler.last_decision, AutoscaleDecision)

    def test_decision_to_dict_round_trips(self):
        decision = AutoscaleDecision(seq=1, action="up", n_workers=2)
        assert decision.to_dict()["n_workers"] == 2


class TestValidation:
    def test_policy_bounds_checked(self):
        with pytest.raises(ParameterError):
            PressurePolicy(min_workers=0)
        with pytest.raises(ParameterError):
            PressurePolicy(min_workers=4, max_workers=2)
        with pytest.raises(ParameterError):
            PressurePolicy(up_consecutive=0)
        with pytest.raises(ParameterError):
            PressurePolicy(cooldown_ticks=-1)
        with pytest.raises(ParameterError):
            PressurePolicy(low_occupancy=0.9, high_occupancy=0.5)

    def test_tick_every_must_be_positive(self):
        with pytest.raises(ParameterError):
            BackpressureAutoscaler(tick_every=0)
