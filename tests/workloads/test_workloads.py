"""Tests for the synthetic workload generators."""

import collections

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.workloads import (
    click_stream,
    edge_stream,
    hashtag_stream,
    power_law_edge_stream,
    random_walk_series,
    seasonal_series,
    sensor_stream_with_anomalies,
    series_with_missing_values,
    session_stream,
    visitor_stream,
    zipf_stream,
)


class TestZipfStream:
    def test_length_and_determinism(self):
        a = list(zipf_stream(500, seed=1))
        b = list(zipf_stream(500, seed=1))
        assert len(a) == 500 and a == b

    def test_different_seeds_differ(self):
        assert list(zipf_stream(200, seed=1)) != list(zipf_stream(200, seed=2))

    def test_skew_shapes_distribution(self):
        counts = collections.Counter(zipf_stream(20_000, universe=1000, skew=1.5, seed=3))
        top = counts.most_common(1)[0][1]
        assert top > 20_000 * 0.1  # rank-1 dominates under strong skew

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            list(zipf_stream(-1))
        with pytest.raises(ParameterError):
            list(zipf_stream(10, universe=0))
        with pytest.raises(ParameterError):
            list(zipf_stream(10, skew=0))


class TestHashtagStream:
    def test_trending_fraction_realised(self):
        stream = list(hashtag_stream(20_000, trending={"#vldb": 0.05}, seed=4))
        frac = stream.count("#vldb") / len(stream)
        assert 0.03 < frac < 0.07

    def test_rejects_overfull_trending(self):
        with pytest.raises(ParameterError):
            list(hashtag_stream(10, trending={"#a": 0.7, "#b": 0.5}))

    def test_no_trending_is_pure_background(self):
        stream = list(hashtag_stream(100, seed=5))
        assert all(tag.startswith("#tag") for tag in stream)


class TestSensorWorkloads:
    def test_random_walk_length(self):
        assert len(random_walk_series(100, seed=0)) == 100

    def test_seasonal_period_visible(self):
        series = seasonal_series(960, period=96, amplitude=10, noise_std=0.1, seed=0)
        # autocorrelation at the period should be strongly positive
        x = series - series.mean()
        ac = float(np.dot(x[:-96], x[96:]) / np.dot(x, x))
        assert ac > 0.8

    def test_anomalies_are_large(self):
        annotated = sensor_stream_with_anomalies(5_000, anomaly_rate=0.01, seed=1)
        assert len(annotated.anomaly_indices) == 50
        spikes = np.abs(annotated.values[list(annotated.anomaly_indices)])
        assert spikes.min() > 4.0  # 8-sigma spike on unit noise

    def test_missing_values_masked(self):
        annotated = series_with_missing_values(1_000, missing_rate=0.1, seed=2)
        assert len(annotated.missing_indices) == 100
        assert np.isnan(annotated.values[list(annotated.missing_indices)]).all()
        assert not np.isnan(np.delete(annotated.values, list(annotated.missing_indices))).any()

    def test_rate_bounds(self):
        with pytest.raises(ParameterError):
            sensor_stream_with_anomalies(10, anomaly_rate=1.5)


class TestWebWorkloads:
    def test_visitor_cardinality_exact(self):
        ids = set(visitor_stream(5_000, unique_visitors=700, seed=0))
        assert len(ids) == 700

    def test_visitor_requires_feasible_n(self):
        with pytest.raises(ParameterError):
            list(visitor_stream(10, unique_visitors=20))

    def test_click_stream_timestamps_increase(self):
        events = list(click_stream(300, seed=1))
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        assert all(e.page.startswith("/page/") for e in events)

    def test_sessions_share_user(self):
        sessions = list(session_stream(5, seed=2))
        assert len(sessions) == 5
        for sess in sessions:
            assert len({e.user_id for e in sess}) == 1


class TestGraphWorkloads:
    def test_edge_count_and_no_self_loops(self):
        edges = list(edge_stream(50, 400, seed=0))
        assert len(edges) == 400
        assert all(u != v for u, v in edges)
        assert all(u < v for u, v in edges)

    def test_simple_graph_unique(self):
        edges = list(edge_stream(30, 200, seed=1, allow_duplicates=False))
        assert len(set(edges)) == 200

    def test_simple_graph_capacity_check(self):
        with pytest.raises(ParameterError):
            list(edge_stream(4, 100, allow_duplicates=False))

    def test_power_law_has_hubs(self):
        degree = collections.Counter()
        for u, v in power_law_edge_stream(1000, 5000, skew=1.5, seed=3):
            degree[u] += 1
            degree[v] += 1
        top = degree.most_common(1)[0][1]
        assert top > 5000 * 2 / 1000 * 10  # hub way above mean degree
