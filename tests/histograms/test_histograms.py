"""Tests for histogram and wavelet synopses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.histograms import (
    EndBiasedHistogram,
    EquiWidthHistogram,
    StreamingVOptimal,
    haar_transform,
    inverse_haar_transform,
    top_b_coefficients,
    total_sse,
    v_optimal_histogram,
    wavelet_synopsis,
)
from repro.workloads import zipf_stream


class TestEquiWidth:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            EquiWidthHistogram(1.0, 0.0)
        with pytest.raises(ParameterError):
            EquiWidthHistogram(0.0, 1.0, bins=0)

    def test_counts_partition_stream(self):
        h = EquiWidthHistogram(0.0, 10.0, bins=10)
        h.update_many([0.5, 1.5, 1.7, 9.9])
        assert h.counts[0] == 1 and h.counts[1] == 2 and h.counts[9] == 1

    def test_out_of_domain_clamped(self):
        h = EquiWidthHistogram(0.0, 10.0, bins=10)
        h.update_many([-5.0, 15.0])
        assert h.counts[0] == 1 and h.counts[9] == 1
        assert h.count == 2

    def test_range_count_interpolation(self):
        h = EquiWidthHistogram(0.0, 100.0, bins=10)
        h.update_many(make_np_rng(0).uniform(0, 100, 10_000))
        est = h.estimate_range_count(25.0, 75.0)
        assert abs(est - 5_000) / 5_000 < 0.05

    def test_quantile(self):
        h = EquiWidthHistogram(0.0, 100.0, bins=100)
        h.update_many(make_np_rng(1).uniform(0, 100, 10_000))
        assert abs(h.quantile(0.5) - 50.0) < 3.0

    def test_density_integrates_to_one(self):
        h = EquiWidthHistogram(0.0, 1.0, bins=20)
        h.update_many(make_np_rng(2).uniform(0, 1, 5_000))
        total = sum(h.density(x) for x in np.linspace(0.025, 0.975, 20)) * 0.05
        assert abs(total - 1.0) < 0.05

    def test_merge(self):
        a = EquiWidthHistogram(0.0, 1.0, bins=4)
        b = EquiWidthHistogram(0.0, 1.0, bins=4)
        a.update(0.1)
        b.update(0.9)
        a.merge(b)
        assert a.count == 2 and a.counts[0] == 1 and a.counts[3] == 1


class TestVOptimal:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            v_optimal_histogram([], 3)
        with pytest.raises(ParameterError):
            v_optimal_histogram([1.0], 0)

    def test_perfect_fit_for_piecewise_constant(self):
        values = [5.0] * 10 + [20.0] * 10 + [1.0] * 10
        buckets = v_optimal_histogram(values, 3)
        assert total_sse(buckets) == pytest.approx(0.0, abs=1e-9)
        assert [(b.start, b.end) for b in buckets] == [(0, 10), (10, 20), (20, 30)]

    def test_more_buckets_never_worse(self):
        rng = make_np_rng(3)
        values = rng.normal(size=60).cumsum()
        errs = [total_sse(v_optimal_histogram(values, b)) for b in (1, 2, 4, 8)]
        assert all(errs[i + 1] <= errs[i] + 1e-9 for i in range(len(errs) - 1))

    def test_beats_equiwidth_partition(self):
        # A step signal misaligned with equal-width boundaries.
        values = [0.0] * 7 + [50.0] * 23
        vopt = total_sse(v_optimal_histogram(values, 2))
        # Equi-width 2-bucket partition splits at 15.
        arr = np.array(values)
        eq_sse = float(((arr[:15] - arr[:15].mean()) ** 2).sum() + ((arr[15:] - arr[15:].mean()) ** 2).sum())
        assert vopt < eq_sse

    def test_streaming_voptimal_boundaries(self):
        sv = StreamingVOptimal(0.0, 100.0, n_buckets=2, resolution=64)
        data = np.concatenate(
            [make_np_rng(4).uniform(0, 20, 5_000), make_np_rng(5).uniform(80, 100, 5_000)]
        )
        sv.update_many(data)
        edges = sv.boundaries()
        assert len(edges) == 3

    def test_streaming_voptimal_merge(self):
        a = StreamingVOptimal(0.0, 10.0, n_buckets=2, resolution=16)
        b = StreamingVOptimal(0.0, 10.0, n_buckets=2, resolution=16)
        a.update_many([1.0] * 10)
        b.update_many([9.0] * 10)
        a.merge(b)
        assert a.count == 20


class TestEndBiased:
    def test_head_exactish(self):
        eb = EndBiasedHistogram(head_size=10, seed=0)
        data = list(zipf_stream(20_000, universe=1_000, skew=1.3, seed=6))
        eb.update_many(data)
        import collections

        truth = collections.Counter(data)
        head = eb.head()
        top_true = [item for item, __ in truth.most_common(5)]
        assert sum(1 for t in top_true if t in head) >= 4
        for item in top_true[:3]:
            if item in head:
                assert abs(head[item] - truth[item]) <= truth[item] * 0.1 + 5

    def test_tail_uniform_positive(self):
        eb = EndBiasedHistogram(head_size=5, seed=1)
        eb.update_many(zipf_stream(5_000, universe=2_000, skew=1.0, seed=7))
        assert eb.tail_uniform_rate() > 0
        assert eb.estimate("item1999") == pytest.approx(eb.tail_uniform_rate(), rel=0.5)

    def test_merge(self):
        a = EndBiasedHistogram(head_size=4, seed=2)
        b = EndBiasedHistogram(head_size=4, seed=2)
        a.update_many(["x"] * 50)
        b.update_many(["x"] * 50)
        a.merge(b)
        assert a.estimate("x") >= 100


class TestWavelets:
    def test_transform_roundtrip(self):
        rng = make_np_rng(8)
        signal = rng.normal(size=64)
        np.testing.assert_allclose(
            inverse_haar_transform(haar_transform(signal)), signal, atol=1e-9
        )

    def test_transform_requires_power_of_two(self):
        with pytest.raises(ParameterError):
            haar_transform(np.ones(12))

    def test_parseval_energy_preserved(self):
        signal = make_np_rng(9).normal(size=128)
        coeffs = haar_transform(signal)
        assert np.sum(signal**2) == pytest.approx(np.sum(coeffs**2))

    def test_top_b_keeps_b(self):
        coeffs = np.arange(16, dtype=float)
        kept = top_b_coefficients(coeffs, 4)
        assert np.count_nonzero(kept) == 4
        assert set(np.nonzero(kept)[0]) == {12, 13, 14, 15}

    def test_synopsis_error_decreases_with_b(self):
        signal = make_np_rng(10).normal(size=256).cumsum()
        errs = [
            float(np.linalg.norm(signal - wavelet_synopsis(signal, b)))
            for b in (4, 16, 64, 256)
        ]
        assert all(errs[i + 1] <= errs[i] + 1e-9 for i in range(len(errs) - 1))
        assert errs[-1] == pytest.approx(0.0, abs=1e-9)

    def test_step_signal_compresses_perfectly(self):
        signal = np.array([10.0] * 8 + [2.0] * 8)
        approx = wavelet_synopsis(signal, 2)
        np.testing.assert_allclose(approx, signal, atol=1e-9)

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=32))
    def test_property_l2_optimality_monotone(self, b):
        signal = make_np_rng(11).normal(size=32)
        err_b = float(np.linalg.norm(signal - wavelet_synopsis(signal, b)))
        err_b1 = float(np.linalg.norm(signal - wavelet_synopsis(signal, min(b + 1, 32))))
        assert err_b1 <= err_b + 1e-9
