"""Tests for distinct (support-uniform) sampling."""

import collections

import pytest

from repro.common.exceptions import ParameterError
from repro.sampling import DistinctSampler
from repro.workloads import zipf_stream


class TestDistinctSampler:
    def test_validation(self):
        with pytest.raises(ParameterError):
            DistinctSampler(capacity=1)
        with pytest.raises(ParameterError):
            DistinctSampler().estimate_rarity(0)

    def test_exact_below_capacity(self):
        s = DistinctSampler(capacity=100, seed=0)
        s.update_many(["a", "b", "a", "c", "a"])
        assert s.sample == {"a": 3, "b": 1, "c": 1}
        assert s.inclusion_probability == 1.0
        assert s.estimate_distinct() == 3.0

    def test_capacity_respected(self):
        s = DistinctSampler(capacity=64, seed=1)
        s.update_many(f"x{i}" for i in range(10_000))
        assert len(s) <= 64
        assert s.level > 0

    def test_distinct_estimate_accuracy(self):
        s = DistinctSampler(capacity=512, seed=2)
        s.update_many(zipf_stream(100_000, universe=20_000, skew=1.1, seed=3))
        truth = len(set(zipf_stream(100_000, universe=20_000, skew=1.1, seed=3)))
        assert abs(s.estimate_distinct() - truth) / truth < 0.2

    def test_heavy_hitters_not_overrepresented(self):
        """Unlike a uniform sample, the distinct sample's membership is
        frequency-independent: rank-1 and rank-1000 items are equally
        likely to be present."""
        heavy_hits = light_hits = 0
        trials = 60
        for t in range(trials):
            stream = list(zipf_stream(5_000, universe=2_000, skew=1.4, seed=100 + t))
            s = DistinctSampler(capacity=128, seed=t)
            s.update_many(stream)
            distinct = set(stream)
            counts = collections.Counter(stream)
            ranked = [it for it, __ in counts.most_common()]
            if ranked[0] in s.sample:
                heavy_hits += 1
            rare = [it for it in ranked if counts[it] == 1]
            if rare and rare[0] in distinct and rare[0] in s.sample:
                light_hits += 1
        # Both should be sampled at roughly the same (capacity-driven) rate.
        assert abs(heavy_hits - light_hits) < trials * 0.35

    def test_counts_exact_for_survivors(self):
        stream = list(zipf_stream(20_000, universe=5_000, skew=1.2, seed=4))
        truth = collections.Counter(stream)
        s = DistinctSampler(capacity=256, seed=5)
        s.update_many(stream)
        for item, cnt in s.sample.items():
            assert cnt == truth[item]

    def test_rarity_estimate(self):
        # Stream where exactly half the distinct items occur once.
        stream = [f"once{i}" for i in range(1_000)]
        stream += [f"twice{i}" for i in range(1_000)] * 2
        s = DistinctSampler(capacity=256, seed=6)
        s.update_many(stream)
        assert abs(s.estimate_rarity(1) - 0.5) < 0.15

    def test_merge(self):
        a = DistinctSampler(capacity=128, seed=7)
        b = DistinctSampler(capacity=128, seed=7)
        a.update_many(f"a{i}" for i in range(2_000))
        b.update_many(f"b{i}" for i in range(2_000))
        a.merge(b)
        assert len(a) <= 128
        assert abs(a.estimate_distinct() - 4_000) / 4_000 < 0.35
