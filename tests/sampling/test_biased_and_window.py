"""Tests for biased reservoir sampling and sliding-window samplers."""

import pytest

from repro.common.exceptions import ParameterError
from repro.sampling import BiasedReservoirSampler, ChainSampler, PrioritySampler


class TestBiasedReservoir:
    def test_capacity_is_inverse_lambda(self):
        assert BiasedReservoirSampler(0.01).capacity == 100
        assert BiasedReservoirSampler(1.0).capacity == 1

    def test_rejects_bad_lambda(self):
        for lam in (0.0, -0.5, 1.5):
            with pytest.raises(ParameterError):
                BiasedReservoirSampler(lam)

    def test_never_exceeds_capacity(self):
        s = BiasedReservoirSampler(0.05, seed=0)
        s.update_many(range(5000))
        assert len(s) <= s.capacity

    def test_bias_towards_recent(self):
        """Mean sampled value should be far above the uniform midpoint."""
        means = []
        for t in range(30):
            s = BiasedReservoirSampler(0.02, seed=t)
            s.update_many(range(10_000))
            means.append(sum(s.sample) / len(s.sample))
        avg = sum(means) / len(means)
        assert avg > 8_000  # uniform sampling would give ~5000

    def test_recency_weight_decays(self):
        s = BiasedReservoirSampler(0.1)
        assert s.recency_weight(0) == 1.0
        assert s.recency_weight(10) < s.recency_weight(1)

    def test_merge_bounded(self):
        a, b = BiasedReservoirSampler(0.1, seed=0), BiasedReservoirSampler(0.1, seed=1)
        a.update_many(range(100))
        b.update_many(range(100))
        a.merge(b)
        assert len(a) <= a.capacity
        assert a.count == 200


class TestChainSampler:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ChainSampler(0, 10)
        with pytest.raises(ParameterError):
            ChainSampler(1, 0)

    def test_sample_always_inside_window(self):
        s = ChainSampler(5, window=50, seed=0)
        for i in range(2000):
            s.update(i)
            if i >= 50 and i % 97 == 0:
                for x in s.sample:
                    assert i - 50 < x <= i, (i, x)

    def test_sample_roughly_uniform_over_window(self):
        """Average of samples across time ~ middle of the window."""
        total, n_obs = 0.0, 0
        for t in range(40):
            s = ChainSampler(1, window=100, seed=t)
            for i in range(1000):
                s.update(i)
            for x in s.sample:
                total += 999 - x  # age within [0, 100)
                n_obs += 1
        mean_age = total / n_obs
        assert 30 < mean_age < 70  # uniform over window -> ~49.5

    def test_merge_unsupported(self):
        a, b = ChainSampler(1, 10), ChainSampler(1, 10)
        with pytest.raises(NotImplementedError):
            a.merge(b)


class TestPrioritySampler:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            PrioritySampler(0, 1.0)
        with pytest.raises(ParameterError):
            PrioritySampler(1, 0.0)

    def test_timestamps_must_be_monotone(self):
        s = PrioritySampler(1, horizon=10.0)
        s.update_at("a", 5.0)
        with pytest.raises(ParameterError):
            s.update_at("b", 4.0)

    def test_sample_respects_horizon(self):
        s = PrioritySampler(3, horizon=10.0, seed=0)
        for t in range(100):
            s.update_at(f"e{t}", float(t))
        live = s.sample_at(99.0)
        assert live
        for item in live:
            assert int(item[1:]) > 89

    def test_memory_stays_logarithmic(self):
        s = PrioritySampler(2, horizon=1e9, seed=1)
        for t in range(5000):
            s.update_at(t, float(t))
        # Expected retained per replica is ~ harmonic(5000) ~ 9.1
        assert s.retained < 2 * 40

    def test_empty_window(self):
        s = PrioritySampler(2, horizon=1.0, seed=0)
        s.update_at("x", 0.0)
        assert s.sample_at(100.0) == []
