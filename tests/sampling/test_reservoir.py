"""Tests for uniform reservoir sampling (Algorithms R and L)."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import MergeError, ParameterError
from repro.sampling import AlgorithmLSampler, ReservoirSampler, union_sample


@pytest.fixture(params=[ReservoirSampler, AlgorithmLSampler])
def sampler_cls(request):
    return request.param


class TestBasics:
    def test_rejects_bad_k(self, sampler_cls):
        with pytest.raises(ParameterError):
            sampler_cls(0)

    def test_fills_up_to_k(self, sampler_cls):
        s = sampler_cls(10, seed=0)
        s.update_many(range(4))
        assert sorted(s.sample) == [0, 1, 2, 3]
        assert len(s) == 4

    def test_never_exceeds_k(self, sampler_cls):
        s = sampler_cls(5, seed=0)
        s.update_many(range(1000))
        assert len(s) == 5
        assert s.count == 1000

    def test_sample_is_subset_of_stream(self, sampler_cls):
        s = sampler_cls(7, seed=1)
        s.update_many(range(500))
        assert all(0 <= x < 500 for x in s.sample)
        assert len(set(s.sample)) == 7  # without replacement

    def test_deterministic_under_seed(self, sampler_cls):
        a, b = sampler_cls(5, seed=42), sampler_cls(5, seed=42)
        a.update_many(range(300))
        b.update_many(range(300))
        assert a.sample == b.sample


class TestUniformity:
    def test_inclusion_probability_uniform(self, sampler_cls):
        """Each of n elements should appear with probability ~ k/n."""
        n, k, trials = 40, 8, 1500
        hits = collections.Counter()
        for t in range(trials):
            s = sampler_cls(k, seed=t)
            s.update_many(range(n))
            hits.update(s.sample)
        expected = trials * k / n
        for x in range(n):
            assert 0.6 * expected < hits[x] < 1.4 * expected, (x, hits[x], expected)

    def test_algorithms_agree_in_distribution(self):
        """R and L should give the same mean inclusion rate for late items."""
        n, k, trials = 100, 10, 800
        late_hits = {"R": 0, "L": 0}
        for t in range(trials):
            r = ReservoirSampler(k, seed=t)
            l = AlgorithmLSampler(k, seed=t)
            r.update_many(range(n))
            l.update_many(range(n))
            late_hits["R"] += sum(1 for x in r.sample if x >= 90)
            late_hits["L"] += sum(1 for x in l.sample if x >= 90)
        # Expected late hits per trial: 10 * k/n = 1.0
        assert abs(late_hits["R"] / trials - 1.0) < 0.25
        assert abs(late_hits["L"] / trials - 1.0) < 0.25


class TestMerge:
    def test_merge_counts(self, sampler_cls):
        a, b = sampler_cls(6, seed=0), sampler_cls(6, seed=1)
        a.update_many(range(100))
        b.update_many(range(100, 300))
        a.merge(b)
        assert a.count == 300
        assert len(a) == 6

    def test_merge_draws_proportionally(self, sampler_cls):
        """Merging a 100-element and a 900-element partition: ~10% from A."""
        trials, from_a = 600, 0
        for t in range(trials):
            a, b = sampler_cls(10, seed=2 * t), sampler_cls(10, seed=2 * t + 1)
            a.update_many(range(100))
            b.update_many(range(100, 1000))
            a.merge(b)
            from_a += sum(1 for x in a.sample if x < 100)
        rate = from_a / (trials * 10)
        assert 0.05 < rate < 0.16

    def test_merge_key_mismatch(self, sampler_cls):
        with pytest.raises(MergeError):
            sampler_cls(5).merge(sampler_cls(6))

    def test_union_sample_helper(self, sampler_cls):
        parts = []
        for i in range(4):
            s = sampler_cls(8, seed=i)
            s.update_many(range(i * 100, (i + 1) * 100))
            parts.append(s)
        combined = union_sample(parts)
        assert combined.count == 400
        assert len(combined) == 8
        for part in parts:  # inputs untouched
            assert part.count == 100

    def test_union_sample_empty(self):
        with pytest.raises(MergeError):
            union_sample([])


@settings(max_examples=30)
@given(st.lists(st.integers(), max_size=200), st.integers(min_value=1, max_value=20))
def test_property_sample_always_subset(items, k):
    s = ReservoirSampler(k, seed=0)
    s.update_many(items)
    assert len(s) == min(k, len(items))
    bag = collections.Counter(items)
    assert not (collections.Counter(s.sample) - bag)
