"""Tests for weighted reservoir sampling (A-Res / A-ExpJ)."""

import collections

import pytest

from repro.common.exceptions import ParameterError
from repro.sampling import ExpJSampler, WeightedReservoirSampler


@pytest.fixture(params=[WeightedReservoirSampler, ExpJSampler])
def sampler_cls(request):
    return request.param


class TestWeighted:
    def test_rejects_nonpositive_weight(self, sampler_cls):
        s = sampler_cls(3)
        with pytest.raises(ParameterError):
            s.update_weighted("x", 0.0)
        with pytest.raises(ParameterError):
            s.update_weighted("x", -1.0)

    def test_unit_weight_update(self, sampler_cls):
        s = sampler_cls(5, seed=0)
        s.update_many("abcdefg")
        assert len(s) == 5
        assert s.count == 7

    def test_heavy_item_nearly_always_sampled(self, sampler_cls):
        """An item with 100x the weight of all others combined is ~always in."""
        hits = 0
        trials = 200
        for t in range(trials):
            s = sampler_cls(2, seed=t)
            for i in range(50):
                s.update_weighted(f"light{i}", 1.0)
            s.update_weighted("heavy", 5000.0)
            for i in range(50):
                s.update_weighted(f"light2-{i}", 1.0)
            hits += "heavy" in s.sample
        assert hits > trials * 0.95

    def test_weight_proportional_inclusion(self, sampler_cls):
        """With weights 4:1, the heavy item's inclusion rate dominates."""
        heavy_hits = light_hits = 0
        trials = 400
        for t in range(trials):
            s = sampler_cls(1, seed=t)
            s.update_weighted("heavy", 4.0)
            s.update_weighted("light", 1.0)
            heavy_hits += s.sample == ["heavy"]
            light_hits += s.sample == ["light"]
        assert heavy_hits + light_hits == trials
        rate = heavy_hits / trials
        assert 0.72 < rate < 0.88  # expected 0.8

    def test_merge_keeps_topk_keys(self, sampler_cls):
        a, b = sampler_cls(4, seed=0), sampler_cls(4, seed=1)
        for i in range(30):
            a.update_weighted(("a", i), 1.0)
            b.update_weighted(("b", i), 1.0)
        a.merge(b)
        assert len(a) == 4
        assert a.count == 60

    def test_merge_respects_weights(self, sampler_cls):
        """Merged sample should still favour the heavy partition."""
        hits = 0
        trials = 200
        for t in range(trials):
            a, b = sampler_cls(1, seed=2 * t), sampler_cls(1, seed=2 * t + 1)
            a.update_weighted("heavy", 1000.0)
            for i in range(20):
                b.update_weighted(f"light{i}", 1.0)
            a.merge(b)
            hits += a.sample == ["heavy"]
        assert hits > trials * 0.9


class TestExpJSpecifics:
    def test_expj_matches_ares_marginals(self):
        """A-ExpJ should reproduce A-Res inclusion rates on a skewed stream."""
        weights = [1.0] * 20 + [10.0] * 2
        items = [f"i{j}" for j in range(len(weights))]
        trials = 400

        def rate(cls):
            hits = collections.Counter()
            for t in range(trials):
                s = cls(3, seed=t + 7)
                for it, w in zip(items, weights):
                    s.update_weighted(it, w)
                hits.update(s.sample)
            return hits

        ares, expj = rate(WeightedReservoirSampler), rate(ExpJSampler)
        for it in ("i20", "i21", "i0"):
            assert abs(ares[it] - expj[it]) < trials * 0.12, (it, ares[it], expj[it])
