"""TraceSampler determinism, span recording, and tree reconstruction."""

import pytest

from repro.common.exceptions import ParameterError
from repro.obs.tracing import (
    SPAN_KINDS,
    Span,
    SpanCollector,
    TraceSampler,
    critical_path,
    next_span_id,
    span_stats,
)


class TestTraceSampler:
    def test_deterministic_across_instances(self):
        a = TraceSampler(rate=0.5, seed=13)
        b = TraceSampler(rate=0.5, seed=13)
        msg_ids = list(range(200))
        assert [a.sample(m) for m in msg_ids] == [b.sample(m) for m in msg_ids]

    def test_replay_resumes_same_trace(self):
        # the trace id is a pure function of (seed, msg_id): a replayed
        # tuple lands in the same trace as its first attempt
        s = TraceSampler(rate=1.0, seed=7)
        first = s.sample(42)
        replay = s.sample(42)
        assert first is not None
        assert first == replay

    def test_rate_zero_samples_nothing(self):
        s = TraceSampler(rate=0.0, seed=1)
        assert all(s.sample(m) is None for m in range(100))

    def test_rate_one_samples_everything(self):
        s = TraceSampler(rate=1.0, seed=1)
        assert all(s.sample(m) is not None for m in range(100))

    def test_rate_is_approximately_honoured(self):
        s = TraceSampler(rate=0.1, seed=3)
        hits = sum(1 for m in range(5000) if s.sample(m) is not None)
        assert 300 <= hits <= 700  # 10% +- wide slack

    def test_different_seeds_pick_different_subsets(self):
        a = TraceSampler(rate=0.2, seed=1)
        b = TraceSampler(rate=0.2, seed=2)
        picks_a = {m for m in range(1000) if a.sample(m) is not None}
        picks_b = {m for m in range(1000) if b.sample(m) is not None}
        assert picks_a != picks_b

    def test_invalid_rate_rejected(self):
        with pytest.raises(ParameterError):
            TraceSampler(rate=-0.1)
        with pytest.raises(ParameterError):
            TraceSampler(rate=1.5)


class TestSpanCollector:
    def _span(self, trace_id, span_id, parent_id=None, kind="process", **kw):
        return Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            component=kw.pop("component", "bolt:x"),
            kind=kind,
            start=kw.pop("start", 0.0),
            **kw,
        )

    def test_record_and_len(self):
        c = SpanCollector()
        c.record(self._span(1, 10, kind="spout_emit"))
        c.record(self._span(1, 11, parent_id=10))
        assert len(c) == 2
        assert c.trace_ids() == [1]

    def test_unknown_kind_rejected(self):
        c = SpanCollector()
        with pytest.raises(ParameterError):
            c.record(self._span(1, 10, kind="teleport"))

    def test_all_declared_kinds_accepted(self):
        c = SpanCollector()
        for i, kind in enumerate(SPAN_KINDS):
            c.record(self._span(1, 100 + i, kind=kind))
        assert len(c) == len(SPAN_KINDS)

    def test_traceless_spans_are_events(self):
        c = SpanCollector()
        c.record(
            Span(
                trace_id=None,
                span_id=next_span_id(),
                parent_id=None,
                component="executor",
                kind="checkpoint",
                start=0.0,
            )
        )
        assert len(c.events) == 1
        assert c.trace_ids() == []

    def test_tree_reconstruction(self):
        c = SpanCollector()
        c.record(
            self._span(5, 1, kind="spout_emit", component="spout:s")
        )
        c.record(self._span(5, 2, parent_id=1, component="bolt:a"))
        c.record(self._span(5, 3, parent_id=2, component="bolt:b"))
        c.record(self._span(5, 4, parent_id=1, kind="ack", component="acker"))
        root = c.tree(5)
        assert root.span.component == "spout:s"
        kids = {n.span.component for n in root.children}
        assert kids == {"bolt:a", "acker"}
        assert [n.span.component for n in root.walk()] == [
            "spout:s",
            "bolt:a",
            "bolt:b",
            "acker",
        ]

    def test_tree_final_attempt_by_default(self):
        c = SpanCollector()
        c.record(self._span(9, 1, kind="spout_emit", attempt=1))
        c.record(self._span(9, 2, parent_id=1, attempt=1))
        c.record(self._span(9, 3, kind="spout_emit", attempt=2))
        c.record(self._span(9, 4, parent_id=3, attempt=2))
        assert c.attempts(9) == 2
        final = c.tree(9)
        assert final.span.span_id == 3
        first = c.tree(9, attempt=1)
        assert first.span.span_id == 1

    def test_tree_unknown_trace_rejected(self):
        with pytest.raises(ParameterError):
            SpanCollector().tree(123)

    def test_to_records_roundtrips_as_dicts(self):
        c = SpanCollector()
        c.record(self._span(1, 10, kind="spout_emit"))
        (rec,) = c.to_records()
        assert rec["type"] == "span"
        assert rec["trace_id"] == 1
        assert rec["span_id"] == 10


class TestAnalysis:
    def test_critical_path_follows_slowest_child(self):
        c = SpanCollector()
        c.record(
            Span(
                trace_id=1,
                span_id=1,
                parent_id=None,
                component="spout:s",
                kind="spout_emit",
                start=0.0,
                duration=0.001,
            )
        )
        c.record(
            Span(
                trace_id=1,
                span_id=2,
                parent_id=1,
                component="bolt:fast",
                kind="process",
                start=0.0,
                duration=0.001,
            )
        )
        c.record(
            Span(
                trace_id=1,
                span_id=3,
                parent_id=1,
                component="bolt:slow",
                kind="process",
                start=0.0,
                duration=0.010,
            )
        )
        path = critical_path(c.tree(1))
        assert [s.component for s in path] == ["spout:s", "bolt:slow"]

    def test_span_stats_aggregates_per_component(self):
        spans = [
            Span(
                trace_id=1,
                span_id=i,
                parent_id=None,
                component="bolt:a",
                kind="process",
                start=0.0,
                duration=0.002,
                queue_wait=0.001,
                fan_out=2,
            )
            for i in range(3)
        ]
        stats = span_stats(spans)
        assert stats["bolt:a"]["hops"] == 3
        assert stats["bolt:a"]["process_s"] == pytest.approx(0.006)
        assert stats["bolt:a"]["queue_wait_s"] == pytest.approx(0.003)
        assert stats["bolt:a"]["fan_out"] == 6

    def test_span_stats_ignores_lifecycle_kinds(self):
        spans = [
            Span(
                trace_id=1,
                span_id=1,
                parent_id=None,
                component="acker",
                kind="ack",
                start=0.0,
            )
        ]
        assert span_stats(spans) == {}


class TestSpanIds:
    def test_ids_unique(self):
        ids = {next_span_id() for _ in range(1000)}
        assert len(ids) == 1000
