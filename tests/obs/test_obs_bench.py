"""The observability-overhead bench: schema-valid payload, sane overhead."""

import pytest

from repro.bench.obs import overhead_at_default_rate, run_obs_bench
from repro.bench.runner import validate_payload


@pytest.fixture(scope="module")
def payload():
    return run_obs_bench(n_items=600, repeats=1, seed=7, smoke=True)


class TestPayload:
    def test_schema_validates(self, payload):
        validate_payload(payload)  # raises on violation
        assert payload["schema"] == "repro.bench/v1"

    def test_three_rates_measured(self, payload):
        names = [r["synopsis"] for r in payload["results"]]
        assert len(names) == 3
        assert any("metrics" in n for n in names)
        assert any("trace@0.01" in n for n in names)
        assert any("trace@1" in n for n in names)

    def test_bare_and_instrumented_states_equal(self, payload):
        assert all(r["equivalent"] for r in payload["results"])

    def test_throughput_fields_positive(self, payload):
        for row in payload["results"]:
            assert row["seq_items_per_s"] > 0
            assert row["batch_items_per_s"] > 0
            assert row["speedup"] > 0

    def test_config_records_mode(self, payload):
        cfg = payload["config"]
        assert cfg["mode"] == "obs-overhead"
        assert cfg["smoke"] is True


class TestOverhead:
    def test_overhead_at_default_rate_extracted(self, payload):
        overhead = overhead_at_default_rate(payload)
        assert isinstance(overhead, float)
        # smoke workloads are noisy; just require it isn't catastrophic
        assert overhead > -0.9

    def test_missing_default_rate_rejected(self, payload):
        from repro.common.exceptions import ParameterError

        broken = dict(payload)
        broken["results"] = [
            r for r in payload["results"] if "trace@0.01" not in r["synopsis"]
        ]
        with pytest.raises(ParameterError):
            overhead_at_default_rate(broken)
