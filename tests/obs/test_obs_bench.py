"""The observability-overhead bench: schema-valid payload, sane overhead."""

import pytest

from repro.bench.obs import cluster_overhead, overhead_at_default_rate, run_obs_bench
from repro.bench.runner import validate_payload


@pytest.fixture(scope="module")
def payload():
    return run_obs_bench(n_items=600, repeats=1, seed=7, smoke=True)


class TestPayload:
    def test_schema_validates(self, payload):
        validate_payload(payload)  # raises on violation
        # v2 since the cluster telemetry rows carry extra columns
        assert payload["schema"] == "repro.bench/v2"

    def test_three_rates_measured(self, payload):
        names = [r["synopsis"] for r in payload["results"]]
        assert any("metrics" in n for n in names)
        assert any("trace@0.01" in n for n in names)
        assert any("trace@1" in n for n in names)

    def test_bare_and_instrumented_states_equal(self, payload):
        assert all(r["equivalent"] for r in payload["results"])

    def test_throughput_fields_positive(self, payload):
        for row in payload["results"]:
            assert row["seq_items_per_s"] > 0
            assert row["batch_items_per_s"] > 0
            assert row["speedup"] > 0

    def test_config_records_mode(self, payload):
        cfg = payload["config"]
        assert cfg["mode"] == "obs-overhead"
        assert cfg["smoke"] is True


class TestOverhead:
    def test_overhead_at_default_rate_extracted(self, payload):
        overhead = overhead_at_default_rate(payload)
        assert isinstance(overhead, float)
        # smoke workloads are noisy; just require it isn't catastrophic
        assert overhead > -0.9

    def test_missing_default_rate_rejected(self, payload):
        from repro.common.exceptions import ParameterError

        broken = dict(payload)
        broken["results"] = [
            r for r in payload["results"] if "trace@0.01" not in r["synopsis"]
        ]
        with pytest.raises(ParameterError):
            overhead_at_default_rate(broken)


class TestClusterRows:
    def test_cluster_row_present_with_v2_columns(self, payload):
        rows = [r for r in payload["results"] if "cluster_demo" in r["synopsis"]]
        assert rows, "no cluster telemetry rows in the payload"
        for row in rows:
            assert row["transport"] == "shm"
            assert row["n_workers"] == 2
            assert row["telemetry_interval"] > 0
            assert row["telemetry_flushes"] >= 2  # one forced flush/worker
            assert row["data_bytes_queue"] == 0  # shm plane stayed pickle-free

    def test_streaming_telemetry_preserves_state(self, payload):
        rows = [r for r in payload["results"] if "cluster_demo" in r["synopsis"]]
        assert all(r["equivalent"] for r in rows)

    def test_cluster_overhead_extracted(self, payload):
        overhead = cluster_overhead(payload)
        assert isinstance(overhead, float)
        # smoke workloads are noisy; just require it isn't catastrophic
        assert overhead > -0.9

    def test_missing_cluster_row_rejected(self, payload):
        from repro.common.exceptions import ParameterError

        broken = dict(payload)
        broken["results"] = [
            r for r in payload["results"] if "cluster_demo" not in r["synopsis"]
        ]
        with pytest.raises(ParameterError):
            cluster_overhead(broken)

    def test_cluster_rows_can_be_disabled(self):
        payload = run_obs_bench(
            n_items=200, repeats=1, seed=7, smoke=True, cluster=False
        )
        validate_payload(payload)
        assert not [
            r for r in payload["results"] if "cluster_demo" in r["synopsis"]
        ]
