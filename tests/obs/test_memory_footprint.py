"""Registry-wide check: every synopsis reports a positive memory footprint.

Satellite (b) of the obs PR: ``memory_footprint()`` — the hook the
instrumentation gauge reads — must return a positive int for every
registered synopsis, exercised both empty and after ingesting its
batch-equivalence workload.
"""

import random

import pytest

from tests.core.test_batch_equivalence import SPEC, _build

# Coverage of SPEC against the registry is already enforced by
# tests/core/test_batch_equivalence.py::test_spec_covers_every_registered_synopsis,
# so parametrising over SPEC here *is* registry-wide.


@pytest.mark.parametrize("name", sorted(SPEC))
def test_memory_footprint_positive_int_when_empty(name):
    syn = _build(name)
    mf = syn.memory_footprint()
    assert isinstance(mf, int), f"{name}: {type(mf)!r}"
    assert mf > 0, f"{name}: footprint {mf!r}"


@pytest.mark.parametrize("name", sorted(SPEC))
def test_memory_footprint_does_not_shrink_after_ingest(name):
    syn = _build(name)
    empty = syn.memory_footprint()
    __, workload = SPEC[name]
    syn.update_many(workload(200, random.Random(11)))
    mf = syn.memory_footprint()
    assert isinstance(mf, int), f"{name}: {type(mf)!r}"
    assert mf > 0, f"{name}: footprint {mf!r}"
    assert mf >= empty // 2, f"{name}: footprint collapsed {empty} -> {mf}"
