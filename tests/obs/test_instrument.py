"""InstrumentedSynopsis: call counting, batch sizes, memory gauge, merge."""

import pytest

from repro.frequency.count_min import CountMinSketch
from repro.cardinality.hyperloglog import HyperLogLog
from repro.obs.instrument import InstrumentedSynopsis
from repro.obs.metrics import MetricRegistry


def _cms():
    return CountMinSketch(width=64, depth=4)


class TestCallCounting:
    def test_update_counts(self):
        reg = MetricRegistry()
        inst = InstrumentedSynopsis(_cms(), registry=reg)
        inst.update("a")
        inst.update("b")
        assert inst.call_count("update") == 2

    def test_update_many_counts_calls_and_items(self):
        reg = MetricRegistry()
        inst = InstrumentedSynopsis(_cms(), registry=reg, name="cms")
        inst.update_many(["a", "b", "c"])
        assert inst.call_count("update_many") == 1
        items = reg.get("repro_synopsis_items_total").labels(synopsis="cms")
        assert items.value == 3

    def test_update_many_accepts_unsized_iterables(self):
        inst = InstrumentedSynopsis(_cms(), registry=MetricRegistry())
        inst.update_many(iter(["a", "b"]))
        assert inst.call_count("update_many") == 1
        assert inst.estimate("a") >= 1

    def test_batch_size_histogram(self):
        reg = MetricRegistry()
        inst = InstrumentedSynopsis(_cms(), registry=reg, name="cms")
        inst.update_many(["a"] * 10)
        inst.update_many(["b"] * 30)
        h = reg.get("repro_synopsis_batch_size").labels(synopsis="cms")
        assert h.count == 2
        assert h.sum == pytest.approx(40.0)

    def test_query_methods_counted(self):
        inst = InstrumentedSynopsis(_cms(), registry=MetricRegistry())
        inst.update("a")
        inst.estimate("a")
        inst.estimate("a")
        assert inst.call_count("query:estimate") == 2

    def test_results_delegate_to_inner(self):
        inner = _cms()
        inst = InstrumentedSynopsis(inner, registry=MetricRegistry())
        inst.update_many(["x", "x", "y"])
        assert inst.estimate("x") == inner.estimate("x") >= 2


class TestMemoryGauge:
    def test_gauge_reads_live_footprint(self):
        reg = MetricRegistry()
        inst = InstrumentedSynopsis(HyperLogLog(precision=8), registry=reg, name="hll")
        g = reg.get("repro_synopsis_memory_bytes").labels(synopsis="hll")
        v = g.value
        assert isinstance(v, (int, float))
        assert v > 0
        assert v == inst.memory_footprint()

    def test_memory_footprint_positive_int(self):
        inst = InstrumentedSynopsis(_cms(), registry=MetricRegistry())
        mf = inst.memory_footprint()
        assert isinstance(mf, int)
        assert mf > 0


class TestMerge:
    def test_merge_counts_and_merges(self):
        reg = MetricRegistry()
        a = InstrumentedSynopsis(_cms(), registry=reg, name="a")
        b = _cms()
        b.update_many(["z"] * 5)
        a.merge(b)
        assert a.call_count("merge") == 1
        assert a.estimate("z") >= 5

    def test_merge_unwraps_instrumented_peer(self):
        reg = MetricRegistry()
        a = InstrumentedSynopsis(_cms(), registry=reg, name="a")
        b = InstrumentedSynopsis(_cms(), registry=reg, name="b")
        b.update_many(["w"] * 4)
        a.merge(b)  # must not explode on the wrapper type
        assert a.estimate("w") >= 4


class TestConvenience:
    def test_synopsis_base_instrumented_helper(self):
        reg = MetricRegistry()
        inst = _cms().instrumented(registry=reg, name="via_helper")
        assert isinstance(inst, InstrumentedSynopsis)
        inst.update("q")
        assert inst.call_count("update") == 1

    def test_default_name_from_class(self):
        reg = MetricRegistry()
        inst = InstrumentedSynopsis(_cms(), registry=reg)
        inst.update("a")
        samples = [
            s
            for s in reg.get("repro_synopsis_calls_total").samples()
            if s.labels_dict()["op"] == "update"
        ]
        (sample,) = samples
        assert sample.labels_dict()["synopsis"] == "countminsketch"
        assert sample.value == 1

    def test_len_and_getitem_delegate(self):
        from repro.frequency.space_saving import SpaceSaving

        inner = SpaceSaving(k=8)
        inst = InstrumentedSynopsis(inner, registry=MetricRegistry())
        inst.update_many(["a", "a", "b"])
        assert len(inst) == len(inner)
