"""Flight recorder: bounded rings, dump layout, read-back round-trip."""

from repro.obs.flight import FLIGHT_FORMAT, FlightRecorder, read_flight
from repro.obs.health import HealthMonitor
from repro.obs.tracing import Span


def make_snapshot(seq_hint=0):
    monitor = HealthMonitor(n_workers=1, operators={"split": ("bolt", (0,))})
    monitor.set_source_frontier(seq_hint)
    return monitor.snapshot()


def make_span(span_id):
    return Span(
        trace_id=1, span_id=span_id, parent_id=None, component="split", kind="process"
    )


class TestBounds:
    def test_snapshot_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record_snapshot(make_snapshot(i))
        assert len(flight.snapshots) == 4
        # Oldest fell off: the survivors are the four most recent.
        assert flight.last_snapshot.source_frontier == 9.0
        assert flight.snapshots[0].source_frontier == 6.0

    def test_span_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4, span_capacity=8)
        for i in range(20):
            flight.record_span(make_span(i))
        assert len(flight.spans) == 8
        assert flight.spans[-1].span_id == 19

    def test_empty_recorder(self):
        flight = FlightRecorder()
        assert flight.last_snapshot is None
        assert flight.to_records()[0]["snapshots"] == 0


class TestDump:
    def test_dump_and_read_round_trip(self, tmp_path):
        flight = FlightRecorder()
        flight.record_snapshot(make_snapshot(5))
        flight.record_event("crash", {"workers": [1], "epoch": 2})
        flight.record_span(make_span(7))
        path = flight.dump(tmp_path / "flight.jsonl", reason="crash")
        records = read_flight(path)
        header, body = records[0], records[1:]
        assert header["type"] == "flight_header"
        assert header["format"] == FLIGHT_FORMAT
        assert header["reason"] == "crash"
        assert header["snapshots"] == 1
        assert header["events"] == 1
        assert header["spans"] == 1
        assert [r["type"] for r in body] == ["health", "event", "span"]

    def test_dump_is_stream_filterable(self, tmp_path):
        flight = FlightRecorder()
        for i in range(3):
            flight.record_snapshot(make_snapshot(i))
        flight.record_event("mismatch", {"bolt": "sketch"})
        records = read_flight(flight.dump(tmp_path / "f.jsonl"))
        health = [r for r in records if r["type"] == "health"]
        assert [h["source_frontier"] for h in health] == [0.0, 1.0, 2.0]
        (event,) = [r for r in records if r["type"] == "event"]
        assert event["kind"] == "mismatch"
        assert event["detail"] == {"bolt": "sketch"}

    def test_event_clock_recorded(self):
        flight = FlightRecorder()
        flight.record_event("rollback")
        assert flight.events[0]["clock"] > 0
