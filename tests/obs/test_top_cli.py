"""``repro-obs top``: health-log tailing, one-shot rendering, demo mode."""

import json

from repro.obs.cli import build_top_parser, latest_snapshot, main, top_main
from repro.obs.health import HealthMonitor
from repro.obs.report import render_top


def write_log(path, n=3):
    monitor = HealthMonitor(
        n_workers=2,
        operators={"words": ("spout", ()), "split": ("bolt", (0, 1))},
    )
    lines = []
    for i in range(1, n + 1):
        monitor.set_source_frontier(i * 100)
        monitor.record_flush(0, i, {"split": i * 90.0})
        monitor.record_flush(1, i, {"split": i * 95.0})
        lines.append(json.dumps(monitor.snapshot().to_dict()))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return monitor


class TestLatestSnapshot:
    def test_reads_last_line(self, tmp_path):
        log = tmp_path / "health.jsonl"
        write_log(log, n=3)
        snapshot = latest_snapshot(log)
        assert snapshot.seq == 3
        assert snapshot.source_frontier == 300.0

    def test_missing_file(self, tmp_path):
        assert latest_snapshot(tmp_path / "nope.jsonl") is None

    def test_empty_file(self, tmp_path):
        log = tmp_path / "health.jsonl"
        log.write_text("", encoding="utf-8")
        assert latest_snapshot(log) is None


class TestRenderTop:
    def test_tables_render(self, tmp_path):
        log = tmp_path / "health.jsonl"
        write_log(log)
        out = render_top(latest_snapshot(log))
        assert "== cluster health" in out
        assert "worker" in out and "operator" in out
        assert "split" in out and "words" in out
        assert "watermark" in out


class TestTopMain:
    def test_once_renders_latest(self, tmp_path, capsys):
        log = tmp_path / "health.jsonl"
        write_log(log, n=2)
        rc = top_main(["--snapshots", str(log), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== cluster health  seq 2" in out

    def test_once_empty_log_fails(self, tmp_path, capsys):
        log = tmp_path / "health.jsonl"
        log.write_text("", encoding="utf-8")
        rc = top_main(["--snapshots", str(log), "--once"])
        assert rc == 1

    def test_no_source_is_usage_error(self, capsys):
        assert top_main([]) == 2
        assert "--snapshots" in capsys.readouterr().err

    def test_dispatch_from_main(self, tmp_path, capsys):
        log = tmp_path / "health.jsonl"
        write_log(log)
        rc = main(["top", "--snapshots", str(log), "--once"])
        assert rc == 0
        assert "cluster health" in capsys.readouterr().out

    def test_demo_once_end_to_end(self, capsys):
        # The CI artifact mode: a short demo cluster run, then one render
        # of its final health snapshot.
        rc = top_main(
            ["--demo", "--records", "400", "--interval", "0.02", "--once"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== cluster health" in out
        assert "split" in out


class TestTopParser:
    def test_defaults(self):
        args = build_top_parser().parse_args([])
        assert args.snapshots is None
        assert not args.demo
        assert args.interval == 0.25
        assert not args.once
