"""JSON-lines export and Prometheus v0 exposition round-trips."""

import json

from repro.obs.exporters import (
    metric_records,
    parse_prometheus,
    read_jsonl,
    registry_as_samples,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.tracing import Span, SpanCollector


def _populated_registry():
    reg = MetricRegistry()
    reg.counter("events_total", labelnames=("component",)).labels(
        component="spout"
    ).inc(17)
    reg.gauge("depth").set(3.5)
    h = reg.histogram("lat_seconds")
    for v in (0.001, 0.002, 0.004):
        h.observe(v)
    return reg


class TestJsonl:
    def test_metric_records_shape(self):
        recs = metric_records(_populated_registry())
        assert all(r["type"] == "metric" for r in recs)
        names = {r["name"] for r in recs}
        assert "events_total" in names
        assert "lat_seconds_count" in names

    def test_to_jsonl_parses_line_by_line(self):
        text = to_jsonl(_populated_registry())
        lines = [json.loads(line) for line in text.splitlines()]
        assert lines
        assert all("type" in rec for rec in lines)

    def test_spans_included_when_collector_given(self):
        collector = SpanCollector()
        collector.record(
            Span(
                trace_id=1,
                span_id=2,
                parent_id=None,
                component="spout:s",
                kind="spout_emit",
                start=0.0,
            )
        )
        text = to_jsonl(_populated_registry(), collector)
        kinds = {json.loads(line)["type"] for line in text.splitlines()}
        assert kinds == {"metric", "span"}

    def test_write_and_read_roundtrip(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "out.jsonl"
        write_jsonl(path, reg)
        recs = read_jsonl(path.read_text())
        assert recs == read_jsonl(to_jsonl(reg))


class TestPrometheus:
    def test_help_and_type_lines(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE events_total counter" in text
        assert "# TYPE depth gauge" in text
        # TDigest histograms are exposed as summaries (quantile labels)
        assert "# TYPE lat_seconds summary" in text

    def test_round_trip_matches_registry(self):
        reg = _populated_registry()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed == registry_as_samples(reg)

    def test_label_escaping_survives_round_trip(self):
        reg = MetricRegistry()
        reg.counter("odd_total", labelnames=("path",)).labels(
            path='a"b\\c\nd'
        ).inc(2)
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed == registry_as_samples(reg)
        (key,) = parsed
        name, labels = key
        assert name == "odd_total"
        assert dict(labels)["path"] == 'a"b\\c\nd'

    def test_integral_values_render_exactly(self):
        reg = MetricRegistry()
        reg.counter("n_total").inc(3)
        text = to_prometheus(reg)
        assert "n_total 3" in text.splitlines()

    def test_jsonl_and_prometheus_agree(self):
        # the acceptance criterion: both exporters report the same values
        reg = _populated_registry()
        prom = parse_prometheus(to_prometheus(reg))
        jsonl = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in metric_records(reg)
        }
        assert prom == jsonl
