"""The metric registry: instruments, labels, collection, no-op defaults."""

import pytest

from repro.common.exceptions import ParameterError
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    get_default_registry,
    set_default_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricRegistry()
        c = reg.counter("events_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        c = MetricRegistry().counter("x_total")
        with pytest.raises(ParameterError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        reg = MetricRegistry()
        c = reg.counter("hops_total", labelnames=("component",))
        c.labels(component="a").inc(2)
        c.labels(component="b").inc(5)
        assert c.labels(component="a").value == 2
        assert c.labels(component="b").value == 5

    def test_labels_must_match_declaration(self):
        c = MetricRegistry().counter("hops_total", labelnames=("component",))
        with pytest.raises(ParameterError):
            c.labels(task="0")
        with pytest.raises(ParameterError):
            c.inc()  # labeled family has no default child

    def test_samples(self):
        reg = MetricRegistry()
        c = reg.counter("hops_total", labelnames=("component",))
        c.labels(component="a").inc(3)
        (sample,) = c.samples()
        assert sample.name == "hops_total"
        assert sample.labels_dict() == {"component": "a"}
        assert sample.value == 3


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_callback_gauge_reads_live(self):
        state = {"v": 1}
        g = MetricRegistry().gauge("live")
        g.set_function(lambda: state["v"])
        assert g.value == 1
        state["v"] = 7
        assert g.value == 7


class TestHistogram:
    def test_count_sum_quantile(self):
        h = MetricRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == pytest.approx(5050.0)
        assert 40 <= h.quantile(0.5) <= 60

    def test_empty_quantile_is_zero(self):
        assert MetricRegistry().histogram("lat").quantile(0.99) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ParameterError):
            MetricRegistry().histogram("lat").observe(float("nan"))

    def test_samples_include_count_sum_quantiles(self):
        h = MetricRegistry().histogram("lat")
        h.observe(1.0)
        names = {s.name for s in h.samples()}
        assert names == {"lat", "lat_count", "lat_sum"}
        quantiles = {
            s.labels_dict().get("quantile") for s in h.samples() if s.name == "lat"
        }
        assert quantiles == {"0.5", "0.9", "0.99"}


class TestRegistry:
    def test_get_or_create_shares_family(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("x_total")
        with pytest.raises(ParameterError):
            reg.gauge("x_total")

    def test_labelnames_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ParameterError):
            reg.counter("x_total", labelnames=("b",))

    def test_invalid_names_rejected(self):
        reg = MetricRegistry()
        with pytest.raises(ParameterError):
            reg.counter("0bad")
        with pytest.raises(ParameterError):
            reg.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(ParameterError):
            reg.counter("ok_total2", labelnames=("a", "a"))

    def test_collect_is_stable_sorted(self):
        reg = MetricRegistry()
        reg.counter("b_total").inc()
        reg.gauge("a").set(2)
        assert [s.name for s in reg.collect()] == ["a", "b_total"]

    def test_instrument_classes_exported(self):
        reg = MetricRegistry()
        assert isinstance(reg.counter("c_total"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)


class TestNullRegistry:
    def test_all_verbs_are_noops(self):
        c = NULL_REGISTRY.counter("x_total")
        g = NULL_REGISTRY.gauge("g", labelnames=("a",))
        h = NULL_REGISTRY.histogram("h")
        c.inc()
        g.labels(a="1").set(5)
        h.observe(3.0)
        assert c.value == 0
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert NULL_REGISTRY.collect() == []


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        original = get_default_registry()
        fresh = MetricRegistry()
        previous = set_default_registry(fresh)
        try:
            assert previous is original
            assert get_default_registry() is fresh
        finally:
            set_default_registry(original)
        assert get_default_registry() is original
