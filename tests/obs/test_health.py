"""HealthMonitor + HealthSnapshot: watermarks, lag, rates, round-trip,
and the crash-staleness pin — all under a fake clock."""

import pytest

from repro.obs.health import HEALTH_SCHEMA, HealthMonitor, HealthSnapshot


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


OPERATORS = {
    "words": ("spout", ()),
    "split": ("bolt", (0, 1)),
    "count": ("bolt", (0, 1)),
}


def make_monitor(clock=None, **kwargs):
    return HealthMonitor(
        n_workers=2,
        operators=OPERATORS,
        clock=clock or FakeClock(),
        **kwargs,
    )


class TestWatermarks:
    def test_bolt_watermark_is_min_across_owners(self):
        monitor = make_monitor()
        monitor.set_source_frontier(100)
        monitor.record_flush(0, 1, {"split": 80.0, "count": 60.0})
        monitor.record_flush(1, 1, {"split": 90.0, "count": 75.0})
        snap = monitor.snapshot()
        assert snap.operator("split").watermark == 80.0
        assert snap.operator("count").watermark == 60.0
        assert snap.operator("count").lag == 40.0

    def test_spout_watermark_is_source_frontier(self):
        monitor = make_monitor()
        monitor.set_source_frontier(55)
        snap = monitor.snapshot()
        assert snap.operator("words").watermark == 55.0
        assert snap.operator("words").lag == 0.0

    def test_silent_owner_pins_watermark_to_zero(self):
        monitor = make_monitor()
        monitor.set_source_frontier(100)
        monitor.record_flush(0, 1, {"split": 80.0})
        snap = monitor.snapshot()  # worker 1 never flushed
        assert snap.operator("split").watermark == 0.0
        assert snap.operator("split").lag == 100.0
        assert snap.max_lag() == 100.0

    def test_source_frontier_is_monotone(self):
        monitor = make_monitor()
        monitor.set_source_frontier(100)
        monitor.set_source_frontier(40)  # late/replayed root must not rewind
        assert monitor.snapshot().source_frontier == 100.0

    def test_event_time_unit_uses_event_frontiers(self):
        monitor = make_monitor(watermark_unit="event_time")
        monitor.set_source_frontier(1_000.5)
        monitor.record_flush(
            0, 1, {"split": 10.0}, event_frontier={"split": 990.25}
        )
        monitor.record_flush(
            1, 1, {"split": 11.0}, event_frontier={"split": 995.75}
        )
        snap = monitor.snapshot()
        assert snap.watermark_unit == "event_time"
        assert snap.operator("split").watermark == 990.25
        assert snap.operator("split").lag == pytest.approx(10.25)


class TestRatesAndAges:
    def test_processed_rate_from_consecutive_snapshots(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock)
        monitor.snapshot(counts={"split": (100, 100)})
        clock.advance(2.0)
        snap = monitor.snapshot(counts={"split": (500, 500)})
        assert snap.operator("split").processed_rate == 200.0

    def test_telemetry_age_tracks_clock(self):
        clock = FakeClock()
        monitor = make_monitor(clock=clock)
        monitor.record_flush(0, 3, {})
        clock.advance(0.4)
        snap = monitor.snapshot()
        assert snap.worker(0).telemetry_age_s == pytest.approx(0.4)
        assert snap.worker(0).telemetry_seq == 3
        assert snap.worker(1).telemetry_age_s == -1.0  # never heard from

    def test_ring_occupancy(self):
        monitor = make_monitor(ring_capacity=1000)
        monitor.set_worker_io(0, alive=True, ring_in_used=250, ring_out_used=900)
        snap = monitor.snapshot()
        assert snap.worker(0).ring_in_occupancy == 0.25
        assert snap.worker(0).ring_out_occupancy == 0.9
        assert snap.max_ring_occupancy() == 0.9


class TestRespawn:
    def test_respawn_bumps_incarnation_and_drops_frontier(self):
        monitor = make_monitor()
        monitor.set_source_frontier(100)
        monitor.record_flush(0, 5, {"split": 80.0})
        monitor.record_flush(1, 5, {"split": 90.0})
        monitor.note_respawn(0)
        snap = monitor.snapshot()
        assert snap.worker(0).incarnation == 1
        assert snap.worker(0).telemetry_seq == 0
        # The watermark correctly regresses until replay catches up.
        assert snap.operator("split").watermark == 0.0
        monitor.record_flush(0, 1, {"split": 85.0})
        assert monitor.snapshot().operator("split").watermark == 85.0

    def test_flush_count_survives_respawn(self):
        monitor = make_monitor()
        monitor.record_flush(0, 1, {})
        monitor.note_respawn(0)
        monitor.record_flush(0, 1, {})
        assert monitor.snapshot().worker(0).flushes == 2


class TestCrashStalenessPin:
    def test_final_snapshot_precedes_crash_by_at_most_one_interval(self):
        # The flight-recorder guarantee, pinned deterministically: with
        # workers flushing every `interval`, the snapshot buffered at
        # crash time is at most `interval` old. Simulate flush ticks on a
        # fake clock and check the age at an arbitrary crash instant.
        interval = 0.25
        clock = FakeClock()
        monitor = make_monitor(clock=clock)
        for tick in range(1, 9):
            monitor.record_flush(0, tick, {"split": float(tick * 10)})
            monitor.record_flush(1, tick, {"split": float(tick * 10)})
            monitor.snapshot()
            clock.advance(interval)
        clock.advance(0.11)  # crash strikes mid-interval
        crash_age = clock() - monitor.last_snapshot.clock
        assert 0.0 <= crash_age <= interval + 0.11
        crash_snap = monitor.snapshot(reason="crash")
        # Every worker's last flush is within one interval of the crash.
        for worker in crash_snap.workers:
            assert worker.telemetry_age_s <= interval + 0.11


class TestSnapshotSchema:
    def test_round_trip(self):
        monitor = make_monitor(ring_capacity=512)
        monitor.set_source_frontier(42)
        monitor.record_flush(0, 2, {"split": 30.0}, processed_total=123)
        snap = monitor.snapshot(
            reason="query",
            counts={"split": (10, 20)},
            backpressure_waits=3,
            latency_p50_s=0.001,
            latency_p99_s=0.05,
        )
        data = snap.to_dict()
        assert data["schema"] == HEALTH_SCHEMA
        rebuilt = HealthSnapshot.from_dict(data)
        assert rebuilt == snap

    def test_lookup_helpers(self):
        snap = make_monitor().snapshot()
        assert snap.worker(99) is None
        assert snap.operator("nope") is None
