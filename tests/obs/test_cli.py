"""The ``repro-obs`` console entry point."""

import json

from repro.obs.cli import build_parser, main
from repro.obs.exporters import parse_prometheus


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.sample_rate == 0.1
        assert args.export is None
        assert args.prom is None

    def test_flags(self):
        args = build_parser().parse_args(
            ["--records", "100", "--sample-rate", "1.0", "--crash-after", "50"]
        )
        assert args.records == 100
        assert args.sample_rate == 1.0
        assert args.crash_after == 50


class TestMain:
    def test_runs_and_writes_exports(self, tmp_path, capsys):
        jsonl = tmp_path / "obs.jsonl"
        prom = tmp_path / "obs.prom"
        rc = main(
            [
                "--records",
                "80",
                "--sample-rate",
                "1.0",
                "--export",
                str(jsonl),
                "--prom",
                str(prom),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== run summary ==" in out
        assert "== components ==" in out

        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        kinds = {r["type"] for r in records}
        assert kinds == {"metric", "span"}

        samples = parse_prometheus(prom.read_text())
        assert samples  # parses back to at least one sample

    def test_exporters_agree_on_values(self, tmp_path):
        jsonl = tmp_path / "obs.jsonl"
        prom = tmp_path / "obs.prom"
        main(
            [
                "--records",
                "60",
                "--sample-rate",
                "0.5",
                "--export",
                str(jsonl),
                "--prom",
                str(prom),
            ]
        )
        from_prom = parse_prometheus(prom.read_text())
        from_jsonl = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in map(json.loads, jsonl.read_text().splitlines())
            if r["type"] == "metric"
        }
        assert from_prom == from_jsonl

    def test_crash_run_reports_recovery(self, capsys):
        rc = main(
            [
                "--records",
                "200",
                "--sample-rate",
                "1.0",
                "--semantics",
                "exactly_once",
                "--crash-after",
                "120",
                "--checkpoint-interval",
                "50",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recover" in out.lower() or "lifecycle" in out.lower()
