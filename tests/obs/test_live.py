"""Delta telemetry: change-only export, replace-semantics absorption,
bit-identical tail quantiles, and seal-on-respawn accounting."""

import random

from repro.obs.live import DEFAULT_FLUSH_INTERVAL, DeltaExporter, TelemetryAbsorber
from repro.obs.metrics import MetricRegistry
from repro.obs.tracing import Span, SpanCollector


def make_span(span_id, component="split"):
    return Span(
        trace_id=1, span_id=span_id, parent_id=None, component=component, kind="process"
    )


class TestDeltaExporter:
    def test_first_collect_ships_everything(self):
        reg = MetricRegistry()
        reg.counter("a_total").inc(3)
        reg.gauge("b").set(7)
        reg.histogram("c_seconds").observe(0.5)
        exporter = DeltaExporter(reg)
        records = exporter.collect()
        assert {r["name"] for r in records} == {"a_total", "b", "c_seconds"}
        assert exporter.seq == 1

    def test_unchanged_children_are_suppressed(self):
        reg = MetricRegistry()
        counter = reg.counter("a_total")
        counter.inc(3)
        reg.gauge("b").set(7)
        exporter = DeltaExporter(reg)
        exporter.collect()
        assert exporter.collect() == []  # nothing moved
        counter.inc()
        records = exporter.collect()
        assert [r["name"] for r in records] == ["a_total"]
        assert records[0]["value"] == 4  # cumulative, not a diff
        assert exporter.seq == 3

    def test_per_label_granularity(self):
        reg = MetricRegistry()
        family = reg.counter("a_total", labelnames=["op"])
        family.labels(op="x").inc()
        family.labels(op="y").inc()
        exporter = DeltaExporter(reg)
        exporter.collect()
        family.labels(op="y").inc()
        records = exporter.collect()
        assert [r["labels"] for r in records] == [{"op": "y"}]

    def test_histogram_ships_full_digest_bytes(self):
        reg = MetricRegistry()
        hist = reg.histogram("lat_seconds")
        hist.observe(1.0)
        exporter = DeltaExporter(reg)
        first = exporter.collect()[0]
        hist.observe(2.0)
        second = exporter.collect()[0]
        assert second["count"] == 2  # cumulative digest, not the delta
        assert isinstance(second["digest"], bytes)
        assert len(second["digest"]) >= len(first["digest"])


class TestTelemetryAbsorber:
    def test_counter_replace_semantics(self):
        source, target = MetricRegistry(), MetricRegistry()
        counter = source.counter("a_total")
        exporter, absorber = DeltaExporter(source), TelemetryAbsorber(target)
        counter.inc(5)
        absorber.absorb(0, exporter.collect())
        counter.inc(5)
        absorber.absorb(0, exporter.collect())
        # Accumulate semantics would read 15 here; replace reads the truth.
        assert target.counter("a_total", labelnames=["worker"]).labels(
            worker="0"
        ).value == 10
        assert absorber.flushes == {0: 2}

    def test_absorbing_same_flush_twice_is_idempotent(self):
        source, target = MetricRegistry(), MetricRegistry()
        source.counter("a_total").inc(5)
        absorber = TelemetryAbsorber(target)
        records = DeltaExporter(source).collect()
        absorber.absorb(1, records)
        absorber.absorb(1, records)
        assert target.counter("a_total", labelnames=["worker"]).labels(
            worker="1"
        ).value == 5

    def test_tail_quantiles_bit_identical_across_flushes(self):
        # The satellite-4 pin: after each of >= 3 flush intervals the
        # coordinator's per-worker histogram quantiles equal the worker's
        # own exactly (replace + from_bytes/to_bytes round-trip), at every
        # probed q including the tails.
        rng = random.Random(42)
        source, target = MetricRegistry(), MetricRegistry()
        hist = source.histogram("lat_seconds")
        exporter, absorber = DeltaExporter(source), TelemetryAbsorber(target)
        mirror = target.histogram("lat_seconds", labelnames=["worker"]).labels(
            worker="0"
        )
        for __ in range(4):
            for __ in range(500):
                hist.observe(rng.expovariate(1.0))
            absorber.absorb(0, exporter.collect())
            assert mirror.count == hist.count
            assert mirror.sum == hist.sum
            for q in (0.01, 0.5, 0.9, 0.99, 0.999):
                assert mirror.quantile(q) == hist.quantile(q)

    def test_spans_ride_flushes(self):
        collector = SpanCollector()
        absorber = TelemetryAbsorber(MetricRegistry(), collector)
        absorber.absorb(0, [], spans=[make_span(1), make_span(2)])
        absorber.absorb_spans_only([make_span(3)])
        assert len(collector.spans) == 3


class TestSealOnRespawn:
    def run_incarnations(self, absorber, target):
        # Incarnation 0 does 10 units of work across two flushes, dies,
        # incarnation 1 starts from zero and does 7 more.
        source = MetricRegistry()
        counter = source.counter("done_total")
        hist = source.histogram("lat_seconds")
        exporter = DeltaExporter(source)
        counter.inc(4)
        hist.observe(1.0)
        absorber.absorb(0, exporter.collect())
        counter.inc(6)
        hist.observe(3.0)
        absorber.absorb(0, exporter.collect())
        absorber.seal_worker(0)

        respawned = MetricRegistry()
        counter2 = respawned.counter("done_total")
        hist2 = respawned.histogram("lat_seconds")
        exporter2 = DeltaExporter(respawned)
        counter2.inc(7)
        hist2.observe(5.0)
        absorber.absorb(0, exporter2.collect())

    def test_counter_base_stacks_incarnations(self):
        target = MetricRegistry()
        absorber = TelemetryAbsorber(target)
        self.run_incarnations(absorber, target)
        child = target.counter("done_total", labelnames=["worker"]).labels(worker="0")
        assert child.value == 17  # 10 sealed + 7 fresh, no double count

    def test_histogram_base_merges_incarnations(self):
        target = MetricRegistry()
        absorber = TelemetryAbsorber(target)
        self.run_incarnations(absorber, target)
        child = target.histogram("lat_seconds", labelnames=["worker"]).labels(
            worker="0"
        )
        assert child.count == 3
        assert child.sum == 9.0

    def test_stale_incarnation_flush_keeps_spans_only(self):
        # The span-loss fix path: a flush raced from a dead pid still
        # contributes its spans, while the sealed base covers its metrics.
        collector = SpanCollector()
        target = MetricRegistry()
        absorber = TelemetryAbsorber(target, collector)
        source = MetricRegistry()
        source.counter("done_total").inc(4)
        absorber.absorb(0, DeltaExporter(source).collect())
        absorber.seal_worker(0)
        absorber.absorb_spans_only([make_span(9)])
        assert [s.span_id for s in collector.spans] == [9]
        child = target.counter("done_total", labelnames=["worker"]).labels(worker="0")
        assert child.value == 4  # untouched by the stale flush


def test_default_interval_is_sane():
    assert 0.0 < DEFAULT_FLUSH_INTERVAL <= 1.0
