"""End-to-end tracing through LocalExecutor: span trees, recovery, façade."""

import pytest

from repro.obs.context import Observability
from repro.obs.demo import run_demo
from repro.obs.report import render_report, render_trace_tree
from repro.obs.tracing import critical_path, span_stats
from repro.platform.faults import FaultInjector


def _run(sample_rate=1.0, n_records=120, **kw):
    return run_demo(n_records=n_records, sample_rate=sample_rate, **kw)


class TestSpanTrees:
    def test_traced_tuple_yields_full_tree(self):
        executor, obs = _run(sample_rate=1.0, n_records=60)
        trace_ids = obs.collector.trace_ids()
        assert len(trace_ids) == 60  # every spout tuple sampled
        root = obs.collector.tree(trace_ids[0])
        components = [n.span.component for n in root.walk()]
        assert root.span.kind == "spout_emit"
        assert components[0] == "spout:sentences"
        assert any(c.startswith("bolt:split") for c in components)
        assert any(c.startswith("bolt:count") for c in components)
        assert any(c.startswith("bolt:sketch") for c in components)
        assert "acker" in components

    def test_queue_wait_and_process_time_recorded(self):
        __, obs = _run(sample_rate=1.0, n_records=40)
        process_spans = [
            s
            for t in obs.collector.trace_ids()
            for s in obs.collector.spans_for(t)
            if s.kind == "process"
        ]
        assert process_spans
        assert all(s.duration >= 0.0 for s in process_spans)
        assert all(s.queue_wait >= 0.0 for s in process_spans)
        assert any(s.queue_wait > 0.0 for s in process_spans)

    def test_fan_out_recorded_on_spout_and_split(self):
        __, obs = _run(sample_rate=1.0, n_records=30)
        tid = obs.collector.trace_ids()[0]
        root = obs.collector.tree(tid)
        # the spout emits one tuple downstream; split fans out one per word
        assert root.span.fan_out >= 1
        split = next(
            n for n in root.walk() if n.span.component.startswith("bolt:split")
        )
        assert split.span.fan_out >= 1

    def test_sampling_rate_zero_records_nothing(self):
        __, obs = _run(sample_rate=0.0, n_records=50)
        assert obs.collector.trace_ids() == []

    def test_sampling_is_partial_at_fractional_rate(self):
        __, obs = _run(sample_rate=0.2, n_records=200)
        n = len(obs.collector.trace_ids())
        assert 0 < n < 200

    def test_critical_path_spans_spout_to_leaf(self):
        __, obs = _run(sample_rate=1.0, n_records=30)
        tid = obs.collector.trace_ids()[0]
        path = critical_path(obs.collector.tree(tid))
        assert path[0].component == "spout:sentences"
        assert len(path) >= 2

    def test_span_stats_cover_all_components(self):
        __, obs = _run(sample_rate=1.0, n_records=30)
        spans = [
            s
            for t in obs.collector.trace_ids()
            for s in obs.collector.spans_for(t)
        ]
        stats = span_stats(spans)
        assert any(c.startswith("bolt:") for c in stats)
        assert all(v["hops"] > 0 for v in stats.values())


class TestCrashRecovery:
    def test_trace_survives_injected_crash(self):
        # the acceptance criterion: a traced tuple's tree survives at
        # least one injected crash/recovery end-to-end
        executor, obs = _run(
            sample_rate=1.0,
            n_records=200,
            semantics="exactly_once",
            crash_after=120,
            checkpoint_interval=50,
        )
        assert executor.metrics.recoveries >= 1
        event_kinds = {e.kind for e in obs.collector.events}
        assert {"crash", "recovery"} <= event_kinds

        multi = [
            t for t in obs.collector.trace_ids() if obs.collector.attempts(t) > 1
        ]
        assert multi, "expected at least one replayed (multi-attempt) trace"
        tid = multi[0]
        root = obs.collector.tree(tid)  # final attempt by default
        assert root.span.attempt == obs.collector.attempts(tid)
        components = [n.span.component for n in root.walk()]
        assert components[0] == "spout:sentences"
        assert "acker" in components
        # the first attempt is still reconstructable on demand
        first = obs.collector.tree(tid, attempt=1)
        assert first.span.attempt == 1

    def test_replay_spans_tagged(self):
        __, obs = _run(
            sample_rate=1.0,
            n_records=200,
            semantics="at_least_once",
            drop_probability=0.05,
        )
        kinds = {
            s.kind
            for t in obs.collector.trace_ids()
            for s in obs.collector.spans_for(t)
        }
        assert "replay" in kinds or "fail" in kinds


class TestFacadeMetrics:
    def test_summary_includes_components_and_high_water(self):
        executor, __ = _run(sample_rate=0.0, n_records=50)
        summary = executor.metrics.summary()
        assert "components" in summary
        comp = summary["components"]
        assert "spout:sentences" in comp
        for entry in comp.values():
            assert set(entry) >= {
                "emitted",
                "processed",
                "acked",
                "failed",
                "queue_high_water",
            }
        assert any(e["queue_high_water"] > 0 for e in comp.values())

    def test_metrics_flow_into_shared_registry(self):
        executor, obs = _run(sample_rate=0.0, n_records=30)
        fam = obs.registry.get("repro_component_emitted_total")
        assert fam is not None
        total = sum(s.value for s in fam.samples())
        assert total > 0

    def test_synopsis_instrumentation_wired_in_demo(self):
        __, obs = _run(sample_rate=0.0, n_records=40)
        calls = obs.registry.get("repro_synopsis_calls_total")
        assert calls is not None
        assert sum(s.value for s in calls.samples()) > 0
        mem = obs.registry.get("repro_synopsis_memory_bytes")
        (sample,) = [
            s for s in mem.samples() if s.labels_dict()["synopsis"] == "demo_summary"
        ]
        assert sample.value > 0


class TestReport:
    def test_render_report_sections(self):
        executor, obs = _run(sample_rate=1.0, n_records=40)
        text = render_report(executor.metrics, obs.collector)
        assert "== run summary ==" in text
        assert "== components ==" in text
        assert "== traces" in text

    def test_render_trace_tree_shows_timings(self):
        __, obs = _run(sample_rate=1.0, n_records=20)
        tid = obs.collector.trace_ids()[0]
        text = render_trace_tree(obs.collector, tid)
        assert "spout:sentences" in text
        assert "proc" in text


class TestObservabilityFactory:
    def test_create_defaults(self):
        obs = Observability.create()
        assert obs.sampler is not None
        assert obs.sampler.rate == pytest.approx(0.01)

    def test_rate_zero_disables_sampler(self):
        obs = Observability.create(sample_rate=0.0)
        assert obs.sampler is None

    def test_fault_injector_importable(self):
        # guard: the demo wires FaultInjector; keep the import path stable
        assert FaultInjector is not None
