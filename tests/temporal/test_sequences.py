"""Tests for streaming sequential-pattern mining."""

import pytest

from repro.common.exceptions import ParameterError
from repro.temporal import SequenceMiner
from repro.workloads import session_stream


class TestSequenceMiner:
    def test_validation(self):
        with pytest.raises(ParameterError):
            SequenceMiner(max_len=1)
        with pytest.raises(ParameterError):
            SequenceMiner(max_len=4, history=2)

    def test_counts_contiguous_subsequences(self):
        miner = SequenceMiner(max_len=3)
        for event in "abcd":
            miner.update(("s1", event))
        assert miner.frequency(("a", "b")) == 1
        assert miner.frequency(("b", "c", "d")) == 1
        assert miner.frequency(("a", "c")) == 0  # not contiguous

    def test_sequences_do_not_span_keys(self):
        miner = SequenceMiner(max_len=2)
        miner.update(("s1", "login"))
        miner.update(("s2", "logout"))
        assert miner.frequency(("login", "logout")) == 0

    def test_end_session_resets_history(self):
        miner = SequenceMiner(max_len=2)
        miner.update(("s1", "a"))
        miner.end_session("s1")
        miner.update(("s1", "b"))
        assert miner.frequency(("a", "b")) == 0
        assert miner.open_sessions == 1

    def test_top_traversal_paths(self):
        """The paper's 'top-K traversal sequences in streaming clicks'."""
        miner = SequenceMiner(max_len=3, k=512)
        # 80 sessions follow the funnel, 40 wander randomly.
        funnel = ["home", "product", "checkout"]
        for s in range(80):
            for page in funnel:
                miner.update((f"funnel{s}", page))
        import random

        rng = random.Random(7)
        pages = ["home", "about", "blog", "product", "faq"]
        for s in range(40):
            for __ in range(4):
                miner.update((f"rand{s}", rng.choice(pages)))
        top3 = miner.top(1, length=3)
        assert top3[0][0] == ("home", "product", "checkout")
        assert miner.support(("home", "product")) > 0.1

    def test_top_filtered_by_length(self):
        miner = SequenceMiner(max_len=3)
        for event in "xyxyxy":
            miner.update(("s", event))
        for seq, __ in miner.top(5, length=2):
            assert len(seq) == 2

    def test_merge(self):
        a, b = SequenceMiner(max_len=2), SequenceMiner(max_len=2)
        for __ in range(10):
            a.update(("s1", "p"))
            a.update(("s1", "q"))
            b.update(("s2", "p"))
            b.update(("s2", "q"))
        a.merge(b)
        assert a.frequency(("p", "q")) >= 20

    def test_realistic_sessions(self):
        miner = SequenceMiner(max_len=2, k=256)
        for session in session_stream(200, seed=11):
            for event in session:
                miner.update((event.user_id, event.page))
        assert miner.count > 0
        assert all(len(seq) == 2 for seq, __ in miner.top(5, length=2))
