"""Tests for SAX, motif discovery and SPRING matching."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.temporal import (
    MotifDetector,
    SpringMatcher,
    dtw_distance,
    gaussian_breakpoints,
    paa,
    sax_distance,
    sax_word,
    znormalise,
)


class TestSAX:
    def test_breakpoints_equiprobable(self):
        bp = gaussian_breakpoints(4)
        assert len(bp) == 3
        assert bp[0] == pytest.approx(-0.6745, abs=1e-3)
        assert bp[1] == pytest.approx(0.0, abs=1e-9)

    def test_breakpoints_bounds(self):
        with pytest.raises(ParameterError):
            gaussian_breakpoints(1)

    def test_paa_means(self):
        out = paa([1.0, 1.0, 5.0, 5.0], 2)
        np.testing.assert_allclose(out, [1.0, 5.0])

    def test_paa_validation(self):
        with pytest.raises(ParameterError):
            paa([], 2)
        with pytest.raises(ParameterError):
            paa([1.0], 2)

    def test_znormalise_constant(self):
        np.testing.assert_array_equal(znormalise([3.0, 3.0]), [0.0, 0.0])

    def test_word_shape_invariance(self):
        """SAX is invariant to offset and scale (z-normalised)."""
        base = np.sin(np.linspace(0, 2 * np.pi, 64))
        assert sax_word(base) == sax_word(base * 100 + 7)

    def test_distinct_shapes_distinct_words(self):
        up = np.linspace(0, 1, 32)
        down = np.linspace(1, 0, 32)
        assert sax_word(up) != sax_word(down)

    def test_mindist_zero_for_same_word(self):
        assert sax_distance("abba", "abba", window_len=32) == 0.0

    def test_mindist_positive_for_far_words(self):
        assert sax_distance("aaaa", "dddd", window_len=32) > 0.0

    def test_mindist_length_check(self):
        with pytest.raises(ParameterError):
            sax_distance("ab", "abc", window_len=8)


class TestMotifDetector:
    def test_finds_embedded_motif(self):
        rng = make_np_rng(81)
        motif = np.sin(np.linspace(0, 4 * np.pi, 32)) * 3
        stream = []
        for rep in range(30):
            stream.extend(rng.normal(0, 0.2, size=48))  # noise gap (stride-aligned)
            stream.extend(motif + rng.normal(0, 0.05, size=32))
        det = MotifDetector(window=32, segments=8, alphabet_size=4, stride=4)
        det.update_many(stream)
        motif_word = sax_word(motif, 8, 4)
        top_words = [w for w, __ in det.motifs(5)]
        assert motif_word in top_words

    def test_validation(self):
        with pytest.raises(ParameterError):
            MotifDetector(window=0)
        with pytest.raises(ParameterError):
            MotifDetector(window=4, segments=8)

    def test_merge(self):
        a = MotifDetector(window=8, segments=4, stride=8)
        b = MotifDetector(window=8, segments=4, stride=8)
        pattern = [0, 1, 2, 3, 3, 2, 1, 0] * 4
        a.update_many(pattern)
        b.update_many(pattern)
        a.merge(b)
        assert a.count == len(pattern) * 2


class TestDTW:
    def test_identity_zero(self):
        assert dtw_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_warping_beats_euclidean(self):
        a = [0, 0, 1, 2, 1, 0, 0]
        b = [0, 1, 2, 1, 0, 0, 0]  # same shape, shifted
        euclid = sum((x - y) ** 2 for x, y in zip(a, b))
        assert dtw_distance(a, b) < euclid

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            dtw_distance([], [1.0])


class TestSpring:
    def test_validation(self):
        with pytest.raises(ParameterError):
            SpringMatcher([], 1.0)
        with pytest.raises(ParameterError):
            SpringMatcher([1.0], 0.0)

    def test_finds_exact_occurrences(self):
        query = [1.0, 3.0, 2.0]
        stream = [0.0] * 10 + query + [0.0] * 10 + query + [0.0] * 10
        matcher = SpringMatcher(query, threshold=0.5)
        matches = [m for x in stream if (m := matcher.update(x))]
        tail = matcher.flush()
        if tail:
            matches.append(tail)
        assert len(matches) == 2
        for m in matches:
            assert m.distance == pytest.approx(0.0)
            assert m.end - m.start == len(query) - 1

    def test_finds_warped_occurrence(self):
        query = [0.0, 1.0, 2.0, 1.0, 0.0]
        warped = [0.0, 1.0, 1.0, 2.0, 2.0, 1.0, 0.0]  # stretched
        stream = [5.0] * 8 + warped + [5.0] * 8
        matcher = SpringMatcher(query, threshold=0.5)
        matches = [m for x in stream if (m := matcher.update(x))]
        tail = matcher.flush()
        if tail:
            matches.append(tail)
        assert len(matches) == 1
        assert matches[0].distance <= 0.5

    def test_no_match_below_threshold(self):
        matcher = SpringMatcher([10.0, 20.0, 10.0], threshold=1.0)
        for x in np.zeros(50):
            assert matcher.update(x) is None
        assert matcher.flush() is None

    def test_match_positions_correct(self):
        query = [7.0, 8.0, 9.0]
        stream = [0.0] * 5 + query + [0.0] * 5
        matcher = SpringMatcher(query, threshold=0.1)
        matches = [m for x in stream if (m := matcher.update(x))]
        tail = matcher.flush()
        if tail:
            matches.append(tail)
        (m,) = matches
        assert (m.start, m.end) == (6, 8)  # 1-based positions 6..8
