"""Tests for streaming correlation tools."""

import numpy as np
import pytest

from repro.common.exceptions import MergeError, ParameterError
from repro.common.rng import make_np_rng
from repro.correlation import (
    CorrelationSketch,
    LagCorrelator,
    StreamingCorrelation,
    correlated_pairs,
)


class TestStreamingCorrelation:
    def test_matches_numpy(self):
        rng = make_np_rng(51)
        x = rng.normal(size=2_000)
        y = 0.7 * x + 0.3 * rng.normal(size=2_000)
        sc = StreamingCorrelation()
        sc.update_many(zip(x, y))
        assert sc.correlation() == pytest.approx(float(np.corrcoef(x, y)[0, 1]), abs=1e-9)
        assert sc.covariance() == pytest.approx(float(np.cov(x, y, bias=True)[0, 1]), abs=1e-9)
        assert sc.variance_x() == pytest.approx(float(x.var()), abs=1e-9)

    def test_perfect_correlation(self):
        sc = StreamingCorrelation()
        sc.update_many((float(i), 2.0 * i + 3.0) for i in range(100))
        assert sc.correlation() == pytest.approx(1.0)

    def test_anticorrelation(self):
        sc = StreamingCorrelation()
        sc.update_many((float(i), -float(i)) for i in range(100))
        assert sc.correlation() == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        sc = StreamingCorrelation()
        sc.update_many((1.0, float(i)) for i in range(10))
        assert sc.correlation() == 0.0

    def test_too_few_points(self):
        sc = StreamingCorrelation()
        sc.update((1.0, 1.0))
        with pytest.raises(ParameterError):
            sc.correlation()

    def test_merge_matches_single_pass(self):
        rng = make_np_rng(52)
        x = rng.normal(size=1_000)
        y = x * 0.5 + rng.normal(size=1_000)
        a, b, single = StreamingCorrelation(), StreamingCorrelation(), StreamingCorrelation()
        a.update_many(zip(x[:500], y[:500]))
        b.update_many(zip(x[500:], y[500:]))
        single.update_many(zip(x, y))
        a.merge(b)
        assert a.correlation() == pytest.approx(single.correlation(), abs=1e-9)
        assert a.mean_x == pytest.approx(single.mean_x)

    def test_merge_into_empty(self):
        a, b = StreamingCorrelation(), StreamingCorrelation()
        b.update_many([(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)])
        a.merge(b)
        assert a.correlation() == pytest.approx(1.0)


class TestLagCorrelator:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            LagCorrelator(window=0)
        with pytest.raises(ParameterError):
            LagCorrelator(window=10, max_lag=10)

    def test_detects_known_lag(self):
        rng = make_np_rng(53)
        base = rng.normal(size=1_200)
        lag = 7
        lc = LagCorrelator(window=512, max_lag=20)
        for t in range(200, 1_200):
            x = base[t]
            y = base[t - lag] + 0.1 * rng.normal()
            lc.update((x, y))
        best_lag, corr = lc.best_lag()
        assert best_lag == lag
        assert corr > 0.9

    def test_zero_lag_identity(self):
        rng = make_np_rng(54)
        lc = LagCorrelator(window=256, max_lag=5)
        for v in rng.normal(size=500):
            lc.update((v, v))
        best_lag, corr = lc.best_lag()
        assert best_lag == 0 and corr == pytest.approx(1.0)

    def test_lag_out_of_range(self):
        lc = LagCorrelator(window=100, max_lag=5)
        for i in range(100):
            lc.update((float(i), float(i)))
        with pytest.raises(ParameterError):
            lc.correlation_at(6)


class TestCorrelationSketch:
    def _make_streams(self, n=1_000):
        rng = make_np_rng(55)
        base = rng.normal(size=n)
        hi = base + 0.1 * rng.normal(size=n)  # corr ~ 0.995
        lo = rng.normal(size=n)  # independent
        return base, hi, lo

    def _sketch(self, values, **kw):
        s = CorrelationSketch(**kw)
        s.update_many(values)
        return s

    def test_high_correlation_preserved(self):
        base, hi, lo = self._make_streams()
        kw = dict(window=256, d=64, seed=0)
        s_base = self._sketch(base, **kw)
        s_hi = self._sketch(hi, **kw)
        s_lo = self._sketch(lo, **kw)
        assert s_base.correlation(s_hi) > 0.8
        assert abs(s_base.correlation(s_lo)) < 0.5

    def test_sketch_close_to_exact(self):
        base, hi, __ = self._make_streams()
        kw = dict(window=256, d=128, seed=1)
        a, b = self._sketch(base, **kw), self._sketch(hi, **kw)
        assert abs(a.correlation(b) - a.exact_correlation(b)) < 0.25

    def test_incompatible_seeds_rejected(self):
        a = CorrelationSketch(seed=0)
        b = CorrelationSketch(seed=1)
        with pytest.raises(MergeError):
            a.correlation(b)

    def test_correlated_pairs_screen(self):
        base, hi, lo = self._make_streams()
        kw = dict(window=256, d=64, seed=2)
        sketches = [self._sketch(v, **kw) for v in (base, hi, lo)]
        hits = correlated_pairs(sketches, threshold=0.7)
        pairs = {(i, j) for i, j, __ in hits}
        assert (0, 1) in pairs
        assert (0, 2) not in pairs and (1, 2) not in pairs
