"""Text and JSON reporters."""

import json

from repro.analysis import Finding, Severity
from repro.analysis.reporters import render_json, render_text

_FINDINGS = [
    Finding("a.py", 1, 0, "SL001", Severity.ERROR, "global rng"),
    Finding("a.py", 5, 4, "SL003", Severity.ERROR, "mutable default"),
]


class TestText:
    def test_one_line_per_finding_plus_summary(self):
        out = render_text(_FINDINGS)
        lines = out.splitlines()
        assert lines[0] == "a.py:1:0: SL001 error: global rng"
        assert lines[1] == "a.py:5:4: SL003 error: mutable default"
        assert "2 finding(s)" in lines[-1]

    def test_clean_message(self):
        assert render_text([]) == "streamlint: clean"


class TestJson:
    def test_findings_and_summary(self):
        doc = json.loads(render_json(_FINDINGS))
        assert len(doc["findings"]) == 2
        assert doc["findings"][0]["rule"] == "SL001"
        assert doc["summary"]["total"] == 2
        assert doc["summary"]["by_rule"] == {"SL001": 1, "SL003": 1}
        assert doc["summary"]["by_severity"] == {"error": 2}

    def test_empty_tree(self):
        doc = json.loads(render_json([]))
        assert doc["findings"] == []
        assert doc["summary"]["total"] == 0
