"""ProjectModel: cross-module hierarchy, attr inference, registration."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.context import ModuleContext
from repro.analysis.facts import extract_facts
from repro.analysis.project import ProjectModel


@pytest.fixture
def model(tmp_path):
    """Build a ProjectModel from a dict of ``relpath -> source``."""

    def _model(files: dict[str, str]) -> ProjectModel:
        modules = {}
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
            ctx = ModuleContext.from_file(target, tmp_path)
            modules[ctx.relpath] = extract_facts(ctx)
        return ProjectModel(modules)

    return _model


class TestHierarchy:
    def test_cross_module_derivation(self, model):
        m = model(
            {
                "common/mergeable.py": "class SynopsisBase:\n    pass\n",
                "core/base.py": (
                    "from common.mergeable import SynopsisBase\n"
                    "class Intermediate(SynopsisBase):\n    pass\n"
                ),
                "frequency/leaf.py": (
                    "from core.base import Intermediate\n"
                    "class Leaf(Intermediate):\n    pass\n"
                ),
            }
        )
        assert m.derives_from("Leaf", "SynopsisBase")
        assert m.derives_from("Intermediate", "SynopsisBase")
        assert not m.derives_from("SynopsisBase", "Leaf")

    def test_attribute_qualified_base(self, model):
        m = model(
            {
                "app.py": (
                    "from repro.platform import topology\n"
                    "class MyBolt(topology.Bolt):\n    pass\n"
                )
            }
        )
        assert m.derives_from("MyBolt", "Bolt")

    def test_cycle_is_safe(self, model):
        m = model({"a.py": "class A(B):\n    pass\nclass B(A):\n    pass\n"})
        assert not m.derives_from("A", "SynopsisBase")

    def test_subclasses_of_excludes_abstract_when_asked(self, model):
        m = model(
            {
                "s.py": (
                    "import abc\n"
                    "class SynopsisBase:\n    pass\n"
                    "class Mid(SynopsisBase):\n"
                    "    @abc.abstractmethod\n"
                    "    def q(self):\n        ...\n"
                    "class Leaf(Mid):\n"
                    "    def q(self):\n        return 0\n"
                )
            }
        )
        names = {n for _, n, _ in m.subclasses_of("SynopsisBase")}
        concrete = {
            n for _, n, _ in m.subclasses_of("SynopsisBase", concrete_only=True)
        }
        assert names == {"Mid", "Leaf"}
        assert concrete == {"Leaf"}

    def test_resolve_method_walks_ancestors_below_stop_root(self, model):
        m = model(
            {
                "base.py": (
                    "class Bolt:\n"
                    "    def snapshot(self):\n        return None\n"
                ),
                "mid.py": (
                    "from base import Bolt\n"
                    "class Mid(Bolt):\n"
                    "    def snapshot(self):\n        return 1\n"
                ),
                "leaf.py": (
                    "from mid import Mid\n"
                    "class Leaf(Mid):\n    pass\n"
                ),
            }
        )
        owner, _ = m.resolve_method("Leaf", "snapshot", stop_roots=frozenset({"Bolt"}))
        assert owner == "Mid"
        # the runtime root's default does not count as an override
        m2 = model(
            {
                "base.py": (
                    "class Bolt:\n"
                    "    def snapshot(self):\n        return None\n"
                ),
                "leaf.py": (
                    "from base import Bolt\n"
                    "class Leaf(Bolt):\n    pass\n"
                ),
            }
        )
        assert (
            m2.resolve_method("Leaf", "snapshot", stop_roots=frozenset({"Bolt"}))
            is None
        )


class TestAttrInference:
    def test_builtin_constructors(self, model):
        m = model(
            {
                "mod.py": """
                import collections
                import numpy as np
                class C:
                    def __init__(self):
                        self.a = {}
                        self.b = []
                        self.c = set()
                        self.d = collections.deque()
                        self.e = np.zeros(4)
                        self.f = 0
                        self.g = "x"
                        self.h = (1, 2)
                """
            }
        )
        _, cf = m.get_class("C")
        types = {a: info["type"] for a, info in cf["attrs"].items()}
        assert types == {
            "a": "dict",
            "b": "list",
            "c": "set",
            "d": "deque",
            "e": "ndarray",
            "f": "int",
            "g": "str",
            "h": "tuple",
        }

    def test_init_assignment_wins_over_later_methods(self, model):
        m = model(
            {
                "mod.py": (
                    "class C:\n"
                    "    def reset(self):\n"
                    "        self.state = []\n"
                    "    def __init__(self):\n"
                    "        self.state = {}\n"
                )
            }
        )
        _, cf = m.get_class("C")
        assert cf["attrs"]["state"]["type"] == "dict"

    def test_external_constructor_keeps_callee(self, model):
        m = model(
            {
                "mod.py": (
                    "import threading\n"
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        self.lock = threading.Lock()\n"
                )
            }
        )
        _, cf = m.get_class("C")
        info = cf["attrs"]["lock"]
        assert info["type"] is None
        assert info["callee"] == "threading.Lock"

    def test_resolve_attr_through_ancestors(self, model):
        m = model(
            {
                "base.py": (
                    "class Base:\n"
                    "    def __init__(self):\n"
                    "        self.keys = set()\n"
                ),
                "leaf.py": (
                    "from base import Base\n"
                    "class Leaf(Base):\n    pass\n"
                ),
            }
        )
        info = m.resolve_attr("Leaf", "keys")
        assert info is not None and info["type"] == "set"


class TestRegistrationSurfaces:
    def test_registry_and_reducers_union(self, model):
        m = model(
            {
                "core/registry.py": (
                    "from a import Foo\nTABLE = {'foo': Foo}\n"
                ),
                "a.py": "class Foo:\n    pass\n",
                "ship.py": (
                    "from repro.common.serialization import register_reducer\n"
                    "class Bar:\n    pass\n"
                    "register_reducer(Bar, lambda b: {}, lambda d: Bar())\n"
                ),
            }
        )
        assert {"Foo", "Bar"} <= m.registered_names()
        assert m.registry_relpath == "core/registry.py"

    def test_no_registry_module(self, model):
        m = model({"a.py": "class Foo:\n    pass\n"})
        assert m.registry_relpath is None
        assert m.registry_referenced is None


class TestImportGraph:
    def test_intra_tree_edges_resolved(self, model):
        m = model(
            {
                "core/base.py": "class X:\n    pass\n",
                "frequency/leaf.py": (
                    "from core.base import X\n"
                    "import json\n"
                    "class Y(X):\n    pass\n"
                ),
            }
        )
        assert m.import_graph["frequency/leaf.py"] == {"core/base.py"}
        assert m.import_graph["core/base.py"] == set()

    def test_repro_prefixed_imports_map_to_relpaths(self, model):
        m = model(
            {
                "common/rng.py": "def make_rng(seed):\n    return seed\n",
                "app.py": "from repro.common.rng import make_rng\n",
            }
        )
        assert m.import_graph["app.py"] == {"common/rng.py"}
