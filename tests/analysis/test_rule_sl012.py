"""SL012: tuple-derived metric label values (unbounded cardinality)."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl012"
SELECT = ["SL012"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert [f.rule_id for f in findings] == ["SL012"]
        assert "'key'" in findings[0].message

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_direct_payload_label_flagged(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        self.counter.labels(user=values[0]).inc()\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL012"]

    def test_taint_through_assignment_chain(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        raw = values[0]\n"
            "        key = str(raw)\n"
            "        self.counter.labels(key=key).inc()\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL012"]

    def test_taint_through_for_target(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        for item in values:\n"
            "            self.counter.labels(item=item).inc()\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL012"]

    def test_config_label_clean(self, rule_ids):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def prepare(self, task_index, n_tasks):\n"
            "        self.task = task_index\n"
            "    def process(self, values, emit):\n"
            "        self.counter.labels(task=self.task).inc()\n"
        )
        assert rule_ids({"platform/b.py": src}, select=SELECT) == []

    def test_labels_outside_process_clean(self, rule_ids):
        # prepare() sees only configuration, never tuples
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def prepare(self, task_index, n_tasks):\n"
            "        self.child = self.counter.labels(task=task_index)\n"
        )
        assert rule_ids({"platform/b.py": src}, select=SELECT) == []
