"""SL008 positive: OS-resource state the spawn boundary rejects."""

import threading
import queue

from repro.platform.topology import Bolt


class LockedBolt(Bolt):
    def __init__(self):
        self.lock = threading.Lock()
        self.backlog = queue.Queue()
        self.counts = {}

    def process(self, values, emit):
        with self.lock:
            self.counts[values[0]] = 1
