"""SL008 positive: a synopsis holding a live iterator."""

from repro.common.mergeable import SynopsisBase


class GenSketch(SynopsisBase):
    def __init__(self, source):
        self.stream = iter(source)

    def update(self, item):
        pass

    def _merge_into(self, other):
        pass
