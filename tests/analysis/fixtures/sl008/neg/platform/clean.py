"""SL008 negative: everything serialization v2 covers."""

import collections

import numpy as np

from repro.platform.topology import Bolt


class CleanBolt(Bolt):
    def __init__(self):
        self.counts = collections.Counter()
        self.window = collections.deque()
        self.weights = np.zeros(8)
        self.name = "clean"
        self.seen = set()
        self.key_fn = lambda v: v[0]

    def process(self, values, emit):
        self.counts[values[0]] += 1
