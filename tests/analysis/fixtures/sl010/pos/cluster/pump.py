"""SL010 positives: indefinitely blocking calls in cluster code."""

import time


def drain(inbox, results):
    while True:
        message = inbox.get()
        if message is None:
            return
        time.sleep(0.05)
        results.put(message)


def wait_explicit(inbox):
    return inbox.get(True)
