"""SL010 negatives: bounded waits, non-blocking gets, dict lookups."""

import queue


def drain(inbox, results, config):
    while True:
        try:
            message = inbox.get(timeout=1.0)
        except queue.Empty:
            continue
        if message is None:
            return
        results.put(message)


def poll(inbox):
    try:
        return inbox.get_nowait()
    except queue.Empty:
        return None


def lookup(config, key):
    return config.get(key)
