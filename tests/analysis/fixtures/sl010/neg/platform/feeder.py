"""SL010 negative: a bare get outside cluster/ is out of scope."""


def take(q):
    return q.get()
