"""SL012 positive: payload-derived metric label values."""

from repro.platform.topology import Bolt


class MeterBolt(Bolt):
    def prepare(self, task_index, n_tasks):
        self.task_index = task_index

    def process(self, values, emit):
        key = values[0]
        self.counter.labels(key=key).inc()
        emit(values)
