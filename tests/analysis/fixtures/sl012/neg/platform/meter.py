"""SL012 negative: labels from bounded configuration, payload in values."""

from repro.platform.topology import Bolt


class MeterBolt(Bolt):
    def prepare(self, task_index, n_tasks):
        self.task_index = task_index

    def process(self, values, emit):
        self.counter.labels(task=str(self.task_index)).inc()
        emit([values[0] * 2])
