"""SL007 positive: bolt mutating a module-level dict (shadow state)."""

from repro.platform.topology import Bolt

_TOTALS = {}
_RECENT = []


class TallyBolt(Bolt):
    def process(self, values, emit):
        _TOTALS[values[0]] = 1
        _RECENT.append(values[0])
