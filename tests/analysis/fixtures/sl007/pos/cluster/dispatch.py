"""SL007 positive: cluster-runtime function mutating a module global."""

_SEEN = {}


def dispatch(message):
    _SEEN[message[0]] = message
