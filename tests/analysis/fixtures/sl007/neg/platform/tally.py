"""SL007 negative: instance state and locals are fine; so are constants."""

from repro.platform.topology import Bolt

_LIMIT = 100


class TallyBolt(Bolt):
    def __init__(self):
        self.totals = {}

    def process(self, values, emit):
        scratch = {}
        scratch[values[0]] = 1
        self.totals[values[0]] = _LIMIT
