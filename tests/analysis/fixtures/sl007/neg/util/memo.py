"""SL007 negative: a module global mutated outside operator/cluster code."""

_CACHE = {}


def memo(key, value):
    _CACHE[key] = value
    return _CACHE[key]
