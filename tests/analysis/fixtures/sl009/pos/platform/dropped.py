"""SL009 positives: accumulated bolt state the cluster plane cannot see.

``DroppedStateBolt`` never snapshots (error); ``PartialCountBolt``
snapshots a plain dict nothing can fold across shards (warning).
"""

from repro.platform.topology import Bolt


class DroppedStateBolt(Bolt):
    def __init__(self):
        self.seen = 0

    def process(self, values, emit):
        self.seen += 1


class PartialCountBolt(Bolt):
    def __init__(self):
        self.counts = {}

    def process(self, values, emit):
        self.counts[values[0]] = self.counts.get(values[0], 0) + 1

    def snapshot(self):
        return dict(self.counts)
