"""SL009 negatives: synopsis-backed state, and stateless bolts."""

from sketchlib.mini import MiniSketch

from repro.platform.topology import Bolt


class SynopsisBackedBolt(Bolt):
    def __init__(self):
        self.sketch = MiniSketch()

    def process(self, values, emit):
        self.sketch.update(values[0])

    def snapshot(self):
        return self.sketch


class StatelessBolt(Bolt):
    def process(self, values, emit):
        emit([values[0] * 2])
