"""Support module for the SL009 negative: a mergeable synopsis."""

from repro.common.mergeable import SynopsisBase


class MiniSketch(SynopsisBase):
    def __init__(self):
        self.total = 0

    def update(self, item):
        self.total += 1

    def _merge_into(self, other):
        other.total += self.total
