"""Negative fixtures: disciplined migration surgery."""

from contextlib import contextmanager


@contextmanager
def migration_barrier(executor):
    executor.drain()
    yield


def _capture_all(executor):
    # Barrier-less surgery helper: the obligation sits at its call sites.
    for inbox in executor.inboxes:
        inbox.put(("snapshot", executor.epoch))
    return executor.collect()


def _restore_all(executor, states):
    for inbox, state in zip(executor.inboxes, states):
        inbox.put(("restore", state))


def reshard(states, merged):
    # Helpers may compose surgery freely inside their own bodies.
    for state in states:
        merged.merge(state)
    return merged.split(len(states))


def perform_rescale(executor, merged):
    with migration_barrier(executor):
        states = _capture_all(executor)
        shards = reshard(states, merged)
        _restore_all(executor, shards)
    return shards


def describe_trajectory(path):
    # str.split on a constant is string work, not state surgery.
    return "1 2 4".split() + [str(w) for w in path]
