"""Negative fixtures: splits that honour the elastic contract."""


class SynopsisBase:
    def merge(self, other):
        raise NotImplementedError

    def split(self, n):
        raise NotImplementedError


class MergeableBase(SynopsisBase):
    """Abstract intermediate providing the merge half of the pair."""

    def _merge_into(self, other):
        raise NotImplementedError


class RoundTripSketch(MergeableBase):
    """Split with an inherited merge inverse and an intact source: clean."""

    def __init__(self):
        self._values = []

    def _split_into(self, n):
        shards = [RoundTripSketch() for _ in range(n)]
        for i, value in enumerate(self._values):
            shards[i % n]._values.append(value)
        return shards


class MergeOnlySketch(MergeableBase):
    """No split at all — merge-only synopses are fine: clean."""

    def __init__(self):
        self._total = 0

    def _merge_into(self, other):
        self._total += other._total
