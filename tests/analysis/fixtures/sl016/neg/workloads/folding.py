"""Merge calls outside any elastic package are out of SL016's scope."""


def fold(shards):
    merged, rest = shards[0], shards[1:]
    for shard in rest:
        merged.merge(shard)
    return merged
