"""Positive fixtures: migration surgery outside the barrier."""

from contextlib import contextmanager


@contextmanager
def migration_barrier(executor):
    executor.drain()
    yield


def _capture_all(executor):
    for inbox in executor.inboxes:
        inbox.put(("snapshot", executor.epoch))
    return executor.collect()


def rescale_without_barrier(executor):
    # SL016: the cluster is never quiesced before state is captured.
    states = _capture_all(executor)
    return states


def rescale_leaks_after_barrier(executor, merged, shard):
    with migration_barrier(executor):
        states = _capture_all(executor)
    # SL016: the barrier is already released; this merge races live tuples.
    merged.merge(shard)
    return states, merged
