"""Positive fixtures: splits that violate the elastic contract."""


class SynopsisBase:
    def merge(self, other):
        raise NotImplementedError

    def split(self, n):
        raise NotImplementedError


class InverseLessSketch(SynopsisBase):
    """Defines a split but no merge anywhere below the root: SL016."""

    def __init__(self):
        self._counts = {}

    def _split_into(self, n):
        return [InverseLessSketch() for _ in range(n)]


class DestructiveSplitSketch(SynopsisBase):
    """Split empties the source it is supposed to leave intact: SL016."""

    def __init__(self):
        self._values = []

    def _merge_into(self, other):
        self._values.extend(other._values)

    def _split_into(self, n):
        shards = [DestructiveSplitSketch() for _ in range(n)]
        for i, value in enumerate(self._values):
            shards[i % n]._values.append(value)
        self._values = []
        return shards
