"""SL011 positives: id() and unordered set iteration in synopsis state."""

from repro.common.mergeable import SynopsisBase


class TagSketch(SynopsisBase):
    def __init__(self):
        self.tags = set()

    def update(self, item):
        self.tags.add(item)

    def _merge_into(self, other):
        for tag in self.tags:
            other.tags.add(tag)

    def evict_one(self):
        return self.tags.pop()

    def checkpoint_key(self):
        return id(self)
