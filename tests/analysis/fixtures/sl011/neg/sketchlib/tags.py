"""SL011 negatives: sorted iteration and list state are deterministic."""

from repro.common.mergeable import SynopsisBase


class TagSketch(SynopsisBase):
    def __init__(self):
        self.tags = set()
        self.history = []

    def update(self, item):
        self.tags.add(item)
        self.history.append(item)

    def _merge_into(self, other):
        for tag in sorted(self.tags):
            other.tags.add(tag)
        for item in self.history:
            other.history.append(item)

    def evict_one(self):
        return self.history.pop()
