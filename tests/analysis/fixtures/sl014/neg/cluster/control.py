"""SL014 negatives that still live in the cluster package."""


def run_worker(worker, results, worker_id):
    def maybe_ship_telemetry(force=False):
        payload = worker.export_obs() if force else worker.maybe_flush_telemetry()
        if payload is not None:
            results.put(("telemetry", worker_id, payload))

    while worker.alive:
        worker.step()
        maybe_ship_telemetry()


def final_report(worker, results, worker_id):
    # Export outside any loop: a one-shot shutdown report is fine.
    results.put(("stopped", worker_id, worker.export_obs()))


def maybe_flush_telemetry(worker, results, pending):
    # The interval gate itself may export from its drain loop.
    while pending:
        results.put(worker.export_metrics())
        pending -= 1
