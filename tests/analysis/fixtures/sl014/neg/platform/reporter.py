"""SL014 negative: the rule is scoped to the cluster package."""


def poll_forever(worker, sink):
    while True:
        sink.append(worker.export_obs())
