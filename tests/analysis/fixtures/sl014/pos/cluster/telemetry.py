"""SL014 positives: full telemetry exports inside cluster loops."""


def run_worker(worker, results, worker_id, epoch):
    while True:
        metrics = worker.export_obs()
        results.put(("telemetry", worker_id, epoch, metrics))


def pump(worker, queue, batches):
    for batch in batches:
        worker.process(batch)
        queue.put(export_metrics(worker.registry))


def drain_spans(worker, sink, frames):
    for frame in frames:
        worker.absorb(frame)
        spans = worker.export_spans()
        sink.extend(spans)
