"""SL013 positives: bulk data pickled through queues in cluster loops."""

import pickle

import numpy as np


def flush_batches(buffers, inboxes, epoch):
    for worker_id, batch in enumerate(buffers):
        blob = pickle.dumps(batch)
        inboxes[worker_id].put(("tuples", epoch, blob))


def ship_inline(queue, batches):
    while batches:
        queue.put(pickle.dumps(batches.pop()))


def ship_array(queue, n):
    for __ in range(n):
        keys = np.zeros(1024, dtype=np.uint64)
        queue.put(("keys", keys))
