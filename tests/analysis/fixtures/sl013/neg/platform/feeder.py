"""SL013 is cluster-scoped: the same pattern elsewhere is not flagged."""

import pickle


def replay(queue, batches):
    for batch in batches:
        queue.put(pickle.dumps(batch))
