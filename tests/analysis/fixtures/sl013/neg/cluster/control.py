"""SL013 negatives: control traffic and one-shot sends stay legal."""

import pickle


def ring_doorbells(inboxes, epoch):
    # Control messages (two small ints) are what queues are for.
    for inbox in inboxes:
        inbox.put(("frames", epoch))


def snapshot_once(results, state):
    # One-shot handoff outside any loop: not a hot path.
    results.put(("snapshot_ok", pickle.dumps(state)))


def drain(outbox, sink):
    while True:
        frame = outbox.try_pop()
        if frame is None:
            return
        sink.append(frame)
