"""Loop-friendly serving code — nothing here is flagged."""

import asyncio
import time


def warm(q, path):
    # Synchronous helper: blocking calls are fine off the loop.
    time.sleep(0.01)
    with open(path) as fh:
        fh.read()
    return q.get()


async def handle(loop, q, table, path):
    await asyncio.sleep(0.01)
    item = q.get_nowait()
    bounded = q.get(timeout=0.5)
    row = table.get("key")
    data = await loop.run_in_executor(None, warm, q, path)

    def helper():
        # Nested sync def: destined for the executor, not the loop.
        time.sleep(0.01)
        return q.get()

    more = await loop.run_in_executor(None, helper)
    return item, bounded, row, data, more
