"""Blocking calls in a coroutine *outside* serving/ — out of SL015 scope."""

import time


async def drive(q):
    time.sleep(0.05)
    return q.get()
