"""Coroutines that stall the event loop — every call here is flagged."""

import socket
import time


async def handle(inbox, path):
    time.sleep(0.05)  # blocks every connection
    payload = inbox.get()  # blocks forever if the peer died
    conn = socket.create_connection(("127.0.0.1", 80))  # blocking I/O
    with open(path) as fh:  # blocking file I/O
        data = fh.read()
    return payload, conn, data
