"""SL002: the synopsis update/merge contract."""

SELECT = ["SL002"]

_PREAMBLE = "from repro.common.mergeable import SynopsisBase\n"


class TestTriggers:
    def test_missing_merge(self, lint):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "neither _merge_into nor merge" in findings[0].message

    def test_missing_update(self, lint):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "does not define update" in findings[0].message

    def test_merge_override_without_compat_check(self, lint):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def merge(self, other):\n"
            "        self.state += other.state\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "_check_mergeable" in findings[0].message


class TestClean:
    def test_standard_shape(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_merge_override_with_check_mergeable(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def merge(self, other):\n"
            "        other = self._check_mergeable(other)\n"
            "        self.state += other.state\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_merge_override_delegating_to_super(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def merge(self, other):\n"
            "        super().merge(other)\n"
            "        self.extra += other.extra\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_abstract_intermediate_exempt(self, rule_ids):
        src = (
            "import abc\n"
            + _PREAMBLE
            + "class Base(SynopsisBase):\n"
            "    @abc.abstractmethod\n"
            "    def query(self):\n"
            "        ...\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_unrelated_class_ignored(self, rule_ids):
        src = "class Plain:\n    pass\n"
        assert rule_ids({"sketch.py": src}, select=SELECT) == []
