"""SL002: the synopsis update/merge contract."""

SELECT = ["SL002"]

_PREAMBLE = "from repro.common.mergeable import SynopsisBase\n"


class TestTriggers:
    def test_missing_merge(self, lint):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "neither _merge_into nor merge" in findings[0].message

    def test_missing_update(self, lint):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "does not define update" in findings[0].message

    def test_merge_override_without_compat_check(self, lint):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def merge(self, other):\n"
            "        self.state += other.state\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "_check_mergeable" in findings[0].message


class TestClean:
    def test_standard_shape(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_merge_override_with_check_mergeable(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def merge(self, other):\n"
            "        other = self._check_mergeable(other)\n"
            "        self.state += other.state\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_merge_override_delegating_to_super(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def merge(self, other):\n"
            "        super().merge(other)\n"
            "        self.extra += other.extra\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_abstract_intermediate_exempt(self, rule_ids):
        src = (
            "import abc\n"
            + _PREAMBLE
            + "class Base(SynopsisBase):\n"
            "    @abc.abstractmethod\n"
            "    def query(self):\n"
            "        ...\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == []

    def test_unrelated_class_ignored(self, rule_ids):
        src = "class Plain:\n    pass\n"
        assert rule_ids({"sketch.py": src}, select=SELECT) == []


class TestBatchContract:
    """update_many overrides must delegate or be equivalence-tested."""

    _VECTOR = _PREAMBLE + (
        "class Sketch(SynopsisBase):\n"
        "    def update(self, item):\n"
        "        pass\n"
        "    def _merge_into(self, other):\n"
        "        pass\n"
        "    def update_many(self, items):\n"
        "        self.total = len(items)\n"
    )

    def test_vectorized_unregistered_flagged(self, lint):
        findings = lint({"sketchlib/s.py": self._VECTOR}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "update_many" in findings[0].message
        assert "batch-equivalence" in findings[0].message

    def test_delegating_override_clean(self, rule_ids):
        src = _PREAMBLE + (
            "class Sketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
            "    def update_many(self, items):\n"
            "        for item in items:\n"
            "            self.update(item)\n"
        )
        assert rule_ids({"sketchlib/s.py": src}, select=SELECT) == []

    def test_registry_membership_clean(self, rule_ids):
        # registry-referenced classes are covered by the registry-wide
        # batch-equivalence suite
        registry = "from sketchlib.s import Sketch\nTABLE = {'sketch': Sketch}\n"
        files = {"sketchlib/s.py": self._VECTOR, "core/registry.py": registry}
        assert rule_ids(files, select=SELECT) == []

    def test_reducer_registration_clean(self, rule_ids):
        shipping = (
            "from repro.common.serialization import register_reducer\n"
            "from sketchlib.s import Sketch\n"
            "register_reducer(Sketch, lambda s: {}, lambda d: Sketch())\n"
        )
        files = {"sketchlib/s.py": self._VECTOR, "cluster/ship.py": shipping}
        assert rule_ids(files, select=SELECT) == []

    def test_transitive_subclass_override_flagged(self, lint):
        # hierarchy is resolved project-wide: an override two levels down
        # in another module still carries the contract
        base = _PREAMBLE + (
            "import abc\n"
            "class Base(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
            "    @abc.abstractmethod\n"
            "    def query(self):\n"
            "        ...\n"
        )
        child = (
            "from sketchlib.base import Base\n"
            "class Child(Base):\n"
            "    def query(self):\n"
            "        return 0\n"
            "    def update_many(self, items):\n"
            "        self.total = len(items)\n"
        )
        findings = lint(
            {"sketchlib/base.py": base, "sketchlib/child.py": child},
            select=SELECT,
        )
        assert [f.rule_id for f in findings] == ["SL002"]
        assert "Child.update_many" in findings[0].message
