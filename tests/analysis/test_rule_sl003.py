"""SL003: mutable default arguments."""

SELECT = ["SL003"]


class TestTriggers:
    def test_list_literal_default(self, lint):
        findings = lint(
            {"mod.py": "def f(items=[]):\n    return items\n"}, select=SELECT
        )
        assert [f.rule_id for f in findings] == ["SL003"]
        assert "f()" in findings[0].message

    def test_dict_literal_default(self, rule_ids):
        assert rule_ids({"mod.py": "def f(table={}):\n    pass\n"}, select=SELECT) == [
            "SL003"
        ]

    def test_constructor_call_default(self, rule_ids):
        assert rule_ids(
            {"mod.py": "def f(seen=set()):\n    pass\n"}, select=SELECT
        ) == ["SL003"]

    def test_collections_deque_default(self, rule_ids):
        src = "import collections\ndef f(q=collections.deque()):\n    pass\n"
        assert rule_ids({"mod.py": src}, select=SELECT) == ["SL003"]

    def test_keyword_only_default(self, rule_ids):
        src = "def f(*, buckets=[]):\n    pass\n"
        assert rule_ids({"mod.py": src}, select=SELECT) == ["SL003"]

    def test_method_default(self, rule_ids):
        src = "class C:\n    def m(self, xs=[]):\n        pass\n"
        assert rule_ids({"mod.py": src}, select=SELECT) == ["SL003"]


class TestClean:
    def test_none_sentinel(self, rule_ids):
        src = (
            "def f(items=None):\n"
            "    items = [] if items is None else items\n"
            "    return items\n"
        )
        assert rule_ids({"mod.py": src}, select=SELECT) == []

    def test_immutable_defaults(self, rule_ids):
        src = "def f(n=3, name='x', pair=(1, 2), flag=frozenset()):\n    pass\n"
        # frozenset() is immutable but spelled as a call; ensure tuple/str/int
        # at least stay clean and frozenset is not in the mutable table.
        assert rule_ids({"mod.py": src}, select=SELECT) == []
