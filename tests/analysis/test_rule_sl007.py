"""SL007: mutable module globals mutated from operator/cluster code."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl007"
SELECT = ["SL007"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL007"}
        by_file = sorted(f.relpath for f in findings)
        # bolt: subscript store + .append(); cluster function: subscript
        assert by_file == [
            "cluster/dispatch.py",
            "platform/tally.py",
            "platform/tally.py",
        ]

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_global_rebind_flagged(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "_STATE = {}\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        global _STATE\n"
            "        _STATE = dict(values)\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL007"]
        assert "global rebind" in findings[0].message

    def test_immutable_global_read_clean(self, rule_ids):
        src = (
            "from repro.platform.topology import Bolt\n"
            "_SCALE = 2\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        emit([values[0] * _SCALE])\n"
        )
        assert rule_ids({"platform/b.py": src}, select=SELECT) == []

    def test_non_operator_class_clean(self, rule_ids):
        # a plain class outside cluster/ may keep module-level caches
        src = (
            "_CACHE = {}\n"
            "class Helper:\n"
            "    def remember(self, key, value):\n"
            "        _CACHE[key] = value\n"
        )
        assert rule_ids({"util/helper.py": src}, select=SELECT) == []

    def test_spout_counts_as_operator(self, lint):
        src = (
            "from repro.platform.topology import Spout\n"
            "_EMITTED = []\n"
            "class S(Spout):\n"
            "    def next_tuple(self):\n"
            "        _EMITTED.append(1)\n"
        )
        findings = lint({"platform/s.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL007"]
