"""SL013: pickled batches / numpy arrays through queues in cluster loops."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl013"
SELECT = ["SL013"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL013"}
        messages = [f.message for f in findings]
        assert len(messages) == 3
        assert sum("pickled bytes" in m for m in messages) == 1
        assert sum("pickled inline" in m for m in messages) == 1
        assert sum("numpy array" in m for m in messages) == 1

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_name_bound_to_pickle_dumps_flagged(self, lint):
        src = (
            "import pickle\n"
            "def f(q, batches):\n"
            "    for b in batches:\n"
            "        blob = pickle.dumps(b)\n"
            "        q.put(blob)\n"
        )
        findings = lint({"cluster/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL013"]
        assert "blob" in findings[0].message

    def test_inline_dumps_in_while_loop_flagged(self, lint):
        src = (
            "import pickle\n"
            "def f(q, items):\n"
            "    while items:\n"
            "        q.put(pickle.dumps(items.pop()))\n"
        )
        assert [f.rule_id for f in lint({"cluster/x.py": src}, select=SELECT)] == [
            "SL013"
        ]

    def test_aliased_pickle_flagged(self, lint):
        src = (
            "from pickle import dumps as enc\n"
            "def f(q, items):\n"
            "    for item in items:\n"
            "        q.put(enc(item))\n"
        )
        assert [f.rule_id for f in lint({"cluster/x.py": src}, select=SELECT)] == [
            "SL013"
        ]

    def test_numpy_payload_flagged(self, lint):
        src = (
            "import numpy as np\n"
            "def f(q, n):\n"
            "    for __ in range(n):\n"
            "        arr = np.arange(n)\n"
            "        q.put((0, arr))\n"
        )
        findings = lint({"cluster/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL013"]
        assert "numpy array" in findings[0].message

    def test_control_tuple_clean(self, rule_ids):
        src = (
            "def f(q, epoch, n):\n"
            "    for __ in range(n):\n"
            "        q.put(('frames', epoch))\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_put_outside_loop_clean(self, rule_ids):
        src = (
            "import pickle\n"
            "def f(q, state):\n"
            "    q.put(pickle.dumps(state))\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_other_package_clean(self, rule_ids):
        src = (
            "import pickle\n"
            "def f(q, items):\n"
            "    for item in items:\n"
            "        q.put(pickle.dumps(item))\n"
        )
        assert rule_ids({"platform/x.py": src}, select=SELECT) == []

    def test_suppression_comment_honoured(self, rule_ids):
        src = (
            "import pickle\n"
            "def f(q, batches):\n"
            "    for b in batches:\n"
            "        blob = pickle.dumps(b)\n"
            "        q.put(blob)  # streamlint: disable=SL013 - baseline\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []
