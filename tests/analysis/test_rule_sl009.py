"""SL009: bolt state merge-on-query silently drops."""

from pathlib import Path

from repro.analysis import Severity, analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl009"
SELECT = ["SL009"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert [f.rule_id for f in findings] == ["SL009", "SL009"]
        by_message = {f.severity: f.message for f in findings}
        assert "never overrides snapshot" in by_message[Severity.ERROR]
        assert "plain dict" in by_message[Severity.WARNING]

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_snapshot_in_ancestor_counts(self, rule_ids):
        # snapshot implemented by an intermediate in ANOTHER module covers
        # the concrete subclass (cross-module hierarchy resolution)
        src = {
            "platform/base.py": (
                "from repro.platform.topology import Bolt\n"
                "class SnapshottingBase(Bolt):\n"
                "    def snapshot(self):\n"
                "        return None\n"
            ),
            "platform/child.py": (
                "from platform.base import SnapshottingBase\n"
                "class Child(SnapshottingBase):\n"
                "    def process(self, values, emit):\n"
                "        self.seen = values\n"
            ),
        }
        findings = [r for r in rule_ids(src, select=SELECT)]
        # no class-level error; the mutated attr has unknown type -> quiet
        assert findings == []

    def test_flush_accumulation_counts(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        pass\n"
            "    def flush(self, emit):\n"
            "        self.done = True\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL009"]

    def test_reducer_registered_attr_is_plain_label_exempt(self, rule_ids):
        # class-typed attrs are skipped even when snapshot exposes them
        src = {
            "platform/b.py": (
                "from repro.platform.topology import Bolt\n"
                "from statelib.acc import Acc\n"
                "class B(Bolt):\n"
                "    def __init__(self):\n"
                "        self.acc = Acc()\n"
                "    def process(self, values, emit):\n"
                "        self.acc.update(values)\n"
                "    def snapshot(self):\n"
                "        return self.acc\n"
            ),
            "statelib/acc.py": (
                "from repro.common.serialization import register_reducer\n"
                "class Acc:\n"
                "    def update(self, values):\n"
                "        pass\n"
                "register_reducer(Acc, lambda a: {}, lambda d: Acc())\n"
            ),
        }
        assert rule_ids(src, select=SELECT) == []
