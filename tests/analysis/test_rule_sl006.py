"""SL006: registry drift (concrete synopses the registry never mentions)."""

SELECT = ["SL006"]

_BASE = "from repro.common.mergeable import SynopsisBase\n"

_SKETCH = _BASE + (
    "class NewSketch(SynopsisBase):\n"
    "    def update(self, item):\n"
    "        pass\n"
    "    def _merge_into(self, other):\n"
    "        pass\n"
)


class TestTriggers:
    def test_unregistered_synopsis_flagged(self, lint):
        findings = lint(
            {
                "frequency/new_sketch.py": _SKETCH,
                "core/registry.py": "_REGISTRY = {}\n",
            },
            select=SELECT,
        )
        assert [f.rule_id for f in findings] == ["SL006"]
        assert "NewSketch" in findings[0].message
        assert findings[0].path.endswith("new_sketch.py")

    def test_import_alone_is_not_registration(self, rule_ids):
        registry = "from repro.frequency.new_sketch import NewSketch\n_REGISTRY = {}\n"
        assert rule_ids(
            {
                "frequency/new_sketch.py": _SKETCH,
                "core/registry.py": registry,
            },
            select=SELECT,
        ) == ["SL006"]

    def test_reducer_for_other_class_does_not_whitelist(self, rule_ids):
        # a register_reducer call only covers the class it names
        shipping = (
            "from repro.common.serialization import register_reducer\n"
            "class Other:\n"
            "    pass\n"
            "register_reducer(Other, lambda o: {}, lambda d: Other())\n"
        )
        assert rule_ids(
            {
                "frequency/new_sketch.py": _SKETCH,
                "core/registry.py": "_REGISTRY = {}\n",
                "common/shipping.py": shipping,
            },
            select=SELECT,
        ) == ["SL006"]

    def test_indirect_subclass_flagged(self, rule_ids):
        derived = _SKETCH + (
            "class DerivedSketch(NewSketch):\n"
            "    def query(self):\n"
            "        return 0\n"
        )
        registry = (
            "from repro.frequency.new_sketch import NewSketch\n"
            "TABLE = {'new': NewSketch}\n"
        )
        assert rule_ids(
            {
                "frequency/new_sketch.py": derived,
                "core/registry.py": registry,
            },
            select=SELECT,
        ) == ["SL006"]  # only DerivedSketch drifts


class TestClean:
    def test_registered_by_table_entry(self, rule_ids):
        registry = (
            "from repro.frequency.new_sketch import NewSketch\n"
            "TABLE = {'new_sketch': NewSketch}\n"
        )
        assert (
            rule_ids(
                {
                    "frequency/new_sketch.py": _SKETCH,
                    "core/registry.py": registry,
                },
                select=SELECT,
            )
            == []
        )

    def test_registered_via_classmethod_factory(self, rule_ids):
        registry = (
            "from repro.frequency.new_sketch import NewSketch\n"
            "TABLE = {'new_sketch': NewSketch.from_error}\n"
        )
        assert (
            rule_ids(
                {
                    "frequency/new_sketch.py": _SKETCH,
                    "core/registry.py": registry,
                },
                select=SELECT,
            )
            == []
        )

    def test_registered_via_state_shipping_reducer(self, rule_ids):
        # the cluster state-shipping plane is a registration surface too:
        # a synopsis wired in via register_reducer is constructible from
        # shipped bytes even if the name registry never mentions it
        shipping = (
            "from repro.common.serialization import register_reducer\n"
            "from repro.frequency.new_sketch import NewSketch\n"
            "register_reducer(NewSketch, lambda s: {}, lambda d: NewSketch())\n"
        )
        assert (
            rule_ids(
                {
                    "frequency/new_sketch.py": _SKETCH,
                    "core/registry.py": "_REGISTRY = {}\n",
                    "cluster/shipping.py": shipping,
                },
                select=SELECT,
            )
            == []
        )

    def test_registered_via_qualified_reducer_call(self, rule_ids):
        # serialization.register_reducer(pkg.NewSketch, ...) also counts
        shipping = (
            "from repro.common import serialization\n"
            "from repro import frequency\n"
            "serialization.register_reducer(\n"
            "    frequency.new_sketch.NewSketch, lambda s: {}, lambda d: None\n"
            ")\n"
        )
        assert (
            rule_ids(
                {
                    "frequency/new_sketch.py": _SKETCH,
                    "core/registry.py": "_REGISTRY = {}\n",
                    "cluster/shipping.py": shipping,
                },
                select=SELECT,
            )
            == []
        )

    def test_private_and_abstract_classes_exempt(self, rule_ids):
        src = _BASE + (
            "import abc\n"
            "class _Internal(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
            "class AbstractSketch(SynopsisBase):\n"
            "    @abc.abstractmethod\n"
            "    def query(self):\n"
            "        ...\n"
        )
        assert (
            rule_ids(
                {"frequency/internal.py": src, "core/registry.py": "_REGISTRY = {}\n"},
                select=SELECT,
            )
            == []
        )

    def test_silent_without_registry_module(self, rule_ids):
        # fixture trees with no core/registry.py have nothing to drift from
        assert rule_ids({"frequency/new_sketch.py": _SKETCH}, select=SELECT) == []

    def test_real_tree_is_drift_free(self):
        from repro.analysis import analyze_paths
        from tests.analysis.conftest import REPO_ROOT

        findings = analyze_paths([REPO_ROOT / "src" / "repro"], select=["SL006"])
        assert findings == []
