"""SL006: registry drift (concrete synopses the registry never mentions)."""

SELECT = ["SL006"]

_BASE = "from repro.common.mergeable import SynopsisBase\n"

_SKETCH = _BASE + (
    "class NewSketch(SynopsisBase):\n"
    "    def update(self, item):\n"
    "        pass\n"
    "    def _merge_into(self, other):\n"
    "        pass\n"
)


class TestTriggers:
    def test_unregistered_synopsis_flagged(self, lint):
        findings = lint(
            {
                "frequency/new_sketch.py": _SKETCH,
                "core/registry.py": "_REGISTRY = {}\n",
            },
            select=SELECT,
        )
        assert [f.rule_id for f in findings] == ["SL006"]
        assert "NewSketch" in findings[0].message
        assert findings[0].path.endswith("new_sketch.py")

    def test_import_alone_is_not_registration(self, rule_ids):
        registry = "from repro.frequency.new_sketch import NewSketch\n_REGISTRY = {}\n"
        assert rule_ids(
            {
                "frequency/new_sketch.py": _SKETCH,
                "core/registry.py": registry,
            },
            select=SELECT,
        ) == ["SL006"]

    def test_indirect_subclass_flagged(self, rule_ids):
        derived = _SKETCH + (
            "class DerivedSketch(NewSketch):\n"
            "    def query(self):\n"
            "        return 0\n"
        )
        registry = (
            "from repro.frequency.new_sketch import NewSketch\n"
            "TABLE = {'new': NewSketch}\n"
        )
        assert rule_ids(
            {
                "frequency/new_sketch.py": derived,
                "core/registry.py": registry,
            },
            select=SELECT,
        ) == ["SL006"]  # only DerivedSketch drifts


class TestClean:
    def test_registered_by_table_entry(self, rule_ids):
        registry = (
            "from repro.frequency.new_sketch import NewSketch\n"
            "TABLE = {'new_sketch': NewSketch}\n"
        )
        assert (
            rule_ids(
                {
                    "frequency/new_sketch.py": _SKETCH,
                    "core/registry.py": registry,
                },
                select=SELECT,
            )
            == []
        )

    def test_registered_via_classmethod_factory(self, rule_ids):
        registry = (
            "from repro.frequency.new_sketch import NewSketch\n"
            "TABLE = {'new_sketch': NewSketch.from_error}\n"
        )
        assert (
            rule_ids(
                {
                    "frequency/new_sketch.py": _SKETCH,
                    "core/registry.py": registry,
                },
                select=SELECT,
            )
            == []
        )

    def test_private_and_abstract_classes_exempt(self, rule_ids):
        src = _BASE + (
            "import abc\n"
            "class _Internal(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
            "class AbstractSketch(SynopsisBase):\n"
            "    @abc.abstractmethod\n"
            "    def query(self):\n"
            "        ...\n"
        )
        assert (
            rule_ids(
                {"frequency/internal.py": src, "core/registry.py": "_REGISTRY = {}\n"},
                select=SELECT,
            )
            == []
        )

    def test_silent_without_registry_module(self, rule_ids):
        # fixture trees with no core/registry.py have nothing to drift from
        assert rule_ids({"frequency/new_sketch.py": _SKETCH}, select=SELECT) == []

    def test_real_tree_is_drift_free(self):
        from repro.analysis import analyze_paths
        from tests.analysis.conftest import REPO_ROOT

        findings = analyze_paths([REPO_ROOT / "src" / "repro"], select=["SL006"])
        assert findings == []
