"""SL008: operator state serialization v2 cannot ship."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl008"
SELECT = ["SL008"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL008"}
        messages = " | ".join(f.message for f in findings)
        assert "threading.Lock" in messages
        assert "queue.Queue" in messages
        assert "iterator" in messages
        assert len(findings) == 3

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_open_file_state_flagged(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def __init__(self, path):\n"
            "        self.sink = open(path)\n"
            "    def process(self, values, emit):\n"
            "        pass\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL008"]
        assert "open file" in findings[0].message

    def test_unknown_type_not_flagged(self, rule_ids):
        # no positive evidence -> no finding (the rule must stay quiet on
        # attributes whose type it cannot infer)
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def __init__(self, thing):\n"
            "        self.thing = thing\n"
            "    def process(self, values, emit):\n"
            "        pass\n"
        )
        assert rule_ids({"platform/b.py": src}, select=SELECT) == []

    def test_project_class_state_clean(self, rule_ids):
        src = {
            "sketchlib/mini.py": (
                "from repro.common.mergeable import SynopsisBase\n"
                "class Mini(SynopsisBase):\n"
                "    def update(self, item):\n"
                "        pass\n"
                "    def _merge_into(self, other):\n"
                "        pass\n"
            ),
            "platform/b.py": (
                "from repro.platform.topology import Bolt\n"
                "from sketchlib.mini import Mini\n"
                "class B(Bolt):\n"
                "    def __init__(self):\n"
                "        self.sketch = Mini()\n"
                "    def process(self, values, emit):\n"
                "        pass\n"
            ),
        }
        assert rule_ids(src, select=SELECT) == []

    def test_abstract_operator_exempt(self, rule_ids):
        src = (
            "import abc\n"
            "import threading\n"
            "from repro.platform.topology import Bolt\n"
            "class Base(Bolt):\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
            "    @abc.abstractmethod\n"
            "    def handle(self, values):\n"
            "        ...\n"
        )
        assert rule_ids({"platform/base.py": src}, select=SELECT) == []
