"""SL004: wall-clock reads outside platform/."""

SELECT = ["SL004"]


class TestTriggers:
    def test_time_time_in_algorithm_module(self, lint):
        src = "import time\nstamp = time.time()\n"
        findings = lint({"windowing/decay.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL004"]
        assert "time.time" in findings[0].message

    def test_datetime_now(self, rule_ids):
        src = "import datetime\nnow = datetime.datetime.now()\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL004"]

    def test_from_import_datetime_now(self, rule_ids):
        src = "from datetime import datetime\nnow = datetime.now()\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL004"]

    def test_perf_counter_from_import(self, rule_ids):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL004"]

    def test_obs_like_name_elsewhere_still_flagged(self, rule_ids):
        # the exemption is the top-level obs/ package, not any path
        # containing the substring
        src = "import time\nstamp = time.time()\n"
        files = {"myobs/clock.py": src, "frequency/obs_helper.py": src}
        assert rule_ids(files, select=SELECT) == ["SL004", "SL004"]

    def test_cluster_like_name_elsewhere_still_flagged(self, rule_ids):
        # clustering *algorithms* (stream k-means etc.) get no free pass;
        # only the top-level cluster/ runtime package is exempt
        src = "import time\nstamp = time.monotonic()\n"
        files = {"clustering/kmeans.py": src, "windowing/cluster_helper.py": src}
        assert rule_ids(files, select=SELECT) == ["SL004", "SL004"]


class TestClean:
    def test_platform_layer_may_read_clock(self, rule_ids):
        src = "import time\nstarted = time.perf_counter()\n"
        assert rule_ids({"platform/executor.py": src}, select=SELECT) == []

    def test_bench_harness_may_read_clock(self, rule_ids):
        # the throughput bench measures wall time by definition
        src = "import time\nstart = time.perf_counter()\n"
        assert rule_ids({"bench/runner.py": src}, select=SELECT) == []

    def test_obs_layer_may_read_clock(self, rule_ids):
        # span timing / queue-wait accounting is the observability plane's job
        src = "import time\nstart = time.perf_counter()\n"
        assert rule_ids({"obs/tracing.py": src}, select=SELECT) == []

    def test_cluster_runtime_may_read_clock(self, rule_ids):
        # reply deadlines / liveness heartbeats are about real elapsed time
        src = (
            "import time\n"
            "deadline = time.perf_counter() + 30.0\n"
            "while time.perf_counter() < deadline:\n"
            "    pass\n"
        )
        assert rule_ids({"cluster/coordinator.py": src}, select=SELECT) == []

    def test_event_time_parameter(self, rule_ids):
        src = (
            "def update(self, item, timestamp):\n"
            "    self.last_seen = timestamp\n"
        )
        assert rule_ids({"windowing/session.py": src}, select=SELECT) == []

    def test_unrelated_time_attribute(self, rule_ids):
        # an object attribute called .time() is not the stdlib clock
        src = "def f(event):\n    return event.time()\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == []
