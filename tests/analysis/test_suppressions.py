"""Inline ``# streamlint: disable=...`` suppression handling."""

from repro.analysis.suppressions import SuppressionIndex


class TestLineSuppressions:
    def test_same_line_suppresses(self, rule_ids):
        src = "import random\nx = random.random()  # streamlint: disable=SL001\n"
        assert rule_ids({"mod.py": src}, select=["SL001"]) == []

    def test_other_rule_not_suppressed(self, rule_ids):
        src = "def f(xs=[]):  # streamlint: disable=SL001\n    pass\n"
        assert rule_ids({"mod.py": src}, select=["SL003"]) == ["SL003"]

    def test_multiple_rules_comma_separated(self, rule_ids):
        src = (
            "import random\n"
            "def f(xs=[], y=random.random()):  # streamlint: disable=SL001,SL003\n"
            "    pass\n"
        )
        assert rule_ids({"mod.py": src}) == []

    def test_all_keyword(self, rule_ids):
        src = "import random\nx = random.random()  # streamlint: disable=all\n"
        assert rule_ids({"mod.py": src}) == []

    def test_wrong_line_does_not_suppress(self, rule_ids):
        src = (
            "# streamlint: disable=SL001\n"
            "import random\n"
            "x = random.random()\n"
        )
        assert rule_ids({"mod.py": src}, select=["SL001"]) == ["SL001"]


class TestFileSuppressions:
    def test_disable_file(self, rule_ids):
        src = (
            "# streamlint: disable-file=SL001\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.randint(0, 3)\n"
        )
        assert rule_ids({"mod.py": src}, select=["SL001"]) == []

    def test_disable_file_scoped_to_one_module(self, rule_ids):
        clean = "# streamlint: disable-file=SL001\nimport random\nx = random.random()\n"
        dirty = "import random\ny = random.random()\n"
        assert rule_ids(
            {"a.py": clean, "b.py": dirty}, select=["SL001"]
        ) == ["SL001"]


class TestIndexParsing:
    def test_directive_inside_string_ignored(self):
        index = SuppressionIndex.from_source(
            's = "# streamlint: disable=SL001"\n'
        )
        assert not index.is_suppressed("SL001", 1)

    def test_case_insensitive_rule_ids(self):
        index = SuppressionIndex.from_source("x = 1  # streamlint: disable=sl001\n")
        assert index.is_suppressed("SL001", 1)

    def test_unparsable_source_yields_empty_index(self):
        index = SuppressionIndex.from_source("def broken(:\n")
        assert not index.is_suppressed("SL001", 1)


class TestProjectScopeSuppressionRouting:
    """Project-rule findings are suppressed via the module they point at.

    Regression for the v1 engine, which keyed project-scope suppression
    lookup on the context that *produced* the finding — findings a project
    rule attributed to a different module than the one carrying the
    pragma were unsuppressible.
    """

    _SKETCH = (
        "from repro.common.mergeable import SynopsisBase\n"
        "class NewSketch(SynopsisBase):  # streamlint: disable=SL006\n"
        "    def update(self, item):\n"
        "        pass\n"
        "    def _merge_into(self, other):\n"
        "        pass\n"
    )

    def test_line_pragma_in_flagged_module(self, rule_ids):
        files = {
            "frequency/new_sketch.py": self._SKETCH,
            "core/registry.py": "_REGISTRY = {}\n",
        }
        assert rule_ids(files, select=["SL006"]) == []

    def test_file_pragma_in_flagged_module(self, rule_ids):
        sketch = "# streamlint: disable-file=SL006\n" + self._SKETCH.replace(
            "  # streamlint: disable=SL006", ""
        )
        files = {
            "frequency/new_sketch.py": sketch,
            "core/registry.py": "_REGISTRY = {}\n",
        }
        assert rule_ids(files, select=["SL006"]) == []

    def test_pragma_in_evidence_module_does_not_leak(self, rule_ids):
        # the registry module provides the evidence, but a pragma there
        # must not silence the finding in the sketch's module
        sketch = self._SKETCH.replace("  # streamlint: disable=SL006", "")
        files = {
            "frequency/new_sketch.py": sketch,
            "core/registry.py": (
                "# streamlint: disable-file=SL006\n_REGISTRY = {}\n"
            ),
        }
        assert rule_ids(files, select=["SL006"]) == ["SL006"]

    def test_cross_module_hierarchy_finding_suppressible(self, rule_ids):
        # SL002's batch contract resolves the hierarchy across modules;
        # the finding lands (and is suppressible) in the subclass module
        base = (
            "from repro.common.mergeable import SynopsisBase\n"
            "import abc\n"
            "class Base(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
            "    @abc.abstractmethod\n"
            "    def query(self):\n"
            "        ...\n"
        )
        child = (
            "from sketchlib.base import Base\n"
            "class Child(Base):\n"
            "    def query(self):\n"
            "        return 0\n"
            "    def update_many(self, items):  # streamlint: disable=SL002\n"
            "        self.total = len(items)\n"
        )
        files = {"sketchlib/base.py": base, "sketchlib/child.py": child}
        assert rule_ids(files, select=["SL002"]) == []
