"""Inline ``# streamlint: disable=...`` suppression handling."""

from repro.analysis.suppressions import SuppressionIndex


class TestLineSuppressions:
    def test_same_line_suppresses(self, rule_ids):
        src = "import random\nx = random.random()  # streamlint: disable=SL001\n"
        assert rule_ids({"mod.py": src}, select=["SL001"]) == []

    def test_other_rule_not_suppressed(self, rule_ids):
        src = "def f(xs=[]):  # streamlint: disable=SL001\n    pass\n"
        assert rule_ids({"mod.py": src}, select=["SL003"]) == ["SL003"]

    def test_multiple_rules_comma_separated(self, rule_ids):
        src = (
            "import random\n"
            "def f(xs=[], y=random.random()):  # streamlint: disable=SL001,SL003\n"
            "    pass\n"
        )
        assert rule_ids({"mod.py": src}) == []

    def test_all_keyword(self, rule_ids):
        src = "import random\nx = random.random()  # streamlint: disable=all\n"
        assert rule_ids({"mod.py": src}) == []

    def test_wrong_line_does_not_suppress(self, rule_ids):
        src = (
            "# streamlint: disable=SL001\n"
            "import random\n"
            "x = random.random()\n"
        )
        assert rule_ids({"mod.py": src}, select=["SL001"]) == ["SL001"]


class TestFileSuppressions:
    def test_disable_file(self, rule_ids):
        src = (
            "# streamlint: disable-file=SL001\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.randint(0, 3)\n"
        )
        assert rule_ids({"mod.py": src}, select=["SL001"]) == []

    def test_disable_file_scoped_to_one_module(self, rule_ids):
        clean = "# streamlint: disable-file=SL001\nimport random\nx = random.random()\n"
        dirty = "import random\ny = random.random()\n"
        assert rule_ids(
            {"a.py": clean, "b.py": dirty}, select=["SL001"]
        ) == ["SL001"]


class TestIndexParsing:
    def test_directive_inside_string_ignored(self):
        index = SuppressionIndex.from_source(
            's = "# streamlint: disable=SL001"\n'
        )
        assert not index.is_suppressed("SL001", 1)

    def test_case_insensitive_rule_ids(self):
        index = SuppressionIndex.from_source("x = 1  # streamlint: disable=sl001\n")
        assert index.is_suppressed("SL001", 1)

    def test_unparsable_source_yields_empty_index(self):
        index = SuppressionIndex.from_source("def broken(:\n")
        assert not index.is_suppressed("SL001", 1)
