"""SL014: unthrottled telemetry exports in cluster loops."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl014"
SELECT = ["SL014"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL014"}
        messages = [f.message for f in findings]
        assert len(messages) == 3
        assert sum("export_obs()" in m for m in messages) == 1
        assert sum("export_metrics()" in m for m in messages) == 1
        assert sum("export_spans()" in m for m in messages) == 1

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_export_in_while_loop_flagged(self, lint):
        src = (
            "def f(worker, results):\n"
            "    while True:\n"
            "        results.put(worker.export_obs())\n"
        )
        findings = lint({"cluster/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL014"]
        assert "maybe_flush_telemetry" in findings[0].message

    def test_bare_call_in_for_loop_flagged(self, lint):
        src = (
            "def f(registry, sink, frames):\n"
            "    for frame in frames:\n"
            "        sink.append(export_metrics(registry))\n"
        )
        assert [f.rule_id for f in lint({"cluster/x.py": src}, select=SELECT)] == [
            "SL014"
        ]

    def test_gated_function_exempt(self, rule_ids):
        src = (
            "def maybe_ship_telemetry(worker, results, pending):\n"
            "    while pending:\n"
            "        results.put(worker.export_obs())\n"
            "        pending -= 1\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_nested_gated_helper_exempt(self, rule_ids):
        src = (
            "def run(worker, results):\n"
            "    while worker.alive:\n"
            "        def maybe_flush():\n"
            "            results.put(worker.export_obs())\n"
            "        maybe_flush()\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_export_outside_loop_clean(self, rule_ids):
        src = (
            "def f(worker, results, worker_id):\n"
            "    results.put(('stopped', worker_id, worker.export_obs()))\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_other_package_clean(self, rule_ids):
        src = (
            "def f(worker, sink):\n"
            "    while True:\n"
            "        sink.append(worker.export_obs())\n"
        )
        assert rule_ids({"obs/x.py": src}, select=SELECT) == []

    def test_unrelated_calls_clean(self, rule_ids):
        src = (
            "def f(worker, results):\n"
            "    while True:\n"
            "        results.put(worker.maybe_flush_telemetry())\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_suppression_comment_honoured(self, rule_ids):
        src = (
            "def f(worker, results):\n"
            "    while True:\n"
            "        results.put(worker.export_obs())  # streamlint: disable=SL014 - probe\n"
        )
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []
