"""SL016: synopsis split contract and migration-barrier discipline."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl016"
SELECT = ["SL016"]

SYNOPSIS_PREAMBLE = """\
class SynopsisBase:
    pass
"""


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL016"}
        messages = [f.message for f in findings]
        assert sum("no _merge_into" in m for m in messages) == 1
        assert sum("mutates self" in m for m in messages) == 1
        assert sum("call to migration surgery" in m for m in messages) == 1
        assert sum("migration state surgery" in m for m in messages) == 1

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestSplitContract:
    def test_split_without_merge_flagged(self, lint):
        src = SYNOPSIS_PREAMBLE + (
            "class S(SynopsisBase):\n"
            "    def _split_into(self, n):\n"
            "        return [S() for _ in range(n)]\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL016"]
        assert "no _merge_into" in findings[0].message

    def test_split_mutating_self_flagged(self, lint):
        src = SYNOPSIS_PREAMBLE + (
            "class S(SynopsisBase):\n"
            "    def _merge_into(self, other):\n"
            "        pass\n"
            "    def _split_into(self, n):\n"
            "        self._values = []\n"
            "        return [S() for _ in range(n)]\n"
        )
        findings = lint({"sketch.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL016"]
        assert "mutates self" in findings[0].message

    def test_merge_inherited_across_modules_clean(self, rule_ids):
        base = SYNOPSIS_PREAMBLE + (
            "class MergeableBase(SynopsisBase):\n"
            "    def _merge_into(self, other):\n"
            "        raise NotImplementedError\n"
        )
        child = (
            "from base import MergeableBase\n"
            "class S(MergeableBase):\n"
            "    def _split_into(self, n):\n"
            "        return [S() for _ in range(n)]\n"
        )
        assert rule_ids({"base.py": base, "child.py": child}, select=SELECT) == []

    def test_merge_only_from_root_not_enough(self, rule_ids):
        # _merge_into defined only on the stop root does not count as the
        # inverse: the subclass split still has nothing below the root.
        src = (
            "class SynopsisBase:\n"
            "    def _merge_into(self, other):\n"
            "        raise NotImplementedError\n"
            "class S(SynopsisBase):\n"
            "    def _split_into(self, n):\n"
            "        return [S() for _ in range(n)]\n"
        )
        assert rule_ids({"sketch.py": src}, select=SELECT) == ["SL016"]

    def test_non_synopsis_class_out_of_scope(self, rule_ids):
        src = (
            "class Planner:\n"
            "    def _split_into(self, n):\n"
            "        self._parts = n\n"
        )
        assert rule_ids({"planner.py": src}, select=SELECT) == []


class TestBarrierDiscipline:
    UNGUARDED = """\
    def _capture_all(executor):
        executor.inbox.put(("snapshot", 1))
        return executor.collect()

    def rescale(executor):
        return _capture_all(executor)
    """

    def test_unguarded_helper_call_flagged(self, lint):
        findings = lint(
            {"elastic/migrate.py": self.UNGUARDED}, select=SELECT
        )
        assert [f.rule_id for f in findings] == ["SL016"]
        assert "_capture_all" in findings[0].message

    def test_guarded_helper_call_clean(self, rule_ids):
        src = (
            "from contextlib import contextmanager\n"
            "@contextmanager\n"
            "def migration_barrier(executor):\n"
            "    yield\n"
            "def _capture_all(executor):\n"
            "    executor.inbox.put((\"snapshot\", 1))\n"
            "def rescale(executor):\n"
            "    with migration_barrier(executor):\n"
            "        _capture_all(executor)\n"
        )
        assert rule_ids({"elastic/migrate.py": src}, select=SELECT) == []

    def test_orchestrator_surgery_after_barrier_flagged(self, lint):
        src = (
            "from contextlib import contextmanager\n"
            "@contextmanager\n"
            "def migration_barrier(executor):\n"
            "    yield\n"
            "def rescale(executor, merged, shard):\n"
            "    with migration_barrier(executor):\n"
            "        executor.quiesce()\n"
            "    merged.merge(shard)\n"
        )
        findings = lint({"elastic/migrate.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL016"]
        assert ".merge()" in findings[0].message

    def test_outside_elastic_package_out_of_scope(self, rule_ids):
        assert (
            rule_ids({"cluster/migrate.py": self.UNGUARDED}, select=SELECT)
            == []
        )

    def test_string_split_not_surgery(self, rule_ids):
        src = "def trajectory():\n    return \"1 2 4\".split()\n"
        assert rule_ids({"elastic/report.py": src}, select=SELECT) == []

    def test_suppression_honoured(self, rule_ids):
        src = (
            "def _capture_all(executor):\n"
            "    executor.inbox.put((\"snapshot\", 1))\n"
            "def rescale(executor):\n"
            "    return _capture_all(executor)  # streamlint: disable=SL016\n"
        )
        assert rule_ids({"elastic/migrate.py": src}, select=SELECT) == []
