"""Shared fixtures for the streamlint test suite.

``lint`` writes a dict of ``relpath -> source`` fixture files into a tmp
tree and runs the engine over it, optionally narrowed to one rule — every
rule test builds on it with one triggering and one clean snippet.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths


@pytest.fixture
def lint(tmp_path):
    """Write fixture modules and lint them: ``lint({"mod.py": src}, select=["SL001"])``."""

    def _lint(files: dict[str, str], select=None, ignore=None):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return analyze_paths([tmp_path], select=select, ignore=ignore)

    return _lint


@pytest.fixture
def rule_ids(lint):
    """Like ``lint`` but returns just the sorted rule-id list of findings."""

    def _rule_ids(files: dict[str, str], select=None):
        return sorted(f.rule_id for f in lint(files, select=select))

    return _rule_ids


REPO_ROOT = Path(__file__).resolve().parents[2]
