"""Engine behaviour: selection, syntax errors, finding ordering."""

import pytest

from repro.analysis import Finding, Severity, all_rules, analyze_paths
from repro.analysis.engine import SYNTAX_ERROR_RULE


class TestRuleTable:
    def test_all_six_rules_registered(self):
        assert set(all_rules()) >= {f"SL00{i}" for i in range(1, 7)}

    def test_rules_have_identity(self):
        for rule_id, cls in all_rules().items():
            assert cls.rule_id == rule_id
            assert cls.description
            assert cls.scope in ("module", "project")


class TestSelection:
    def test_select_narrows(self, lint):
        files = {"mod.py": "import random\ndef f(xs=[]):\n    return random.random()\n"}
        assert {f.rule_id for f in lint(files)} == {"SL001", "SL003"}
        assert {f.rule_id for f in lint(files, select=["SL003"])} == {"SL003"}

    def test_ignore_drops(self, lint):
        files = {"mod.py": "import random\ndef f(xs=[]):\n    return random.random()\n"}
        assert {f.rule_id for f in lint(files, ignore=["SL001"])} == {"SL003"}

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            analyze_paths([tmp_path], select=["SL999"])


class TestRobustness:
    def test_syntax_error_becomes_sl000(self, lint):
        findings = lint({"broken.py": "def broken(:\n", "ok.py": "x = 1\n"})
        assert [f.rule_id for f in findings] == [SYNTAX_ERROR_RULE]
        assert findings[0].severity is Severity.ERROR

    def test_syntax_error_does_not_hide_other_findings(self, lint):
        findings = lint(
            {"broken.py": "def broken(:\n", "bad.py": "def f(xs=[]):\n    pass\n"}
        )
        assert sorted(f.rule_id for f in findings) == [SYNTAX_ERROR_RULE, "SL003"]

    def test_findings_sorted_by_location(self, lint):
        files = {
            "b.py": "def f(xs=[]):\n    pass\n",
            "a.py": "def g(ys={}):\n    pass\ndef h(zs=[]):\n    pass\n",
        }
        findings = lint(files)
        assert findings == sorted(findings)
        assert findings[0].path.endswith("a.py")


class TestFinding:
    def test_format_and_dict(self):
        f = Finding(
            path="src/x.py",
            line=3,
            col=4,
            rule_id="SL001",
            severity=Severity.ERROR,
            message="boom",
        )
        assert f.format() == "src/x.py:3:4: SL001 error: boom"
        assert f.to_dict()["rule"] == "SL001"
        assert f.to_dict()["severity"] == "error"
