"""The self-clean gate: ``src/repro`` must stay streamlint-clean.

This is the enforcement half of the tentpole — the rules exist so the
tree *provably* keeps its reproducibility and scale-out conventions. Any
new direct randomness, unmergeable synopsis, mutable default, algorithm
wall-clock read, swallowed exception, or unregistered sketch fails this
test with the exact ``file:line`` to fix (or to annotate with
``# streamlint: disable=RULE`` plus a justification).
"""

from repro.analysis import analyze_paths
from tests.analysis.conftest import REPO_ROOT

SRC = REPO_ROOT / "src" / "repro"


def test_source_tree_is_streamlint_clean():
    findings = analyze_paths([SRC])
    report = "\n".join(f.format() for f in findings)
    assert not findings, f"streamlint findings in src/repro:\n{report}"


def test_source_tree_scan_covers_whole_package():
    # guard against the gate silently scanning the wrong directory
    assert (SRC / "common" / "rng.py").exists()
    assert (SRC / "core" / "registry.py").exists()
    assert (SRC / "analysis" / "engine.py").exists()
