"""The self-clean gate: ``src/repro`` must stay streamlint-clean.

This is the enforcement half of the tentpole — the rules exist so the
tree *provably* keeps its reproducibility and scale-out conventions. Any
new direct randomness, unmergeable synopsis, mutable default, algorithm
wall-clock read, swallowed exception, unregistered sketch, per-process
global, unshippable or unmergeable operator state, blocking cluster
call, nondeterministic state path, unbounded metric label,
event-loop-stalling serving call, inverse-less synopsis split, or
un-barriered migration surgery fails this test with the exact
``file:line`` to fix (or to annotate with
``# streamlint: disable=RULE`` plus a justification, or to accept in
``.streamlint-baseline.json``).
"""

from repro.analysis import all_rules, run_analysis
from repro.analysis.baseline import load_baseline
from tests.analysis.conftest import REPO_ROOT

SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / ".streamlint-baseline.json"


def test_source_tree_is_streamlint_clean():
    baseline = load_baseline(BASELINE)
    result = run_analysis([SRC], baseline=baseline)
    report = "\n".join(f.format() for f in result.findings)
    assert not result.findings, f"streamlint findings in src/repro:\n{report}"


def test_full_v2_rule_set_runs_over_src():
    # the gate must exercise every registered rule, not a legacy subset
    assert set(all_rules()) >= {f"SL{i:03d}" for i in range(1, 17)}
    result = run_analysis([SRC], baseline=load_baseline(BASELINE))
    assert result.file_count > 100  # whole tree scanned, not a subdir


def test_baseline_is_honest():
    # every baseline entry must match a real current finding at its real
    # count — the baseline only carries debt that still exists, so fixing
    # a finding forces the baseline entry to be deleted with it
    result = run_analysis([SRC])
    actual: dict[str, int] = {}
    for finding in result.findings:
        key = finding.baseline_key()
        actual[key] = actual.get(key, 0) + 1
    assert load_baseline(BASELINE) == actual


def test_source_tree_scan_covers_whole_package():
    # guard against the gate silently scanning the wrong directory
    assert (SRC / "common" / "rng.py").exists()
    assert (SRC / "core" / "registry.py").exists()
    assert (SRC / "analysis" / "engine.py").exists()
    assert (SRC / "cluster" / "worker.py").exists()
