"""SL011: nondeterminism reaching checkpointed state."""

from pathlib import Path

from repro.analysis import Severity, analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl011"
SELECT = ["SL011"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL011"}
        assert len(findings) == 3
        by_severity = {f.severity for f in findings}
        assert by_severity == {Severity.ERROR, Severity.WARNING}
        messages = " | ".join(f.message for f in findings)
        assert "id()" in messages
        assert "iterates self.tags" in messages
        assert "pops from self.tags" in messages

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_id_in_bolt_method_flagged(self, lint):
        src = (
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def process(self, values, emit):\n"
            "        self.key = id(values)\n"
        )
        findings = lint({"platform/b.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL011"]
        assert findings[0].severity is Severity.ERROR

    def test_set_attr_typed_in_other_module_base(self, lint):
        # attribute established by a base __init__ in another module is
        # still known to be a set when the subclass iterates it
        src = {
            "sketchlib/base.py": (
                "from repro.common.mergeable import SynopsisBase\n"
                "class BaseSketch(SynopsisBase):\n"
                "    def __init__(self):\n"
                "        self.keys = set()\n"
                "    def update(self, item):\n"
                "        self.keys.add(item)\n"
                "    def _merge_into(self, other):\n"
                "        pass\n"
            ),
            "sketchlib/child.py": (
                "from sketchlib.base import BaseSketch\n"
                "class ChildSketch(BaseSketch):\n"
                "    def digest(self):\n"
                "        out = []\n"
                "        for key in self.keys:\n"
                "            out.append(key)\n"
                "        return out\n"
            ),
        }
        findings = lint(src, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL011"]
        assert findings[0].relpath == "sketchlib/child.py"

    def test_plain_class_out_of_scope(self, rule_ids):
        src = "class Plain:\n    def key(self):\n        return id(self)\n"
        assert rule_ids({"util/plain.py": src}, select=SELECT) == []

    def test_dict_iteration_clean(self, rule_ids):
        # dicts preserve insertion order; only sets are flagged
        src = (
            "from repro.common.mergeable import SynopsisBase\n"
            "class S(SynopsisBase):\n"
            "    def __init__(self):\n"
            "        self.counts = {}\n"
            "    def update(self, item):\n"
            "        self.counts[item] = 1\n"
            "    def _merge_into(self, other):\n"
            "        for key in self.counts:\n"
            "            other.counts[key] = self.counts[key]\n"
        )
        assert rule_ids({"sketchlib/s.py": src}, select=SELECT) == []
