"""SL001: unseeded / process-global randomness."""

SELECT = ["SL001"]


class TestTriggers:
    def test_global_random_call(self, lint):
        findings = lint(
            {"algo.py": "import random\nx = random.random()\n"}, select=SELECT
        )
        assert [f.rule_id for f in findings] == ["SL001"]
        assert findings[0].line == 2
        assert "random.random" in findings[0].message

    def test_numpy_global_via_alias(self, rule_ids):
        src = "import numpy as np\nv = np.random.rand(4)\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL001"]

    def test_from_import_randint(self, rule_ids):
        src = "from random import randint\nn = randint(0, 9)\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL001"]

    def test_unseeded_constructor(self, rule_ids):
        src = "import random\nrng = random.Random()\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL001"]

    def test_unseeded_default_rng(self, rule_ids):
        src = "import numpy as np\ngen = np.random.default_rng()\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL001"]

    def test_np_random_seed_global_mutation(self, rule_ids):
        src = "import numpy as np\nnp.random.seed(7)\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == ["SL001"]


class TestClean:
    def test_make_rng_convention(self, rule_ids):
        src = (
            "from repro.common.rng import make_rng\n"
            "def build(seed):\n"
            "    return make_rng(seed)\n"
        )
        assert rule_ids({"algo.py": src}, select=SELECT) == []

    def test_seeded_constructor_allowed(self, rule_ids):
        src = "import random\nrng = random.Random(42)\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == []

    def test_seeded_default_rng_allowed(self, rule_ids):
        src = "import numpy as np\ngen = np.random.default_rng(seed=3)\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == []

    def test_rng_module_itself_exempt(self, rule_ids):
        src = "import random\n\ndef make_rng(seed):\n    return random.Random(seed)\n"
        assert rule_ids({"common/rng.py": src}, select=SELECT) == []

    def test_local_variable_named_random_not_confused(self, rule_ids):
        # `random` here is a local object, not the stdlib module.
        src = "random = object()\nx = getattr(random, 'random', None)\n"
        assert rule_ids({"algo.py": src}, select=SELECT) == []
