"""SL010: blocking calls in cluster worker/coordinator code."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl010"
SELECT = ["SL010"]


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL010"}
        messages = [f.message for f in findings]
        assert sum("time.sleep" in m for m in messages) == 1
        assert sum("without a timeout" in m for m in messages) == 2

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_block_true_keyword_flagged(self, lint):
        src = "def f(q):\n    return q.get(block=True)\n"
        findings = lint({"cluster/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL010"]

    def test_aliased_sleep_flagged(self, lint):
        src = "from time import sleep\ndef f():\n    sleep(1)\n"
        findings = lint({"cluster/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL010"]

    def test_timeout_keyword_clean(self, rule_ids):
        src = "def f(q):\n    return q.get(True, timeout=0.5)\n"
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []

    def test_dict_get_with_default_clean(self, rule_ids):
        src = "def f(d, k):\n    return d.get(k, None)\n"
        assert rule_ids({"cluster/x.py": src}, select=SELECT) == []
