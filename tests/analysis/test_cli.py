"""The repro-lint CLI: exit codes, formats, rule listing."""

import json

from repro.analysis.cli import main


def _write(tmp_path, name, source):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", "def f(xs=[]):\n    pass\n")
        assert main([str(tmp_path)]) == 1
        assert "SL003" in capsys.readouterr().out

    def test_exit_zero_flag(self, tmp_path):
        _write(tmp_path, "bad.py", "def f(xs=[]):\n    pass\n")
        assert main([str(tmp_path), "--exit-zero"]) == 0

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(tmp_path), "--select", "SL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestOutput:
    def test_json_format(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", "import random\nx = random.random()\n")
        assert main([str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["by_rule"] == {"SL001": 1}

    def test_select_flag(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", "import random\ndef f(xs=[]):\n    return random.random()\n")
        assert main([str(tmp_path), "--select", "SL001", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["summary"]["by_rule"]) == {"SL001"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006"):
            assert rule_id in out
