"""SL015: blocking synchronous calls inside async def in serving code."""

from pathlib import Path

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "sl015"
SELECT = ["SL015"]

POS = """\
import time
async def f():
    time.sleep(0.1)
"""


class TestFixtures:
    def test_pos_tree_flagged(self):
        findings = analyze_paths([FIXTURES / "pos"], select=SELECT)
        assert {f.rule_id for f in findings} == {"SL015"}
        messages = [f.message for f in findings]
        assert sum("time.sleep" in m for m in messages) == 1
        assert sum("without a timeout" in m for m in messages) == 1
        assert sum("socket.create_connection" in m for m in messages) == 1
        assert sum("file open()" in m for m in messages) == 1

    def test_neg_tree_clean(self):
        assert analyze_paths([FIXTURES / "neg"], select=SELECT) == []


class TestUnits:
    def test_sleep_in_coroutine_flagged(self, lint):
        findings = lint({"serving/x.py": POS}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL015"]

    def test_aliased_sleep_flagged(self, lint):
        src = "from time import sleep\nasync def f():\n    sleep(1)\n"
        findings = lint({"serving/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL015"]

    def test_sync_def_out_of_scope(self, rule_ids):
        src = "import time\ndef f():\n    time.sleep(0.1)\n"
        assert rule_ids({"serving/x.py": src}, select=SELECT) == []

    def test_outside_serving_out_of_scope(self, rule_ids):
        assert rule_ids({"platform/x.py": POS}, select=SELECT) == []

    def test_subprocess_flagged(self, lint):
        src = "import subprocess\nasync def f():\n    subprocess.run(['ls'])\n"
        findings = lint({"serving/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL015"]

    def test_bare_get_in_coroutine_flagged(self, lint):
        src = "async def f(q):\n    return q.get()\n"
        findings = lint({"serving/x.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL015"]

    def test_asyncio_sleep_clean(self, rule_ids):
        src = "import asyncio\nasync def f():\n    await asyncio.sleep(0.1)\n"
        assert rule_ids({"serving/x.py": src}, select=SELECT) == []

    def test_aliased_open_clean(self, rule_ids):
        # A local name shadowing builtin open via import is not file I/O.
        src = (
            "from gzip import open\n"
            "async def f(path):\n"
            "    return open(path)\n"
        )
        assert rule_ids({"serving/x.py": src}, select=SELECT) == []

    def test_suppression_honoured(self, rule_ids):
        src = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(0.1)  # streamlint: disable=SL015\n"
        )
        assert rule_ids({"serving/x.py": src}, select=SELECT) == []
