"""SL005: bare/overbroad except that swallows exceptions."""

SELECT = ["SL005"]


class TestTriggers:
    def test_bare_except(self, lint):
        src = (
            "def deliver(tup):\n"
            "    try:\n"
            "        process(tup)\n"
            "    except:\n"
            "        pass\n"
        )
        findings = lint({"platform/executor.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL005"]
        assert "bare except" in findings[0].message

    def test_broad_except_swallowing(self, lint):
        src = (
            "def ack(msg_id):\n"
            "    try:\n"
            "        finish(msg_id)\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings = lint({"platform/ack.py": src}, select=SELECT)
        assert [f.rule_id for f in findings] == ["SL005"]
        assert "swallows" in findings[0].message

    def test_base_exception_in_tuple_swallowing(self, rule_ids):
        src = (
            "try:\n"
            "    run()\n"
            "except (ValueError, BaseException):\n"
            "    ...\n"
        )
        assert rule_ids({"platform/executor.py": src}, select=SELECT) == ["SL005"]


class TestClean:
    def test_narrow_except(self, rule_ids):
        src = (
            "try:\n"
            "    run()\n"
            "except ValueError:\n"
            "    pass\n"
        )
        assert rule_ids({"platform/executor.py": src}, select=SELECT) == []

    def test_broad_except_with_recovery_logic(self, rule_ids):
        src = (
            "def deliver(actor, msg):\n"
            "    try:\n"
            "        actor.receive(msg)\n"
            "    except Exception:\n"
            "        actor.pre_restart()\n"
            "        restart(actor)\n"
        )
        assert rule_ids({"platform/actors.py": src}, select=SELECT) == []

    def test_broad_except_reraising(self, rule_ids):
        src = (
            "try:\n"
            "    run()\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('bolt failed') from exc\n"
        )
        assert rule_ids({"platform/executor.py": src}, select=SELECT) == []
