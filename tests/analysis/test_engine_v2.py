"""v2 engine plumbing: result cache, parallel jobs, baseline, SARIF, CLI."""

import json

import pytest

from repro.analysis import Severity, analyze_paths, run_analysis
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.reporters import render_sarif

_BAD = "import random\nx = random.random()\ndef f(xs=[]):\n    pass\n"


def _write(tmp_path, name, source):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestCache:
    def test_warm_run_hits_every_file(self, tmp_path):
        _write(tmp_path, "a.py", _BAD)
        _write(tmp_path, "b.py", "y = 1\n")
        cache = tmp_path / "cache.json"
        cold = run_analysis([tmp_path], cache_path=cache)
        warm = run_analysis([tmp_path], cache_path=cache)
        assert cold.cache_hits == 0 and cold.cache_misses == 2
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert [f.to_dict() for f in cold.findings] == [
            f.to_dict() for f in warm.findings
        ]

    def test_edited_file_misses(self, tmp_path):
        target = _write(tmp_path, "a.py", "y = 1\n")
        cache = tmp_path / "cache.json"
        run_analysis([tmp_path], cache_path=cache)
        target.write_text(_BAD)
        result = run_analysis([tmp_path], cache_path=cache)
        assert result.cache_misses == 1
        assert {f.rule_id for f in result.findings} == {"SL001", "SL003"}

    def test_touched_identical_file_hits_via_hash(self, tmp_path):
        import os

        target = _write(tmp_path, "a.py", "y = 1\n")
        cache = tmp_path / "cache.json"
        run_analysis([tmp_path], cache_path=cache)
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10_000_000))
        result = run_analysis([tmp_path], cache_path=cache)
        assert result.cache_hits == 1

    def test_corrupt_cache_file_ignored(self, tmp_path):
        _write(tmp_path, "a.py", _BAD)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        result = run_analysis([tmp_path], cache_path=cache)
        assert {f.rule_id for f in result.findings} == {"SL001", "SL003"}

    def test_project_rules_fire_from_warm_cache(self, tmp_path):
        # facts round-trip: SL006 evidence comes entirely from the cache
        _write(
            tmp_path,
            "frequency/s.py",
            "from repro.common.mergeable import SynopsisBase\n"
            "class NewSketch(SynopsisBase):\n"
            "    def update(self, item):\n"
            "        pass\n"
            "    def _merge_into(self, other):\n"
            "        pass\n",
        )
        _write(tmp_path, "core/registry.py", "_REGISTRY = {}\n")
        cache = tmp_path / "cache.json"
        cold = run_analysis([tmp_path], select=["SL006"], cache_path=cache)
        warm = run_analysis([tmp_path], select=["SL006"], cache_path=cache)
        assert warm.cache_hits == 2
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert [f.rule_id for f in warm.findings] == ["SL006"]


class TestParallel:
    def test_jobs_two_matches_serial(self, tmp_path):
        for i in range(6):
            _write(tmp_path, f"m{i}.py", _BAD)
        serial = analyze_paths([tmp_path])
        parallel = analyze_paths([tmp_path], jobs=2)
        assert [f.to_dict() for f in serial] == [f.to_dict() for f in parallel]

    def test_syntax_error_survives_pool(self, tmp_path):
        _write(tmp_path, "broken.py", "def broken(:\n")
        findings = analyze_paths([tmp_path], jobs=2)
        assert [f.rule_id for f in findings] == ["SL000"]


class TestBaseline:
    def test_roundtrip_absorbs_exact_findings(self, tmp_path):
        _write(tmp_path, "a.py", _BAD)
        findings = analyze_paths([tmp_path])
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, baseline_file)
        result = run_analysis([tmp_path], baseline=load_baseline(baseline_file))
        assert result.findings == []
        assert result.baseline_absorbed == len(findings)

    def test_new_finding_not_absorbed(self, tmp_path):
        target = _write(tmp_path, "a.py", "import random\nx = random.random()\n")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tmp_path]), baseline_file)
        target.write_text(
            "import random\nx = random.random()\ndef f(xs=[]):\n    pass\n"
        )
        result = run_analysis([tmp_path], baseline=load_baseline(baseline_file))
        assert [f.rule_id for f in result.findings] == ["SL003"]

    def test_count_limited_absorption(self, tmp_path):
        # baseline accepted ONE instance; a second identical message stays
        _write(tmp_path, "a.py", "import random\nx = random.random()\n")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tmp_path]), baseline_file)
        _write(
            tmp_path, "a.py",
            "import random\nx = random.random()\ny = random.random()\n",
        )
        result = run_analysis([tmp_path], baseline=load_baseline(baseline_file))
        assert len(result.findings) == 1

    def test_stale_baseline_keys_harmless(self, tmp_path):
        _write(tmp_path, "a.py", "y = 1\n")
        baseline = {"gone.py::SL001::whatever": 3}
        result = run_analysis([tmp_path], baseline=baseline)
        assert result.findings == [] and result.baseline_absorbed == 0

    def test_bad_schema_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"schema": "nope", "findings": {}}))
        with pytest.raises(ValueError, match="not a streamlint baseline"):
            load_baseline(bad)


class TestSarif:
    def test_document_shape(self, tmp_path):
        _write(tmp_path, "a.py", _BAD)
        findings = analyze_paths([tmp_path])
        doc = json.loads(render_sarif(findings))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "streamlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {f"SL{i:03d}" for i in range(1, 13)} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] in {"SL001", "SL003"}
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_severity_maps_to_level(self):
        from repro.analysis import Finding

        warn = Finding(
            path="x.py", line=1, col=0, rule_id="SL009",
            severity=Severity.WARNING, message="m",
        )
        doc = json.loads(render_sarif([warn]))
        assert doc["runs"][0]["results"][0]["level"] == "warning"


class TestCliV2:
    def test_warnings_only_exit_three(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # keep the repo baseline out of play
        _write(
            tmp_path,
            "platform/b.py",
            "from repro.platform.topology import Bolt\n"
            "class B(Bolt):\n"
            "    def __init__(self):\n"
            "        self.counts = {}\n"
            "    def process(self, values, emit):\n"
            "        self.counts[values[0]] = 1\n"
            "    def snapshot(self):\n"
            "        return dict(self.counts)\n",
        )
        assert main([str(tmp_path), "--select", "SL009"]) == 3

    def test_sarif_file_written(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "a.py", _BAD)
        out = tmp_path / "report.sarif"
        assert main([str(tmp_path), "--sarif", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"]

    def test_sarif_format_on_stdout(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "a.py", _BAD)
        assert main([str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"

    def test_write_then_enforce_baseline(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "a.py", _BAD)
        assert main([str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / ".streamlint-baseline.json").exists()
        # auto-detected baseline absorbs everything -> exit 0
        assert main([str(tmp_path)]) == 0
        capsys.readouterr()
        # new violation in a new file is NOT absorbed
        _write(tmp_path, "b.py", "def g(ys=[]):\n    pass\n")
        assert main([str(tmp_path)]) == 1
        assert "SL003" in capsys.readouterr().out

    def test_no_baseline_flag_disables_absorption(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "a.py", _BAD)
        assert main([str(tmp_path), "--write-baseline"]) == 0
        assert main([str(tmp_path), "--no-baseline"]) == 1

    def test_jobs_and_cache_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "a.py", "x = 1\n")
        cache = tmp_path / "c.json"
        argv = [str(tmp_path), "--jobs", "2", "--cache", str(cache), "--stats"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "1 cache hit(s)" in capsys.readouterr().err

    def test_bad_jobs_value_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "a.py", "x = 1\n")
        assert main([str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err
