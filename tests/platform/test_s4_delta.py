"""Tests for the S4 PE container and Flink-style delta iterations."""

import networkx as nx
import pytest

from repro.common.exceptions import ParameterError
from repro.platform.delta import (
    bulk_connected_components,
    connected_components,
    delta_iterate,
)
from repro.platform.s4 import PEContainer, ProcessingElement
from repro.workloads import edge_stream


class CountPE(ProcessingElement):
    def __init__(self, key):
        super().__init__(key)
        self.count = 0

    def on_event(self, value, emit):
        self.count += 1


class ThresholdPE(ProcessingElement):
    """Emits an alert event once its key crosses 3 occurrences."""

    def __init__(self, key):
        super().__init__(key)
        self.count = 0

    def on_event(self, value, emit):
        self.count += 1
        if self.count == 3:
            emit("alerts", self.key, f"{self.key} trending")


class TestS4Container:
    def test_validation(self):
        with pytest.raises(ParameterError):
            PEContainer(max_pes=0)
        container = PEContainer()
        container.prototype("s", CountPE)
        with pytest.raises(ParameterError):
            container.prototype("s", CountPE)

    def test_one_pe_per_key(self):
        container = PEContainer()
        container.prototype("words", CountPE)
        for word in ["a", "b", "a", "a"]:
            container.process("words", word, None)
        assert container.n_instances == 2
        assert container.get_pe("words", "a").count == 3
        assert container.get_pe("words", "b").count == 1

    def test_unknown_stream_dropped(self):
        container = PEContainer()
        container.process("nowhere", "k", 1)  # no error, S4 best-effort
        assert container.n_instances == 0

    def test_pe_chaining(self):
        container = PEContainer()
        container.prototype("words", ThresholdPE)
        container.prototype("alerts", CountPE)
        for __ in range(5):
            container.process("words", "#tag", None)
        alert_pe = container.get_pe("alerts", "#tag")
        assert alert_pe is not None and alert_pe.count == 1  # fired once at 3

    def test_lru_eviction_under_pressure(self):
        container = PEContainer(max_pes=3)
        container.prototype("s", CountPE)
        for key in ["a", "b", "c", "a", "d"]:  # 'b' is the LRU at overflow
            container.process("s", key, None)
        assert container.n_instances == 3
        assert container.evictions == 1
        assert container.get_pe("s", "b") is None
        assert container.get_pe("s", "a") is not None

    def test_evicted_state_is_lost(self):
        """S4's at-most-once posture: a reclaimed PE restarts from zero."""
        container = PEContainer(max_pes=1)
        container.prototype("s", CountPE)
        container.process("s", "x", None)
        container.process("s", "y", None)  # evicts x
        container.process("s", "x", None)  # fresh instance
        assert container.get_pe("s", "x").count == 1


class TestDeltaIteration:
    def test_validation(self):
        with pytest.raises(ParameterError):
            delta_iterate({}, [1], lambda s, w: ({}, w), max_supersteps=0)

    def test_non_convergence_detected(self):
        with pytest.raises(ParameterError):
            delta_iterate({}, [1], lambda s, w: ({}, w), max_supersteps=5)

    def test_components_match_networkx(self):
        edges = list(edge_stream(200, 300, seed=51))
        result = connected_components(edges)
        g = nx.Graph(edges)
        for component in nx.connected_components(g):
            labels = {result.solution[v] for v in component}
            assert len(labels) == 1, "one label per component"
        # Distinct components get distinct labels.
        all_labels = {result.solution[v] for v in result.solution}
        assert len(all_labels) == nx.number_connected_components(g)

    def test_delta_beats_bulk_on_total_work(self):
        edges = list(edge_stream(500, 900, seed=52))
        delta = connected_components(edges)
        bulk = bulk_connected_components(edges)
        assert delta.solution == bulk.solution
        assert delta.total_work < bulk.total_work

    def test_workset_shrinks(self):
        """The Flink claim: work decays as iterations go on."""
        edges = [(i, i + 1) for i in range(100)]  # path graph, worst case-ish
        result = connected_components(edges)
        assert result.workset_sizes[0] == 101
        assert result.workset_sizes[-1] < result.workset_sizes[0]

    def test_single_component_chain(self):
        edges = [(i, i + 1) for i in range(20)]
        result = connected_components(edges)
        assert len({result.solution[v] for v in result.solution}) == 1
