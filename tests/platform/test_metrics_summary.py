"""ExecutionMetrics pressure signals: backpressure waits + ring occupancy
surface in summary() and write through to the shared registry."""

from repro.platform.metrics import ExecutionMetrics


class TestPressureSignals:
    def test_defaults_are_zero(self):
        metrics = ExecutionMetrics()
        assert metrics.backpressure_waits == 0
        assert metrics.ring_occupancy == 0.0

    def test_summary_carries_pressure_keys(self):
        metrics = ExecutionMetrics()
        metrics.backpressure_waits = 17
        metrics.ring_occupancy = 0.62505
        summary = metrics.summary()
        assert summary["backpressure_waits"] == 17
        assert summary["ring_occupancy"] == 0.625  # rounded for the report

    def test_values_live_in_the_registry(self):
        # The façade writes through: exporters and `repro-obs` see the
        # same numbers without a second bookkeeping path.
        metrics = ExecutionMetrics()
        metrics.backpressure_waits = 3
        metrics.ring_occupancy = 0.25
        waits = metrics.registry.get("repro_transport_backpressure_waits_total")
        ring = metrics.registry.get("repro_transport_ring_occupancy")
        assert waits.samples()[0].value == 3
        assert ring.samples()[0].value == 0.25

    def test_attribute_increment_api(self):
        metrics = ExecutionMetrics()
        metrics.backpressure_waits += 2
        metrics.backpressure_waits += 5
        assert metrics.summary()["backpressure_waits"] == 7
