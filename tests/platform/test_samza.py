"""Tests for the Samza-style log-backed pipeline."""

import collections

import pytest

from repro.common.exceptions import ParameterError
from repro.platform import InMemoryLog
from repro.platform.samza import LoggedStage, LoggedTask, SamzaPipeline


class SplitTask(LoggedTask):
    def process(self, record):
        return [(w,) for w in record.split()]


class CountTask(LoggedTask):
    def __init__(self):
        self.counts = collections.Counter()

    def process(self, record):
        self.counts[record[0]] += 1
        return []

    def snapshot(self):
        return dict(self.counts)

    def restore(self, state):
        self.counts = collections.Counter(state or {})


SENTENCES = ["a b c", "a a d", "b c"] * 100
TRUTH = collections.Counter(w for s in SENTENCES for w in s.split())


def build(transactional=False, commit_interval=50):
    source = InMemoryLog()
    source.append_many(SENTENCES)
    words = InMemoryLog()
    pipeline = SamzaPipeline()
    split = pipeline.add_stage(
        "split", SplitTask(), source, words,
        commit_interval=commit_interval, transactional=transactional,
    )
    count_task = CountTask()
    count = pipeline.add_stage(
        "count", count_task, words, None, commit_interval=commit_interval
    )
    return pipeline, split, count, count_task


class TestBasicPipeline:
    def test_end_to_end_counts(self):
        pipeline, __, __, count_task = build()
        pipeline.run_until_quiescent()
        assert count_task.counts == TRUTH

    def test_stage_lag_visible(self):
        __, split, count, __ = build()
        split.run(max_records=10)
        assert split.lag == len(SENTENCES) - 10
        assert count.lag == 27  # 10 sentences of the 3/3/2-word pattern

    def test_commit_interval_validation(self):
        with pytest.raises(ParameterError):
            LoggedStage("x", SplitTask(), InMemoryLog(), commit_interval=0)


class TestCrashRecovery:
    def test_crash_resumes_from_commit(self):
        pipeline, split, count, count_task = build(commit_interval=40)
        split.run()  # all sentences split
        count.run(max_records=100)
        uncommitted = count.uncommitted
        assert uncommitted > 0
        count.crash()
        # State rolled back to the last commit...
        assert sum(count_task.counts.values()) == 100 - uncommitted
        # ...and re-running converges to the exact answer (replay).
        pipeline.run_until_quiescent()
        assert count_task.counts == TRUTH
        assert count.restarts == 1

    def test_non_transactional_crash_duplicates_downstream(self):
        pipeline, split, count, count_task = build(
            transactional=False, commit_interval=1_000
        )
        split.run(max_records=100)
        split.crash()  # output already appended, offset rolled back
        pipeline.run_until_quiescent()
        # At-least-once: every word present, some counted twice.
        assert all(count_task.counts[w] >= TRUTH[w] for w in TRUTH)
        assert sum(count_task.counts.values()) > sum(TRUTH.values())

    def test_transactional_crash_is_exactly_once(self):
        pipeline, split, count, count_task = build(
            transactional=True, commit_interval=1_000
        )
        split.run(max_records=100)
        split.crash()  # buffered output discarded with the offset
        pipeline.run_until_quiescent()
        assert count_task.counts == TRUTH

    def test_repeated_crashes_still_converge(self):
        pipeline, split, count, count_task = build(
            transactional=True, commit_interval=30
        )
        for __ in range(5):
            split.run(max_records=45)
            split.crash()
            count.run(max_records=60)
            count.crash()
        pipeline.run_until_quiescent()
        assert count_task.counts == TRUTH
        assert split.restarts == 5 and count.restarts == 5


class TestDurabilityProperties:
    def test_commits_counted(self):
        pipeline, split, count, __ = build(commit_interval=25)
        pipeline.run_until_quiescent()
        assert split.commits >= len(SENTENCES) // 25
        assert count.commits >= 1

    def test_intermediate_stream_is_durable(self):
        """The words log persists independently of both stages — the Samza
        property that removes the need for inter-app brokers."""
        source = InMemoryLog()
        source.append_many(SENTENCES)
        words = InMemoryLog()
        stage = LoggedStage("split", SplitTask(), source, words)
        stage.run()
        stage.commit()
        # A brand-new consumer replays the full intermediate stream.
        replay = LoggedStage("count2", CountTask(), words)
        replay.run()
        assert replay.task.counts == TRUTH
