"""Tests for the Pulsar-style streaming SQL interface."""

import pytest

from repro.common.exceptions import ParameterError
from repro.platform.sql import StreamingQuery, query
from repro.workloads import click_stream


def _records(n=2_000):
    return [
        {"timestamp": e.timestamp, "user": e.user_id, "page": e.page}
        for e in click_stream(n, unique_visitors=200, pages=20, seed=500)
    ]


class TestParsing:
    def test_rejects_garbage(self):
        for bad in (
            "SELECT FROM stream",
            "DELETE FROM stream",
            "SELECT COUNT(*) FROM other_table",
            "SELECT page FROM stream",  # plain column without matching GROUP BY
            "SELECT COUNT(*) FROM stream WINDOW TUMBLING 0",
            "SELECT COUNT(x, y) FROM stream",
            "SELECT APPROX_QUANTILE(v) FROM stream",
            "SELECT APPROX_QUANTILE(v, 2) FROM stream",
            "SELECT COUNT(*) FROM stream WHERE page LIKE 'x'",
        ):
            with pytest.raises(ParameterError):
                StreamingQuery(bad)

    def test_case_insensitive_keywords(self):
        q = StreamingQuery("select count(*) from stream group by page")
        assert q.group_by == "page"

    def test_trailing_semicolon(self):
        StreamingQuery("SELECT COUNT(*) FROM stream;")


class TestAggregates:
    def test_global_count(self):
        rows = query("SELECT COUNT(*) FROM stream", [{"x": 1}] * 7)
        assert rows == [{"COUNT(*)": 7}]

    def test_group_by_count(self):
        records = [{"k": "a"}, {"k": "b"}, {"k": "a"}]
        rows = query("SELECT k, COUNT(*) FROM stream GROUP BY k", records)
        by_key = {r["k"]: r["COUNT(*)"] for r in rows}
        assert by_key == {"a": 2, "b": 1}

    def test_sum_avg_min_max(self):
        records = [{"v": float(i)} for i in range(1, 5)]
        rows = query(
            "SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM stream", records
        )
        (row,) = rows
        assert row["SUM(v)"] == 10.0
        assert row["AVG(v)"] == 2.5
        assert row["MIN(v)"] == 1.0
        assert row["MAX(v)"] == 4.0

    def test_approx_distinct(self):
        records = [{"u": f"user{i % 300}"} for i in range(5_000)]
        (row,) = query("SELECT APPROX_DISTINCT(u) FROM stream", records)
        assert abs(row["APPROX_DISTINCT(u)"] - 300) < 15

    def test_approx_quantile(self):
        records = [{"v": float(i)} for i in range(10_000)]
        (row,) = query("SELECT APPROX_QUANTILE(v, 0.9) FROM stream", records)
        assert abs(row["APPROX_QUANTILE(v, 0.9)"] - 9_000) < 150

    def test_approx_topk(self):
        records = [{"tag": "#a"}] * 50 + [{"tag": "#b"}] * 10
        (row,) = query("SELECT APPROX_TOPK(tag, 1) FROM stream", records)
        assert row["APPROX_TOPK(tag, 1)"][0] == ("#a", 50)

    def test_missing_column_rejected(self):
        q = StreamingQuery("SELECT SUM(v) FROM stream")
        with pytest.raises(ParameterError):
            q.update({"other": 1})


class TestWhere:
    def test_equality_filter(self):
        records = [{"k": "a", "v": 1}, {"k": "b", "v": 2}, {"k": "a", "v": 3}]
        (row,) = query("SELECT SUM(v) FROM stream WHERE k = 'a'", records)
        assert row["SUM(v)"] == 4

    def test_numeric_comparison_and_conjunction(self):
        records = [{"v": i, "k": "x" if i % 2 else "y"} for i in range(10)]
        (row,) = query(
            "SELECT COUNT(*) FROM stream WHERE v >= 5 AND k = 'x'", records
        )
        assert row["COUNT(*)"] == 3  # 5, 7, 9

    def test_filtered_out_records_ignored_silently(self):
        q = StreamingQuery("SELECT COUNT(*) FROM stream WHERE v > 100")
        q.update_many([{"v": 1}, {"v": 200}])
        assert q.results() == [{"COUNT(*)": 1}]


class TestWindows:
    def test_tumbling_window_counts(self):
        records = [{"timestamp": float(t), "v": 1} for t in range(10)]
        windows = query(
            "SELECT COUNT(*) FROM stream WINDOW TUMBLING 5", records
        )
        assert len(windows) == 2
        assert windows[0]["window_start"] == 0.0
        assert windows[0]["rows"] == [{"COUNT(*)": 5}]
        assert windows[1]["rows"] == [{"COUNT(*)": 5}]

    def test_windowed_group_by(self):
        records = [
            {"timestamp": 0.0, "k": "a"},
            {"timestamp": 1.0, "k": "a"},
            {"timestamp": 6.0, "k": "b"},
        ]
        windows = query(
            "SELECT k, COUNT(*) FROM stream GROUP BY k WINDOW TUMBLING 5", records
        )
        assert windows[0]["rows"] == [{"k": "a", "COUNT(*)": 2}]
        assert windows[1]["rows"] == [{"k": "b", "COUNT(*)": 1}]

    def test_window_requires_timestamp(self):
        q = StreamingQuery("SELECT COUNT(*) FROM stream WINDOW TUMBLING 5")
        with pytest.raises(ParameterError):
            q.update({"v": 1})

    def test_results_api_mismatch(self):
        windowed = StreamingQuery("SELECT COUNT(*) FROM stream WINDOW TUMBLING 5")
        with pytest.raises(ParameterError):
            windowed.results()
        plain = StreamingQuery("SELECT COUNT(*) FROM stream")
        with pytest.raises(ParameterError):
            plain.windows()


class TestRealisticQuery:
    def test_page_analytics(self):
        records = _records()
        rows = query(
            "SELECT page, COUNT(*), APPROX_DISTINCT(user) FROM stream GROUP BY page",
            records,
        )
        import collections

        truth_views = collections.Counter(r["page"] for r in records)
        truth_users = collections.defaultdict(set)
        for r in records:
            truth_users[r["page"]].add(r["user"])
        by_page = {r["page"]: r for r in rows}
        for page in list(truth_views)[:10]:
            assert by_page[page]["COUNT(*)"] == truth_views[page]
            est = by_page[page]["APPROX_DISTINCT(user)"]
            assert abs(est - len(truth_users[page])) <= max(3, 0.1 * len(truth_users[page]))
