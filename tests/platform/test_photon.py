"""Tests for the Photon-style exactly-once stream join."""

import pytest

from repro.common.exceptions import ParameterError
from repro.platform.photon import IdRegistry, PhotonJoiner


class TestIdRegistry:
    def test_claim_exactly_once(self):
        reg = IdRegistry()
        assert reg.claim("c1")
        assert not reg.claim("c1")
        assert "c1" in reg
        assert len(reg) == 1


class TestPhotonJoiner:
    def test_validation(self):
        with pytest.raises(ParameterError):
            PhotonJoiner(timeout=0)

    def test_in_order_join(self):
        j = PhotonJoiner()
        j.add_secondary("q1", {"query": "buy shoes"})
        joined = j.add_primary("click1", "q1", {"ad": "shoes-ad"})
        assert joined is not None
        assert joined.secondary == {"query": "buy shoes"}
        assert j.joined_count == 1

    def test_out_of_order_click_waits_for_query(self):
        """Photon's motivating case: the click log can run ahead of the
        query log."""
        j = PhotonJoiner()
        assert j.add_primary("click1", "q9", {"ad": "a"}) is None
        assert j.pending == 1
        out = j.add_secondary("q9", {"query": "late"})
        assert len(out) == 1 and out[0].primary == {"ad": "a"}
        assert j.pending == 0

    def test_replayed_click_deduplicated(self):
        """Worker restart replays clicks; the IdRegistry keeps the output
        exactly-once."""
        j = PhotonJoiner()
        j.add_secondary("q1", "query-rec")
        assert j.add_primary("c1", "q1", "click-rec") is not None
        # Replay after a simulated crash:
        assert j.add_primary("c1", "q1", "click-rec") is None
        assert j.joined_count == 1
        assert j.duplicates_skipped == 1

    def test_replay_of_parked_click_also_deduplicated(self):
        j = PhotonJoiner()
        j.add_primary("c1", "q1", "click")
        j.add_primary("c1", "q1", "click")  # replayed while parked
        out = j.add_secondary("q1", "query")
        assert len(out) == 1
        assert j.joined_count == 1

    def test_timeout_expires_unjoinable_clicks(self):
        j = PhotonJoiner(timeout=3)
        j.add_primary("orphan", "never", "click")
        for __ in range(3):
            j.tick()
        assert j.pending == 0
        assert j.expired == ["orphan"]

    def test_output_log_is_replayable(self):
        j = PhotonJoiner()
        j.add_secondary("q1", "Q")
        j.add_primary("c1", "q1", "C1")
        j.add_primary("c2", "q1", "C2")
        records = [rec for __, rec in j.output.read_from(0)]
        assert [r.primary for r in records] == ["C1", "C2"]

    def test_throughput_scenario(self):
        """1:many click/query with interleaving and replays stays exact."""
        j = PhotonJoiner(timeout=50)
        for q in range(100):
            j.add_secondary(f"q{q}", f"query{q}")
        total = 0
        for c in range(1_000):
            key = f"q{c % 100}"
            if j.add_primary(f"click{c}", key, f"payload{c}") is not None:
                total += 1
            if c % 3 == 0:  # replay storm
                j.add_primary(f"click{c}", key, f"payload{c}")
        assert total == 1_000
        assert j.joined_count == 1_000
        assert j.duplicates_skipped == 334
