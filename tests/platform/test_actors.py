"""Tests for the Akka-style actor toolkit."""

import pytest

from repro.common.exceptions import ExecutionError, ParameterError
from repro.platform.actors import Actor, ActorSystem


class Counter(Actor):
    def __init__(self):
        super().__init__()
        self.count = 0

    def receive(self, message, sender):
        if message == "inc":
            self.count += 1
        elif message == "get":
            self.reply(self.count)


class Forwarder(Actor):
    def __init__(self, target):
        super().__init__()
        self.target = target

    def receive(self, message, sender):
        self.target.tell(message, sender=self.ref)


class Crasher(Actor):
    def __init__(self):
        super().__init__()
        self.seen = 0

    def receive(self, message, sender):
        self.seen += 1
        if message == "boom":
            raise ValueError("boom")
        if message == "get":
            self.reply(self.seen)


class TestActorBasics:
    def test_duplicate_names_rejected(self):
        system = ActorSystem()
        system.spawn("a", Counter)
        with pytest.raises(ParameterError):
            system.spawn("a", Counter)

    def test_tell_and_run(self):
        system = ActorSystem()
        counter = system.spawn("counter", Counter)
        for __ in range(5):
            counter.tell("inc")
        delivered = system.run()
        assert delivered == 5
        assert system._actors["counter"].count == 5

    def test_ask_request_response(self):
        """The paper's highlighted Akka feature: actors reply to messages."""
        system = ActorSystem()
        counter = system.spawn("counter", Counter)
        counter.tell("inc")
        counter.tell("inc")
        future = counter.ask("get")
        assert not future.done
        system.run()
        assert future.result() == 2

    def test_unresolved_future_raises(self):
        system = ActorSystem()
        counter = system.spawn("c", Counter)
        future = counter.ask("get")
        with pytest.raises(ExecutionError):
            future.result()

    def test_actor_chaining(self):
        system = ActorSystem()
        counter = system.spawn("counter", Counter)
        relay = system.spawn("relay", lambda: Forwarder(counter))
        for __ in range(3):
            relay.tell("inc")
        system.run()
        assert system._actors["counter"].count == 3

    def test_message_loop_detected(self):
        system = ActorSystem()

        class Pinger(Actor):
            def receive(self, message, sender):
                self.ref.tell("again")

        ref = system.spawn("pinger", Pinger)
        ref.tell("start")
        with pytest.raises(ExecutionError):
            system.run(max_messages=100)


class TestSupervision:
    def test_restart_resets_state(self):
        system = ActorSystem(max_restarts=3)
        ref = system.spawn("crasher", Crasher)
        ref.tell("ok")
        ref.tell("boom")  # restart -> fresh instance
        ref.tell("ok")
        future = ref.ask("get")
        system.run()
        assert system.restarts == 1
        assert future.result() == 2  # post-restart instance saw ok + get

    def test_stop_after_budget_exhausted(self):
        system = ActorSystem(max_restarts=1)
        ref = system.spawn("crasher", Crasher)
        for __ in range(3):
            ref.tell("boom")
        system.run()
        assert system.is_stopped("crasher")
        # Further messages become dead letters, not errors.
        ref.tell("ok")
        assert system.run() == 0

    def test_other_actors_unaffected_by_failure(self):
        """One-for-one supervision: a crashing actor does not take its
        siblings down."""
        system = ActorSystem(max_restarts=0)
        crasher = system.spawn("crasher", Crasher)
        counter = system.spawn("counter", Counter)
        crasher.tell("boom")
        counter.tell("inc")
        system.run()
        assert system.is_stopped("crasher")
        assert system._actors["counter"].count == 1
