"""Tests for the streaming rule engine."""

import pytest

from repro.common.exceptions import ExecutionError, ParameterError
from repro.platform.rules import Rule, RuleEngine


class TestRuleBasics:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RuleEngine(max_depth=0)
        with pytest.raises(ParameterError):
            Rule("x", lambda r, s: True, lambda r, c: None, on="sometimes")
        engine = RuleEngine()
        engine.when("a", lambda r, s: True, lambda r, c: None)
        with pytest.raises(ParameterError):
            engine.when("a", lambda r, s: True, lambda r, c: None)

    def test_simple_condition_action(self):
        engine = RuleEngine()
        engine.when(
            "big-transfer",
            lambda r, s: r["amount"] > 1_000,
            lambda r, c: c.alert("big-transfer", f"amount={r['amount']}", r),
        )
        alerts = engine.process({"amount": 5_000})
        assert len(alerts) == 1
        assert alerts[0].rule == "big-transfer"
        assert engine.process({"amount": 10}) == []
        assert engine.fired["big-transfer"] == 1

    def test_priority_order(self):
        order = []
        engine = RuleEngine()
        engine.when("low", lambda r, s: True, lambda r, c: order.append("low"), priority=1)
        engine.when("high", lambda r, s: True, lambda r, c: order.append("high"), priority=9)
        engine.process({})
        assert order == ["high", "low"]


class TestChaining:
    def test_emitted_records_rematched(self):
        engine = RuleEngine()
        engine.when(
            "split",
            lambda r, s: r.get("kind") == "batch",
            lambda r, c: [c.emit({"kind": "item", "v": v}) for v in r["items"]],
        )
        seen = []
        engine.when(
            "item",
            lambda r, s: r.get("kind") == "item",
            lambda r, c: seen.append(r["v"]),
        )
        engine.process({"kind": "batch", "items": [1, 2, 3]})
        assert seen == [1, 2, 3]

    def test_cyclic_emit_detected(self):
        engine = RuleEngine(max_depth=4)
        engine.when("loop", lambda r, s: True, lambda r, c: c.emit({}))
        with pytest.raises(ExecutionError):
            engine.process({})

    def test_state_rule_fires_on_change(self):
        engine = RuleEngine()
        engine.when(
            "count-failures",
            lambda r, s: r.get("status") == "fail",
            lambda r, c: c.set_state("failures", c.get_state("failures", 0) + 1),
        )
        engine.on_state(
            "circuit-breaker",
            lambda r, s: s.get("failures", 0) >= 3,
            lambda r, c: c.alert("circuit-breaker", "too many failures"),
        )
        for __ in range(2):
            assert engine.process({"status": "fail"}) == []
        alerts = engine.process({"status": "fail"})
        assert [a.rule for a in alerts] == ["circuit-breaker"]

    def test_state_persists_across_records(self):
        engine = RuleEngine()
        engine.when(
            "sum", lambda r, s: True,
            lambda r, c: c.set_state("total", c.get_state("total", 0) + r),
        )
        engine.process_many([1, 2, 3])
        assert engine.state["total"] == 6


class TestFraudScenario:
    def test_velocity_rule(self):
        """The paper's fraud-detection use case: flag a card used in rapid
        succession from different locations."""
        engine = RuleEngine()

        def track(r, c):
            key = f"last:{r['card']}"
            prev = c.get_state(key)
            if prev and r["ts"] - prev["ts"] < 60 and r["city"] != prev["city"]:
                c.alert("velocity", f"card {r['card']}: {prev['city']} -> {r['city']}", r)
            c.set_state(key, r)

        engine.when("velocity", lambda r, s: True, track)
        alerts = engine.process_many(
            [
                {"card": "c1", "ts": 0, "city": "SF"},
                {"card": "c1", "ts": 30, "city": "NYC"},  # impossible travel
                {"card": "c2", "ts": 0, "city": "LA"},
                {"card": "c2", "ts": 3_600, "city": "SEA"},  # fine
            ]
        )
        assert len(alerts) == 1
        assert "c1" in alerts[0].message
