"""Topological bolt ordering and loud cycle detection.

The builder cannot express a cycle (sources must pre-exist), but a
hand-constructed :class:`Topology` can smuggle one in. A DFS that only
tracks *visited* would emit a wrong order silently; the shared
:func:`topological_bolt_order` (used by both the local executor and the
cluster coordinator for flush ordering) must instead raise a clear
:class:`ExecutionError` naming the cycle.
"""

import pytest

from repro.common.exceptions import ExecutionError
from repro.platform.executor import LocalExecutor, topological_bolt_order
from repro.platform.topology import Bolt, ListSpout, TopologyBuilder


class _Noop(Bolt):
    def process(self, values, emit):
        pass


def _chain(*names: str):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: ListSpout([]))
    previous = "src"
    for name in names:
        builder.set_bolt(name, _Noop).shuffle(previous)
        previous = name
    return builder.build()


def _diamond():
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: ListSpout([]))
    builder.set_bolt("left", _Noop).shuffle("src")
    builder.set_bolt("right", _Noop).shuffle("src")
    builder.set_bolt("join", _Noop).shuffle("left").shuffle("right")
    return builder.build()


def _smuggle_cycle(topology, from_bolt: str, to_bolt: str):
    """Wire *to_bolt* to also consume *from_bolt* (post-build mutation)."""
    grouping = topology.components[to_bolt].inputs[0][1]
    topology.components[to_bolt].inputs.append((from_bolt, grouping))
    return topology


class TestOrdering:
    def test_chain_orders_upstream_first(self):
        assert topological_bolt_order(_chain("a", "b", "c")) == ["a", "b", "c"]

    def test_diamond_join_comes_last(self):
        order = topological_bolt_order(_diamond())
        assert order.index("join") == 2
        assert set(order) == {"left", "right", "join"}


class TestCycles:
    def test_two_bolt_cycle_raises_with_path(self):
        topology = _smuggle_cycle(_chain("a", "b"), "b", "a")
        with pytest.raises(ExecutionError, match="cycle through bolts"):
            topological_bolt_order(topology)

    def test_cycle_message_names_the_bolts(self):
        topology = _smuggle_cycle(_chain("a", "b"), "b", "a")
        with pytest.raises(ExecutionError, match="a") as excinfo:
            topological_bolt_order(topology)
        message = str(excinfo.value)
        assert "a" in message and "b" in message and "->" in message

    def test_self_loop_raises(self):
        topology = _smuggle_cycle(_chain("a"), "a", "a")
        with pytest.raises(ExecutionError, match="cycle"):
            topological_bolt_order(topology)

    def test_local_executor_rejects_cyclic_topology(self):
        topology = _smuggle_cycle(_chain("a", "b"), "b", "a")
        executor = LocalExecutor(topology)
        with pytest.raises(ExecutionError, match="cycle"):
            executor.run()
