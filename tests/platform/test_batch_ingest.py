"""Batched synopsis ingest through the composition layers.

The vectorized ``update_many`` fast paths only pay off if the layers that
*feed* synopses hand them batches. These tests pin the batching behaviour
of :class:`SynopsisBolt` (tuple-at-a-time executor, buffered micro-batches
drained at checkpoints), ``Pipeline.sketch``, ``DStream.sketch`` (the
discretized-stream executor feeds whole batch intervals) and
``StreamSummary.update_many`` — and that in every case the resulting state
is bit-identical to per-tuple ingest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.cardinality import HyperLogLog
from repro.common.exceptions import ParameterError
from repro.core.pipeline import Pipeline
from repro.core.summary import StreamSummary
from repro.frequency import CountMinSketch, SpaceSaving
from repro.platform.faults import FaultInjector
from repro.platform.microbatch import MicroBatchContext
from repro.platform.operators import SynopsisBolt


def _reference(items, factory=lambda: HyperLogLog(precision=10, seed=0)):
    synopsis = factory()
    for item in items:
        synopsis.update(item)
    return synopsis


class TestSynopsisBoltBuffering:
    def test_buffers_until_batch_size_then_drains(self):
        bolt = SynopsisBolt(lambda: HyperLogLog(precision=10, seed=0), batch_size=4)
        for i in range(3):
            bolt.process((f"u{i}",), lambda *a: None)
        assert bolt._synopsis.count == 0  # still buffered
        bolt.process(("u3",), lambda *a: None)
        assert bolt._synopsis.count == 4  # drained at batch_size

    def test_synopsis_property_drains_pending_items(self):
        bolt = SynopsisBolt(lambda: HyperLogLog(precision=10, seed=0), batch_size=100)
        bolt.process(("a",), lambda *a: None)
        assert bolt.synopsis.count == 1

    def test_snapshot_drains_and_restore_drops_buffer(self):
        bolt = SynopsisBolt(lambda: HyperLogLog(precision=10, seed=0), batch_size=100)
        for i in range(5):
            bolt.process((f"u{i}",), lambda *a: None)
        checkpoint = bolt.snapshot()
        assert checkpoint.count == 5  # snapshot includes buffered tuples
        bolt.process(("post",), lambda *a: None)
        bolt.restore(checkpoint)
        # buffered post-checkpoint tuple is dropped: the spout replays it
        assert bolt.synopsis.count == 5

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ParameterError):
            SynopsisBolt(lambda: HyperLogLog(), batch_size=0)

    def test_state_identical_to_per_tuple_for_any_batch_size(self):
        items = [f"u{i % 700}" for i in range(2_000)]
        want = state_fingerprint(_reference(items))
        for batch_size in (1, 7, 256, 10_000):
            bolt = SynopsisBolt(
                lambda: HyperLogLog(precision=10, seed=0), batch_size=batch_size
            )
            for item in items:
                bolt.process((item,), lambda *a: None)
            assert state_fingerprint(bolt.synopsis) == want, batch_size


class TestPipelineSketch:
    def test_sketch_state_matches_per_tuple_ingest(self):
        words = [f"w{i % 300}" for i in range(1_500)]
        executor = (
            Pipeline.from_list([(w,) for w in words])
            .sketch(lambda: HyperLogLog(precision=10, seed=0), batch_size=64)
            .run_with_executor()
        )
        (bolt,) = executor.bolt_instances("sketch0")
        assert state_fingerprint(bolt.synopsis) == state_fingerprint(
            _reference(words)
        )

    def test_sketch_exactly_once_under_faults(self):
        words = [f"w{i}" for i in range(2_000)]
        executor = (
            Pipeline.from_list([(w,) for w in words])
            .sketch(lambda: HyperLogLog(precision=10, seed=0), batch_size=128)
            .run_with_executor(
                semantics="exactly_once",
                faults=FaultInjector(crash_after=1_100, seed=3),
                checkpoint_interval=250,
            )
        )
        (bolt,) = executor.bolt_instances("sketch0")
        assert bolt.synopsis.count == 2_000  # no loss, no double count
        assert state_fingerprint(bolt.synopsis) == state_fingerprint(
            _reference(words)
        )


class TestDStreamSketch:
    def test_sketch_state_matches_per_record_ingest(self):
        records = [f"u{i % 400}" for i in range(1_000)]
        ctx = MicroBatchContext(batch_size=128)
        stream = ctx.source(records).sketch(
            lambda: HyperLogLog(precision=10, seed=0)
        )
        stream.collect()
        ctx.run()
        assert state_fingerprint(stream.last_synopsis()) == state_fingerprint(
            _reference(records)
        )
        # the synopsis is also emitted downstream once per batch interval
        assert len(stream.batches()) == ctx.n_batches

    def test_sketch_survives_lineage_recovery(self):
        records = [f"u{i}" for i in range(1_000)]
        ctx = MicroBatchContext(batch_size=100, checkpoint_every=3)
        stream = ctx.source(records).sketch(
            lambda: HyperLogLog(precision=10, seed=0)
        )
        ctx.run(fail_at=7)
        assert ctx.recomputations == 1
        assert state_fingerprint(stream.last_synopsis()) == state_fingerprint(
            _reference(records)
        )

    def test_sketch_with_extract(self):
        records = [(i, f"u{i % 50}") for i in range(500)]
        ctx = MicroBatchContext(batch_size=64)
        stream = ctx.source(records).sketch(
            lambda: HyperLogLog(precision=10, seed=0), extract=lambda r: r[1]
        )
        ctx.run()
        assert state_fingerprint(stream.last_synopsis()) == state_fingerprint(
            _reference([r[1] for r in records])
        )


class TestStreamSummaryBatch:
    def _factory(self):
        return StreamSummary(
            extractors={
                "uniques": lambda e: e[0],
                "topk": lambda e: e[0],
                "latency": lambda e: e[1],
            },
            uniques=HyperLogLog(precision=10, seed=0),
            topk=SpaceSaving(32),
            latency=CountMinSketch(256, 4, seed=0),
        )

    def test_update_many_matches_sequential_with_extractors(self):
        events = [(f"u{i % 90}", float(i % 13)) for i in range(1_200)]
        sequential = self._factory()
        for event in events:
            sequential.update(event)
        batched = self._factory()
        batched.update_many(events)
        assert batched.count == 1_200
        assert state_fingerprint(batched) == state_fingerprint(sequential)
        assert np.array_equal(
            batched["uniques"]._registers, sequential["uniques"]._registers
        )

    def test_update_many_accepts_generator_and_empty(self):
        summary = self._factory()
        summary.update_many((f"u{i}", 0.0) for i in range(10))
        summary.update_many([])
        assert summary.count == 10
