"""Tests for topology construction, groupings and the acker."""

import pytest

from repro.common.exceptions import ExecutionError, TopologyError
from repro.platform import (
    Acker,
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ListSpout,
    MapBolt,
    ShuffleGrouping,
    StreamTuple,
    TopologyBuilder,
)


def _tuple(*values):
    return StreamTuple(values=values)


class TestGroupings:
    def test_fields_grouping_key_affinity(self):
        g = FieldsGrouping(0)
        t1, t2 = _tuple("k", 1), _tuple("k", 2)
        assert g.targets(t1, 8) == g.targets(t2, 8)

    def test_fields_grouping_spreads_keys(self):
        g = FieldsGrouping(0)
        targets = {g.targets(_tuple(f"key{i}"), 8)[0] for i in range(100)}
        assert len(targets) >= 6

    def test_fields_grouping_needs_indices(self):
        with pytest.raises(Exception):
            FieldsGrouping()

    def test_global_grouping(self):
        assert GlobalGrouping().targets(_tuple(1), 8) == [0]

    def test_all_grouping(self):
        assert AllGrouping().targets(_tuple(1), 4) == [0, 1, 2, 3]

    def test_shuffle_balanced(self):
        g = ShuffleGrouping(seed=0)
        counts = [0] * 4
        for __ in range(4_000):
            counts[g.targets(_tuple(1), 4)[0]] += 1
        assert max(counts) < 1.3 * min(counts)


class TestTopologyBuilder:
    def test_needs_spout(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().build()

    def test_bolt_needs_inputs(self):
        b = TopologyBuilder()
        b.set_spout("s", lambda: ListSpout([1]))
        b.set_bolt("orphan", lambda: MapBolt(lambda v: v))
        with pytest.raises(TopologyError):
            b.build()

    def test_unknown_source_rejected(self):
        b = TopologyBuilder()
        b.set_spout("s", lambda: ListSpout([1]))
        b.set_bolt("b", lambda: MapBolt(lambda v: v)).shuffle("nope")
        with pytest.raises(TopologyError):
            b.build()

    def test_duplicate_names_rejected(self):
        b = TopologyBuilder()
        b.set_spout("x", lambda: ListSpout([1]))
        with pytest.raises(TopologyError):
            b.set_bolt("x", lambda: MapBolt(lambda v: v))

    def test_cycle_rejected(self):
        b = TopologyBuilder()
        b.set_spout("s", lambda: ListSpout([1]))
        b.set_bolt("a", lambda: MapBolt(lambda v: v)).shuffle("s").shuffle("b")
        b.set_bolt("b", lambda: MapBolt(lambda v: v)).shuffle("a")
        with pytest.raises(TopologyError):
            b.build()

    def test_valid_dag_builds(self):
        b = TopologyBuilder()
        b.set_spout("s", lambda: ListSpout([1, 2]))
        b.set_bolt("a", lambda: MapBolt(lambda v: v), parallelism=2).shuffle("s")
        b.set_bolt("c", lambda: MapBolt(lambda v: v)).fields("a", 0)
        topo = b.build()
        assert topo.spout_names == ["s"]
        assert set(topo.bolt_names) == {"a", "c"}
        assert [name for name, __ in topo.consumers_of("s")] == ["a"]


class TestAcker:
    def test_simple_tree_completes(self):
        acker = Acker()
        acker.register(1, 0)
        acker.anchor(1, 100)
        assert not acker.ack(1, 999)  # unrelated id, no-op tree change
        acker.anchor(1, 999)  # cancel it back
        assert acker.ack(1, 100)
        assert acker.completed == [1]

    def test_multi_level_tree(self):
        acker = Acker()
        acker.register(7, 0)
        acker.anchor(7, 10)  # root copy
        acker.anchor(7, 20)  # child emitted
        acker.anchor(7, 21)  # another child
        assert not acker.ack(7, 10)
        assert not acker.ack(7, 20)
        assert acker.ack(7, 21)

    def test_duplicate_register_rejected(self):
        acker = Acker()
        acker.register(1, 0)
        with pytest.raises(ExecutionError):
            acker.register(1, 0)

    def test_fail_removes(self):
        acker = Acker()
        acker.register(5, 0)
        acker.anchor(5, 50)
        acker.fail(5)
        assert acker.n_pending == 0
        assert acker.failed == [5]

    def test_timeout_detection(self):
        acker = Acker()
        for i in range(10):
            acker.register(i, 0)
            acker.anchor(i, 100 + i)
        assert set(acker.timed_out(max_age=5)) == set(range(5))


class TestListSpout:
    def test_sequential_emission(self):
        spout = ListSpout(["a", "b"])
        assert spout.next_tuple() == ("a",)
        assert spout.last_offset == 0
        assert spout.next_tuple() == ("b",)
        assert spout.next_tuple() is None

    def test_fail_replays(self):
        spout = ListSpout(["a", "b"])
        spout.next_tuple()
        spout.next_tuple()
        spout.fail(0)
        assert spout.next_tuple() == ("a",)
        assert spout.last_offset == 0

    def test_rewind(self):
        spout = ListSpout(["a", "b", "c"])
        for __ in range(3):
            spout.next_tuple()
        spout.rewind(1)
        assert spout.next_tuple() == ("b",)
