"""End-to-end executor tests: semantics, faults, checkpointing, operators."""

import collections

import pytest

from repro.common.exceptions import ParameterError
from repro.platform import (
    CollectorBolt,
    CountBolt,
    FaultInjector,
    FilterBolt,
    FlatMapBolt,
    InMemoryLog,
    JoinBolt,
    ListSpout,
    LocalExecutor,
    LogSpout,
    MapBolt,
    SynopsisBolt,
    TopologyBuilder,
    TumblingWindowBolt,
)
from repro.cardinality import HyperLogLog
from repro.workloads import zipf_stream


def word_count_topology(words, parallelism=4):
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(words))
    builder.set_bolt("count", CountBolt, parallelism=parallelism).fields("sentences", 0)
    return builder


def total_counts(executor, name="count"):
    merged = collections.Counter()
    for bolt in executor.bolt_instances(name):
        merged.update(bolt.counts)
    return merged


WORDS = list(zipf_stream(2_000, universe=50, skew=1.0, seed=101))
TRUTH = collections.Counter(WORDS)


class TestBasicExecution:
    def test_word_count_exact_without_faults(self):
        ex = LocalExecutor(word_count_topology(WORDS).build())
        ex.run()
        assert total_counts(ex) == TRUTH

    def test_fields_grouping_consistency(self):
        """The same word must always land on the same task."""
        ex = LocalExecutor(word_count_topology(WORDS).build())
        ex.run()
        owners = collections.defaultdict(set)
        for task, bolt in enumerate(ex.bolt_instances("count")):
            for word in bolt.counts:
                owners[word].add(task)
        assert all(len(tasks) == 1 for tasks in owners.values())

    def test_multi_stage_pipeline(self):
        builder = TopologyBuilder()
        builder.set_spout("nums", lambda: ListSpout(list(range(100))))
        builder.set_bolt("evens", lambda: FilterBolt(lambda v: v[0] % 2 == 0)).shuffle("nums")
        builder.set_bolt("squared", lambda: MapBolt(lambda v: (v[0] ** 2,))).shuffle("evens")
        builder.set_bolt("sink", CollectorBolt).global_("squared")
        ex = LocalExecutor(builder.build())
        ex.run()
        (sink,) = ex.bolt_instances("sink")
        assert sorted(v[0] for v in sink.results) == [i * i for i in range(0, 100, 2)]

    def test_flatmap(self):
        builder = TopologyBuilder()
        builder.set_spout("lines", lambda: ListSpout(["a b", "c"]))
        builder.set_bolt(
            "split", lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()])
        ).shuffle("lines")
        builder.set_bolt("sink", CollectorBolt).global_("split")
        ex = LocalExecutor(builder.build())
        ex.run()
        (sink,) = ex.bolt_instances("sink")
        assert sorted(v[0] for v in sink.results) == ["a", "b", "c"]

    def test_log_spout(self):
        log = InMemoryLog()
        log.append_many(["x", "y", "z"])
        builder = TopologyBuilder()
        builder.set_spout("log", lambda: LogSpout(log))
        builder.set_bolt("sink", CollectorBolt).global_("log")
        ex = LocalExecutor(builder.build())
        ex.run()
        (sink,) = ex.bolt_instances("sink")
        assert [v[0] for v in sink.results] == ["x", "y", "z"]

    def test_metrics_populated(self):
        ex = LocalExecutor(word_count_topology(WORDS).build(), semantics="at_least_once")
        metrics = ex.run()
        assert metrics.components["spout:sentences"].emitted == len(WORDS)
        assert metrics.throughput() > 0
        assert metrics.latency_quantile(0.5) >= 0

    def test_unknown_bolt_inspection(self):
        ex = LocalExecutor(word_count_topology(WORDS).build())
        with pytest.raises(ParameterError):
            ex.bolt_instances("nope")

    def test_invalid_semantics(self):
        with pytest.raises(ParameterError):
            LocalExecutor(word_count_topology(WORDS).build(), semantics="whatever")


class TestDeliverySemantics:
    DROPPY = dict(drop_probability=0.02, seed=7)

    def test_at_most_once_loses_data(self):
        ex = LocalExecutor(
            word_count_topology(WORDS).build(),
            semantics="at_most_once",
            faults=FaultInjector(**self.DROPPY),
        )
        ex.run()
        counted = sum(total_counts(ex).values())
        assert counted < len(WORDS)

    def test_at_least_once_counts_everything_possibly_twice(self):
        ex = LocalExecutor(
            word_count_topology(WORDS).build(),
            semantics="at_least_once",
            faults=FaultInjector(**self.DROPPY),
        )
        metrics = ex.run()
        counts = total_counts(ex)
        assert sum(counts.values()) >= len(WORDS)
        assert all(counts[w] >= TRUTH[w] for w in TRUTH)
        assert metrics.replays > 0

    def test_at_least_once_no_faults_is_exact(self):
        ex = LocalExecutor(word_count_topology(WORDS).build(), semantics="at_least_once")
        metrics = ex.run()
        assert total_counts(ex) == TRUTH
        assert metrics.replays == 0

    def test_exactly_once_with_drops_is_exact(self):
        ex = LocalExecutor(
            word_count_topology(WORDS).build(),
            semantics="exactly_once",
            faults=FaultInjector(drop_probability=0.005, seed=3),
            checkpoint_interval=100,
        )
        metrics = ex.run()
        assert total_counts(ex) == TRUTH
        assert metrics.recoveries > 0
        assert metrics.checkpoints > 0

    def test_exactly_once_with_crash_is_exact(self):
        ex = LocalExecutor(
            word_count_topology(WORDS).build(),
            semantics="exactly_once",
            faults=FaultInjector(crash_after=1_000, seed=5),
            checkpoint_interval=200,
        )
        metrics = ex.run()
        assert total_counts(ex) == TRUTH
        assert metrics.recoveries == 1

    def test_exactly_once_transactional_sink(self):
        builder = word_count_topology(WORDS)
        builder.set_bolt("sink", CollectorBolt).global_("count")
        ex = LocalExecutor(
            builder.build(),
            semantics="exactly_once",
            faults=FaultInjector(crash_after=1_500, seed=9),
            checkpoint_interval=250,
        )
        ex.run()
        (sink,) = ex.bolt_instances("sink")
        # The sink saw exactly one update per source word (no duplicates).
        assert len(sink.results) == len(WORDS)


class TestOperators:
    def test_tumbling_window_bolt(self):
        events = [(float(t), t) for t in range(10)]
        builder = TopologyBuilder()
        builder.set_spout("events", lambda: ListSpout(events))
        builder.set_bolt("win", lambda: TumblingWindowBolt(5.0, agg=sum)).global_("events")
        builder.set_bolt("sink", CollectorBolt).global_("win")
        ex = LocalExecutor(builder.build())
        ex.run()
        (sink,) = ex.bolt_instances("sink")
        assert (0.0, 5.0, 0 + 1 + 2 + 3 + 4) in sink.results
        assert (5.0, 10.0, 5 + 6 + 7 + 8 + 9) in sink.results

    def test_join_bolt(self):
        events = [(0, "k1", "ad1"), (1, "k1", "click1"), (1, "k2", "click2"), (0, "k2", "ad2")]
        builder = TopologyBuilder()
        builder.set_spout("events", lambda: ListSpout(events))
        builder.set_bolt("join", JoinBolt).fields("events", 1)
        builder.set_bolt("sink", CollectorBolt).global_("join")
        ex = LocalExecutor(builder.build())
        ex.run()
        (sink,) = ex.bolt_instances("sink")
        assert ("k1", "ad1", "click1") in sink.results
        assert ("k2", "ad2", "click2") in sink.results

    def test_synopsis_bolt_hll(self):
        visitors = [f"u{i % 500}" for i in range(5_000)]
        builder = TopologyBuilder()
        builder.set_spout("visits", lambda: ListSpout(visitors))
        builder.set_bolt(
            "uniques", lambda: SynopsisBolt(lambda: HyperLogLog(precision=12, seed=0))
        ).global_("visits")
        ex = LocalExecutor(builder.build())
        ex.run()
        (bolt,) = ex.bolt_instances("uniques")
        assert abs(bolt.synopsis.estimate() - 500) / 500 < 0.05

    def test_synopsis_bolt_survives_recovery(self):
        visitors = [f"u{i}" for i in range(2_000)]
        builder = TopologyBuilder()
        builder.set_spout("visits", lambda: ListSpout(visitors))
        builder.set_bolt(
            "uniques", lambda: SynopsisBolt(lambda: HyperLogLog(precision=12, seed=0))
        ).global_("visits")
        ex = LocalExecutor(
            builder.build(),
            semantics="exactly_once",
            faults=FaultInjector(crash_after=1_200, seed=11),
            checkpoint_interval=300,
        )
        ex.run()
        (bolt,) = ex.bolt_instances("uniques")
        assert abs(bolt.synopsis.estimate() - 2_000) / 2_000 < 0.05
        assert bolt.synopsis.count == 2_000  # exactly-once: no double updates
