"""Tests for the Spark-style micro-batch execution model."""

import collections

import pytest

from repro.common.exceptions import ExecutionError, ParameterError
from repro.platform.microbatch import MicroBatchContext
from repro.workloads import zipf_stream

WORDS = list(zipf_stream(2_000, universe=100, skew=1.0, seed=303))
TRUTH = collections.Counter(WORDS)


def word_count_context(batch_size=100, checkpoint_every=3):
    ctx = MicroBatchContext(batch_size=batch_size, checkpoint_every=checkpoint_every)
    counts = (
        ctx.source(WORDS)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b, stateful=True)
        .collect()
    )
    return ctx, counts


class TestBasics:
    def test_validation(self):
        with pytest.raises(ParameterError):
            MicroBatchContext(batch_size=0)
        ctx = MicroBatchContext()
        with pytest.raises(ExecutionError):
            ctx.run()  # no source
        ctx.source([1])
        with pytest.raises(ParameterError):
            ctx.source([2])  # second source rejected

    def test_map_filter_flatmap(self):
        ctx = MicroBatchContext(batch_size=4)
        out = (
            ctx.source(["a b", "c d", "e"])
            .flat_map(lambda s: s.split())
            .filter(lambda w: w != "c")
            .map(str.upper)
            .collect()
        )
        ctx.run()
        assert out.results() == ["A", "B", "D", "E"]

    def test_batching_shape(self):
        ctx = MicroBatchContext(batch_size=3)
        out = ctx.source(list(range(8))).collect()
        ctx.run()
        assert out.batches() == [[0, 1, 2], [3, 4, 5], [6, 7]]
        assert ctx.n_batches == 3


class TestStatefulReduce:
    def test_word_count_converges(self):
        ctx, counts = word_count_context()
        ctx.run()
        final = dict(counts.batches()[-1])
        assert final == dict(TRUTH)

    def test_stateless_reduce_is_per_batch(self):
        ctx = MicroBatchContext(batch_size=3)
        out = (
            ctx.source(["x", "x", "x", "x", "x", "x"])
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b, stateful=False)
            .collect()
        )
        ctx.run()
        assert out.batches() == [[("x", 3)], [("x", 3)]]


class TestWindow:
    def test_windowed_batches(self):
        ctx = MicroBatchContext(batch_size=2)
        out = ctx.source([1, 2, 3, 4, 5, 6]).window(2).collect()
        ctx.run()
        assert out.batches() == [[1, 2], [1, 2, 3, 4], [3, 4, 5, 6]]


class TestLineageRecovery:
    @pytest.mark.parametrize("fail_at", [1, 7, 19])
    def test_crash_recovers_exactly(self, fail_at):
        ctx, counts = word_count_context(batch_size=100, checkpoint_every=4)
        ctx.run(fail_at=fail_at)
        final = dict(counts.batches()[-1])
        assert final == dict(TRUTH)
        assert ctx.recomputations == 1

    def test_crash_before_any_checkpoint(self):
        ctx, counts = word_count_context(batch_size=100, checkpoint_every=100)
        ctx.run(fail_at=2)  # no checkpoint yet: recompute from batch 0
        final = dict(counts.batches()[-1])
        assert final == dict(TRUTH)

    def test_no_failure_no_recomputation(self):
        ctx, __ = word_count_context()
        ctx.run()
        assert ctx.recomputations == 0
        assert ctx.batches_run == ctx.n_batches
