"""Executor edge cases: backpressure, component errors, replay caps."""

import collections

import pytest

from repro.common.exceptions import ExecutionError
from repro.platform import (
    Bolt,
    CollectorBolt,
    CountBolt,
    FaultInjector,
    FlatMapBolt,
    ListSpout,
    LocalExecutor,
    MapBolt,
    TopologyBuilder,
)


class TestBackpressure:
    def test_throttling_keeps_queues_bounded(self):
        """An amplifying bolt (1 -> 50 tuples) must not blow past max_queue
        by more than one burst."""
        builder = TopologyBuilder()
        builder.set_spout("s", lambda: ListSpout(list(range(200))))
        builder.set_bolt(
            "amplify", lambda: FlatMapBolt(lambda v: [(v[0], i) for i in range(50)])
        ).shuffle("s")
        builder.set_bolt("sink", CollectorBolt).global_("amplify")
        ex = LocalExecutor(builder.build(), max_queue=64)
        metrics = ex.run()
        (sink,) = ex.bolt_instances("sink")
        assert len(sink.results) == 200 * 50
        high_water = metrics.components["bolt:sink"].queue_high_water
        assert high_water <= 64 + 50  # one amplification burst of slack


class TestErrorPropagation:
    def test_bolt_exception_wrapped(self):
        class Exploding(Bolt):
            def process(self, values, emit):
                raise ValueError("boom")

        builder = TopologyBuilder()
        builder.set_spout("s", lambda: ListSpout([1]))
        builder.set_bolt("bad", Exploding).shuffle("s")
        ex = LocalExecutor(builder.build())
        with pytest.raises(ExecutionError, match="bad"):
            ex.run()


class TestReplayCap:
    def test_always_dropped_message_gives_up(self):
        """A 'poisoned' route (100% drop) must not loop forever in
        at-least-once mode; the replay cap bounds the retries."""
        builder = TopologyBuilder()
        builder.set_spout("s", lambda: ListSpout(["x"]))
        builder.set_bolt("count", CountBolt).fields("s", 0)
        ex = LocalExecutor(
            builder.build(),
            semantics="at_least_once",
            faults=FaultInjector(drop_probability=0.999999, seed=1),
            max_replays_per_message=5,
        )
        metrics = ex.run()  # must terminate
        assert metrics.replays <= 5
        assert metrics.components["spout:__all__"].failed >= 1


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        words = ["a", "b", "c"] * 100

        def run():
            builder = TopologyBuilder()
            builder.set_spout("s", lambda: ListSpout(words))
            builder.set_bolt("count", CountBolt, parallelism=3).fields("s", 0)
            ex = LocalExecutor(
                builder.build(),
                semantics="at_least_once",
                faults=FaultInjector(drop_probability=0.05, seed=42),
            )
            ex.run()
            merged = collections.Counter()
            for bolt in ex.bolt_instances("count"):
                merged.update(bolt.counts)
            return merged, ex.metrics.replays

        first, second = run(), run()
        assert first == second


class TestDiamondTopology:
    def test_fan_out_fan_in(self):
        """Two parallel branches re-converging (diamond) with reliability."""
        builder = TopologyBuilder()
        builder.set_spout("s", lambda: ListSpout(list(range(50))))
        builder.set_bolt("double", lambda: MapBolt(lambda v: (v[0] * 2,))).shuffle("s")
        builder.set_bolt("negate", lambda: MapBolt(lambda v: (-v[0],))).shuffle("s")
        sink = builder.set_bolt("sink", CollectorBolt)
        sink.global_("double").global_("negate")
        ex = LocalExecutor(builder.build(), semantics="at_least_once")
        ex.run()
        (bolt,) = ex.bolt_instances("sink")
        values = sorted(v[0] for v in bolt.results)
        expected = sorted([i * 2 for i in range(50)] + [-i for i in range(50)])
        assert values == expected
