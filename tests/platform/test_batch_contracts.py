"""Batch APIs must be observationally identical to their per-tuple forms.

``Grouping.targets_batch`` and ``Spout.next_batch`` exist so the cluster
coordinator can move envelopes, not tuples — but any divergence from the
per-tuple contract would silently re-partition the stream. These tests
pin the equivalence, plus the ``split()`` partitioning used for parallel
spouts.
"""

import pytest

from repro.common.exceptions import TopologyError
from repro.platform.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
)
from repro.platform.topology import ListSpout, Spout, is_partitionable


_PAYLOADS = [(f"k{i % 7}", i) for i in range(64)]


class _Tup:
    """Minimal stand-in for the executor's StreamTuple (.values only)."""

    __slots__ = ("values",)

    def __init__(self, values):
        self.values = values


class TestTargetsBatch:
    @pytest.mark.parametrize("n_tasks", [1, 2, 5])
    def test_fields_grouping_batch_equals_per_tuple(self, n_tasks):
        grouping = FieldsGrouping(0)
        batch = FieldsGrouping(0)
        expected = [grouping.targets(_Tup(p), n_tasks) for p in _PAYLOADS]
        assert batch.targets_batch(list(_PAYLOADS), n_tasks) == expected

    def test_shuffle_grouping_batch_preserves_sequence(self):
        a, b = ShuffleGrouping(seed=3), ShuffleGrouping(seed=3)
        expected = [a.targets(_Tup(p), 4) for p in _PAYLOADS]
        assert b.targets_batch(list(_PAYLOADS), 4) == expected

    def test_global_and_all_groupings(self):
        assert GlobalGrouping().targets_batch(_PAYLOADS[:3], 5) == [[0]] * 3
        assert AllGrouping().targets_batch(_PAYLOADS[:2], 3) == [[0, 1, 2]] * 2

    def test_fields_grouping_key_cache_does_not_leak_between_keys(self):
        grouping = FieldsGrouping(0)
        routes = grouping.targets_batch([("x", 0), ("y", 1), ("x", 2)], 8)
        assert routes[0] == routes[2]  # same key, same shard
        # different key may map elsewhere, but must match per-tuple form
        assert routes[1] == FieldsGrouping(0).targets(_Tup(("y", 1)), 8)


class TestNextBatch:
    def test_next_batch_equals_next_tuple_sequence(self):
        records = [(i,) for i in range(23)]
        one, many = ListSpout(records), ListSpout(records)
        expected = []
        while True:
            payload = one.next_tuple()
            if payload is None:
                break
            expected.append(payload)
        got = []
        while True:
            batch = many.next_batch(5)
            if not batch:
                break
            got.extend(batch)
        assert got == expected

    def test_next_batch_tracks_offsets(self):
        spout = ListSpout([(i,) for i in range(10)])
        spout.next_batch(4)
        assert spout.last_offset == 3
        assert spout.offset == 4

    def test_next_batch_drains_retry_queue_first(self):
        spout = ListSpout([(i,) for i in range(6)])
        spout.next_batch(4)
        spout.fail(1)  # record 1 must come around again
        replayed = spout.next_batch(3)
        assert (1,) in replayed


class TestSplit:
    def test_split_partitions_round_robin(self):
        records = [(i,) for i in range(10)]
        parts = ListSpout(records).split(3)
        assert len(parts) == 3
        seen = []
        for part in parts:
            while True:
                payload = part.next_tuple()
                if payload is None:
                    break
                seen.append(payload)
        assert sorted(seen) == sorted(records)

    def test_default_spout_is_not_partitionable(self):
        class _Plain(Spout):
            def next_tuple(self):
                return None

        assert not is_partitionable(_Plain())
        assert is_partitionable(ListSpout([]))
        with pytest.raises(TopologyError):
            _Plain().split(2)
