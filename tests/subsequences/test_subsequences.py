"""Tests for LIS / LCS subsequence tools."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.subsequences import (
    ApproxLISTracker,
    LISTracker,
    WindowedLCS,
    lcs_similarity,
    longest_common_subsequence,
    longest_increasing_subsequence,
)


def brute_lis(values):
    best = 0
    n = len(values)
    dp = [1] * n
    for i in range(n):
        for j in range(i):
            if values[j] < values[i]:
                dp[i] = max(dp[i], dp[j] + 1)
        best = max(best, dp[i])
    return best if n else 0


class TestLIS:
    @pytest.mark.parametrize(
        "values,expected",
        [
            ([], 0),
            ([5], 1),
            ([1, 2, 3, 4], 4),
            ([4, 3, 2, 1], 1),
            ([3, 1, 4, 1, 5, 9, 2, 6], 4),
            ([2, 2, 2], 1),  # strict increase
        ],
    )
    def test_known_cases(self, values, expected):
        assert longest_increasing_subsequence(values) == expected

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 30), max_size=40))
    def test_property_matches_brute_force(self, values):
        assert longest_increasing_subsequence(values) == brute_lis(values)

    def test_tracker_matches_batch(self):
        rng = make_np_rng(71)
        values = rng.normal(size=2_000)
        tracker = LISTracker()
        tracker.update_many(values)
        assert tracker.lis_length() == longest_increasing_subsequence(values)

    def test_tracker_memory_equals_lis(self):
        tracker = LISTracker()
        tracker.update_many([5, 4, 3, 2, 1, 2, 3])
        assert tracker.memory_slots == tracker.lis_length()


class TestApproxLIS:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ApproxLISTracker(s=2)

    def test_exact_under_budget(self):
        a = ApproxLISTracker(s=64)
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        a.update_many(values)
        assert a.lis_length() == longest_increasing_subsequence(values)

    def test_bounded_memory_over_budget(self):
        a = ApproxLISTracker(s=32)
        a.update_many(range(10_000))  # LIS = 10_000
        assert a.memory_slots <= 33

    def test_estimate_within_factor(self):
        a = ApproxLISTracker(s=64)
        n = 5_000
        a.update_many(range(n))
        assert 0.3 * n <= a.lis_length() <= 1.5 * n


class TestLCS:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 3),
            ("abc", "def", 0),
            ("abcde", "ace", 3),
            ("aggtab", "gxtxayb", 4),
        ],
    )
    def test_known_cases(self, a, b, expected):
        assert longest_common_subsequence(a, b) == expected

    def test_similarity_normalised(self):
        assert lcs_similarity("abc", "abc") == 1.0
        assert lcs_similarity("", "") == 1.0
        assert lcs_similarity("abc", "xyz") == 0.0

    @settings(max_examples=30)
    @given(st.text(alphabet="ab", max_size=20), st.text(alphabet="ab", max_size=20))
    def test_property_symmetric_and_bounded(self, a, b):
        lcs = longest_common_subsequence(a, b)
        assert lcs == longest_common_subsequence(b, a)
        assert lcs <= min(len(a), len(b))


class TestWindowedLCS:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            WindowedLCS(0)

    def test_identical_streams(self):
        w = WindowedLCS(window=32)
        for i in range(100):
            w.update((i % 5, i % 5))
        assert w.similarity() == 1.0

    def test_diverged_streams(self):
        w = WindowedLCS(window=16)
        for i in range(100):
            w.update(("a", "b"))
        assert w.similarity() == 0.0

    def test_window_forgets_old_divergence(self):
        w = WindowedLCS(window=8)
        for __ in range(50):
            w.update(("x", "y"))  # divergent history
        for i in range(8):
            w.update((i, i))  # recent agreement fills the window
        assert w.similarity() == 1.0
