"""Registry-wide state shipping across a *real* process boundary.

The cluster subsystem ships operator state between processes started with
``fork``, which inherits the parent's memory and can mask serialization
gaps. This suite uses the **spawn** start method instead — the child is a
fresh interpreter that re-imports everything and sees only the shipped
bytes — and drives every synopsis in the registry through it:

* round-trip: capture → child restore → child re-capture → parent restore
  must reproduce the exact state fingerprint;
* merge: folding a shipped-and-returned partial into a local partial must
  be bit-identical to folding the local original (merge-on-query must not
  care which side of a process boundary a partial came from).

One child process serves all synopses (spawn start-up is expensive); the
workloads reuse the registry-wide equivalence specs.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.core import stateship

from tests.core.test_batch_equivalence import SPEC, _build

N_ITEMS = 160
_SEED = 4321


def _feed(name: str, items: list):
    synopsis = _build(name)
    synopsis.update_many(items)
    return synopsis


def _child_roundtrip(conn) -> None:
    """Spawned child: restore every payload, re-capture, ship back."""
    payloads: dict[str, bytes] = conn.recv()
    out: dict[str, bytes] = {}
    for name, blob in payloads.items():
        out[name] = stateship.capture(stateship.restore(blob))
    conn.send(out)
    conn.close()


@pytest.fixture(scope="module")
def shipped() -> dict[str, bytes]:
    """Every registered synopsis captured, bounced off a spawned child."""
    payloads = {}
    for name in sorted(SPEC):
        __, workload = SPEC[name]
        items = workload(N_ITEMS, random.Random(_SEED))
        payloads[name] = stateship.capture(_feed(name, items))
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(target=_child_roundtrip, args=(child_conn,))
    process.start()
    parent_conn.send(payloads)
    returned = parent_conn.recv()
    process.join(timeout=30)
    assert process.exitcode == 0
    return returned


@pytest.mark.parametrize("name", sorted(SPEC))
def test_spawn_roundtrip_is_bit_identical(name, shipped):
    __, workload = SPEC[name]
    items = workload(N_ITEMS, random.Random(_SEED))
    original = _feed(name, items)
    returned = stateship.restore(shipped[name])
    assert state_fingerprint(returned) == state_fingerprint(original)


@pytest.mark.parametrize("name", sorted(SPEC))
def test_shipped_partial_merges_bit_identically(name, shipped):
    __, workload = SPEC[name]
    items = workload(N_ITEMS, random.Random(_SEED))
    other_items = workload(N_ITEMS, random.Random(_SEED + 1))

    local_a = _feed(name, other_items)
    local_b = _feed(name, items)
    try:
        local_a.merge(local_b)
    except Exception:
        pytest.skip(f"{name} is not mergeable")

    shipped_a = _feed(name, other_items)
    shipped_a.merge(stateship.restore(shipped[name]))
    assert state_fingerprint(shipped_a) == state_fingerprint(local_a)
