"""Cross-module serialization round-trips (speed layer -> serving layer)."""

import pytest

from repro.common.exceptions import SerializationError
from repro.common.rng import make_np_rng
from repro.frequency import SpaceSaving
from repro.quantiles import KLLSketch, TDigest
from repro.workloads import zipf_stream


class TestTDigestBytes:
    def test_roundtrip_preserves_quantiles(self):
        data = make_np_rng(71).lognormal(2, 1, size=20_000)
        td = TDigest(delta=150)
        td.update_many(data)
        clone = TDigest.from_bytes(td.to_bytes())
        for q in (0.1, 0.5, 0.99):
            assert clone.quantile(q) == pytest.approx(td.quantile(q))
        assert clone.count == td.count

    def test_clone_remains_usable(self):
        td = TDigest()
        td.update_many([1.0, 2.0, 3.0])
        clone = TDigest.from_bytes(td.to_bytes())
        clone.update_many([4.0, 5.0])
        assert clone.count == 5
        td.merge(clone)  # same delta: still mergeable
        assert td.count == 8


class TestSpaceSavingBytes:
    def test_roundtrip_preserves_topk(self):
        data = list(zipf_stream(20_000, universe=2_000, skew=1.2, seed=72))
        ss = SpaceSaving(k=64)
        ss.update_many(data)
        clone = SpaceSaving.from_bytes(ss.to_bytes())
        assert clone.top(10) == ss.top(10)
        assert clone.guaranteed_count(ss.top(1)[0][0]) == ss.guaranteed_count(ss.top(1)[0][0])

    def test_clone_accepts_updates(self):
        ss = SpaceSaving(k=4)
        ss.update_many(["a", "b", "a"])
        clone = SpaceSaving.from_bytes(ss.to_bytes())
        clone.update("a")
        assert clone.estimate("a") == 3

    def test_unportable_keys_rejected(self):
        ss = SpaceSaving(k=4)
        ss.update(object())
        with pytest.raises(SerializationError):
            ss.to_bytes()


class TestKLLBytes:
    def test_roundtrip_preserves_ranks(self):
        data = make_np_rng(73).normal(size=30_000)
        sketch = KLLSketch(k=200, seed=0)
        sketch.update_many(data)
        clone = KLLSketch.from_bytes(sketch.to_bytes())
        assert clone.quantile(0.5) == sketch.quantile(0.5)
        assert clone.count == sketch.count

    def test_roundtrip_then_merge(self):
        a, b = KLLSketch(k=128, seed=1), KLLSketch(k=128, seed=2)
        a.update_many(float(i) for i in range(1_000))
        b.update_many(float(i) for i in range(1_000, 2_000))
        restored = KLLSketch.from_bytes(a.to_bytes())
        restored.merge(b)
        assert restored.count == 2_000
        assert 800 <= restored.quantile(0.5) <= 1_200
