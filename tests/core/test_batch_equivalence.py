"""The batch-ingest invariant, enforced registry-wide.

For **every** synopsis registered in :mod:`repro.core.registry`,
``update_many(items)`` must leave the synopsis in bit-identical state to
``for item in items: update(item)`` — whether the batch arrives whole or
in ragged chunks. Synopses with vectorized fast paths (Count-Min, Bloom,
HLL, ...) are exercised through them; everything else goes through the
:class:`~repro.common.mergeable.SynopsisBase` default, so this suite also
pins the protocol for future fast paths. A spec-coverage test fails the
build when a new synopsis is registered without an equivalence entry.
"""

from __future__ import annotations

import random
from typing import Any, Callable

import numpy as np
import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.core import registry

N_ITEMS = 256
CHUNK = 7


# -- seeded workloads --------------------------------------------------------


def _tokens(n: int, rnd: random.Random) -> list:
    # Quadratic skew: heavy repeats, like word frequencies.
    return [f"t{int(rnd.random() ** 2 * 40)}" for __ in range(n)]


def _distinct_tokens(n: int, rnd: random.Random) -> list:
    # A cuckoo filter stores one fingerprint per occurrence, so heavy
    # duplication overflows its buckets by design; feed it distinct keys.
    out = [f"u{i}" for i in range(n)]
    rnd.shuffle(out)
    return out


def _floats(n: int, rnd: random.Random) -> list:
    return [rnd.gauss(0.0, 1.0) for __ in range(n)]


def _unit(n: int, rnd: random.Random) -> list:
    return [rnd.random() for __ in range(n)]


def _pos_floats(n: int, rnd: random.Random) -> list:
    return [1.0 + rnd.random() for __ in range(n)]


def _bits(n: int, rnd: random.Random) -> list:
    return [rnd.randint(0, 1) for __ in range(n)]


def _qdigest_ints(n: int, rnd: random.Random) -> list:
    return [rnd.randrange(60_000) for __ in range(n)]


def _small_ints(n: int, rnd: random.Random) -> list:
    return [rnd.randrange(50) for __ in range(n)]


def _pairs(n: int, rnd: random.Random) -> list:
    return [(rnd.gauss(0.0, 1.0), rnd.gauss(0.0, 1.0)) for __ in range(n)]


def _edges(n: int, rnd: random.Random) -> list:
    out = []
    while len(out) < n:
        u, v = rnd.randrange(30), rnd.randrange(30)
        if u != v:
            out.append((u, v))
    return out


def _weighted_edges(n: int, rnd: random.Random) -> list:
    return [(u, v, rnd.random()) for u, v in _edges(n, rnd)]


def _vec3(n: int, rnd: random.Random) -> list:
    return [tuple(rnd.gauss(0.0, 1.0) for __ in range(3)) for __ in range(n)]


def _labeled_vec3(n: int, rnd: random.Random) -> list:
    return [(vec, rnd.randint(0, 1)) for vec in _vec3(n, rnd)]


def _vec3_target(n: int, rnd: random.Random) -> list:
    return [(vec, rnd.gauss(0.0, 1.0)) for vec in _vec3(n, rnd)]


def _token_sets_labeled(n: int, rnd: random.Random) -> list:
    return [
        (
            (f"w{rnd.randrange(20)}", f"w{rnd.randrange(20)}"),
            rnd.randint(0, 1),
        )
        for __ in range(n)
    ]


def _key_events(n: int, rnd: random.Random) -> list:
    return [(f"u{rnd.randrange(5)}", f"e{rnd.randrange(6)}") for __ in range(n)]


def _sym_pairs(n: int, rnd: random.Random) -> list:
    return [(f"x{rnd.randrange(6)}", f"y{rnd.randrange(6)}") for __ in range(n)]


def _hhh_tuples(n: int, rnd: random.Random) -> list:
    return [(f"a{rnd.randrange(4)}", f"b{rnd.randrange(8)}") for __ in range(n)]


def _summary_params() -> dict:
    from repro.cardinality.hyperloglog import HyperLogLog
    from repro.frequency.space_saving import SpaceSaving

    # Fresh children per instantiation — the two test instances must not
    # share synopsis objects.
    return {"uniques": HyperLogLog(precision=8), "topk": SpaceSaving(16)}


def _kalman_params() -> dict:
    eye = np.array([[1.0]])
    return {"F": eye, "H": eye, "Q": eye * 1e-3, "R": eye * 0.5}


def _ukf_params() -> dict:
    eye = np.array([[1.0]])
    return {
        "f": lambda x: x,
        "h": lambda x: x,
        "Q": eye * 1e-3,
        "R": eye * 0.5,
        "x0": np.array([0.0]),
    }


# -- the spec: every registry name -> (params, workload) ---------------------

Params = dict | Callable[[], dict]

SPEC: dict[str, tuple[Params, Callable[[int, random.Random], list]]] = {
    "algorithm_l": ({"k": 16}, _tokens),
    "ams": ({}, _tokens),
    "approx_lis": ({}, _floats),
    "ar": ({}, _floats),
    "biased_reservoir": ({"lam": 0.01}, _tokens),
    "bloom": ({"capacity": 1024}, _tokens),
    "chain_sampler": ({"k": 8, "window": 64}, _tokens),
    "clustream": ({"dims": 3, "max_micro_clusters": 10}, _vec3),
    "connectivity": ({}, _edges),
    "correlation": ({}, _pairs),
    "correlation_sketch": ({"window": 64, "d": 8}, _floats),
    "count_min": ({"epsilon": 0.01}, _tokens),
    "count_sketch": ({"epsilon": 0.01}, _tokens),
    "counting_bloom": ({"capacity": 1024}, _tokens),
    "cuckoo": ({"capacity": 1024}, _distinct_tokens),
    "decayed_counter": ({"half_life": 10.0}, _unit),
    "decayed_frequencies": ({"half_life": 10.0}, _tokens),
    "dgim": ({"window": 64}, _bits),
    "distinct_sampler": ({}, _tokens),
    "dynamic_graph": ({}, _edges),
    "eh_sum": ({"window": 64}, _small_ints),
    "eh_variance": ({"window": 64}, _floats),
    "endbiased_histogram": ({}, _tokens),
    "equiwidth_histogram": ({"lo": -8.0, "hi": 8.0}, _floats),
    "ewma": ({}, _floats),
    "exact_quantiles": ({}, _floats),
    "expj": ({"k": 8}, _tokens),
    "extrema": ({"window": 64}, _floats),
    "fk": ({"k": 2, "groups": 3, "per_group": 8}, _tokens),
    "flajolet_martin": ({}, _tokens),
    "frugal": ({}, _floats),
    "frugal2u": ({}, _floats),
    "gk": ({}, _floats),
    "hhh": ({"levels": 2, "k": 32}, _hhh_tuples),
    "hoeffding_tree": ({"dims": 3, "grace_period": 32}, _labeled_vec3),
    "holt_winters": ({"period": 8}, _pos_floats),
    "hstrees": ({"dims": 3, "n_trees": 5, "window": 64}, _vec3),
    "hyperloglog": ({}, _tokens),
    "inversions": ({"k": 64}, _floats),
    "kalman": (_kalman_params, _floats),
    "kll": ({"k": 32}, _floats),
    "kmedian": ({"k": 3, "dims": 3, "buffer_size": 64}, _vec3),
    "kmv": ({"k": 32}, _tokens),
    "lag_correlator": ({"window": 64, "max_lag": 8}, _pairs),
    "linear_counter": ({"m": 1024}, _tokens),
    "lis": ({}, _floats),
    "local_trend": ({}, _floats),
    "loglog": ({}, _tokens),
    "lossy_counting": ({"epsilon": 0.01}, _tokens),
    "mad": ({"window": 64}, _floats),
    "matching": ({}, _edges),
    "misra_gries": ({"k": 16}, _tokens),
    "motif": ({"window": 16, "segments": 4}, _floats),
    "naive_bayes": ({}, _token_sets_labeled),
    "online_kmeans": ({"k": 3, "dims": 3}, _vec3),
    "online_logreg": ({"dims": 3}, _labeled_vec3),
    "p2": ({}, _floats),
    "page_hinkley": ({}, _floats),
    "partitioned_bloom": ({"capacity": 1024}, _tokens),
    "passive_aggressive": ({"dims": 3}, _vec3_target),
    "path_oracle": ({}, _edges),
    "priority_sampler": ({"k": 4, "horizon": 50.0}, _tokens),
    "qdigest": ({}, _qdigest_ints),
    "random_walk": ({}, _edges),
    "reservoir": ({"k": 16}, _tokens),
    "retouched_bloom": ({"capacity": 1024}, _tokens),
    "scalable_bloom": ({"initial_capacity": 128}, _tokens),
    "sequences": ({}, _key_events),
    "significant_one": ({"window": 64}, _bits),
    "sliding_hyperloglog": ({}, _tokens),
    "space_saving": ({"k": 16}, _tokens),
    "spanner": ({}, _edges),
    "sparsifier": ({}, _edges),
    "spring": ({"query": (0.2, 0.5, 0.8), "threshold": 1.0}, _unit),
    "stable_bloom": ({"m": 1024}, _tokens),
    "sticky_sampling": ({}, _tokens),
    "subspace": ({"dims": 3}, _vec3),
    "summary": (_summary_params, _tokens),
    "tdigest": ({"buffer_size": 64}, _floats),
    "triangles": ({"reservoir_size": 128}, _edges),
    "ukf": (_ukf_params, _floats),
    "voptimal_histogram": ({"lo": -8.0, "hi": 8.0, "resolution": 64}, _floats),
    "wavelet_histogram": ({"lo": -8.0, "hi": 8.0, "resolution": 64}, _floats),
    "weighted_matching": ({}, _weighted_edges),
    "weighted_reservoir": ({"k": 8}, _tokens),
    "window_kl": ({"reference": 100, "window": 50}, _floats),
    "window_quantiles": ({"window": 64}, _floats),
    "windowed_lcs": ({"window": 32}, _sym_pairs),
    "windowed_topk": ({"window": 64, "k": 8}, _tokens),
    "zscore": ({}, _floats),
}


def _build(name: str) -> Any:
    params, __ = SPEC[name]
    return registry.create(name, **(params() if callable(params) else dict(params)))


def test_spec_covers_every_registered_synopsis():
    """Registering a synopsis without an equivalence spec fails the build."""
    assert set(SPEC) == set(registry.available())


@pytest.mark.parametrize("name", sorted(SPEC))
def test_update_many_is_bit_identical_to_sequential(name):
    __, workload = SPEC[name]
    items = workload(N_ITEMS, random.Random(1234))

    sequential = _build(name)
    for item in items:
        sequential.update(item)

    whole = _build(name)
    whole.update_many(items)

    chunked = _build(name)
    for lo in range(0, len(items), CHUNK):
        chunked.update_many(items[lo : lo + CHUNK])

    want = state_fingerprint(sequential)
    assert state_fingerprint(whole) == want, f"{name}: whole-batch state diverged"
    assert state_fingerprint(chunked) == want, f"{name}: chunked-batch state diverged"


@pytest.mark.parametrize("name", sorted(SPEC))
def test_update_many_accepts_generators_and_empty(name):
    """The protocol takes any iterable; empty input is a no-op."""
    __, workload = SPEC[name]
    items = workload(32, random.Random(99))

    sequential = _build(name)
    for item in items:
        sequential.update(item)

    lazy = _build(name)
    lazy.update_many(iter(items))
    lazy.update_many(iter(()))

    assert state_fingerprint(lazy) == state_fingerprint(sequential)
