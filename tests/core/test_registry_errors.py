"""Registry error paths and invariants (SL006's runtime counterpart)."""

import inspect

import pytest

from repro.common.exceptions import ParameterError
from repro.core import available, create, register
from repro.core.registry import _REGISTRY


class TestErrorPaths:
    def test_unknown_name_raises_with_known_names_listed(self):
        with pytest.raises(ParameterError, match="unknown synopsis"):
            create("definitely_not_a_sketch")
        with pytest.raises(ParameterError, match="hyperloglog"):
            # the error message lists known names to aid discovery
            create("definitely_not_a_sketch")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register("hyperloglog", object)

    def test_duplicate_rejected_case_insensitively(self):
        with pytest.raises(ParameterError, match="already registered"):
            register("HyperLogLog", object)

    def test_bad_params_propagate_from_factory(self):
        with pytest.raises(TypeError):
            create("hyperloglog", not_a_real_param=1)


class TestCaseInsensitivity:
    def test_create_is_case_insensitive(self):
        a = create("HyperLogLog", precision=8, seed=1)
        b = create("hyperloglog", precision=8, seed=1)
        assert type(a) is type(b)

    def test_available_names_are_lowercase(self):
        assert all(name == name.lower() for name in available())


class TestCoverage:
    def test_every_builtin_name_constructs_or_validates(self):
        """Every registered factory is callable and introspectable."""
        for name in available():
            factory = _REGISTRY[name]
            assert callable(factory), name
            # factories must accept keyword params (create passes **params)
            sig = inspect.signature(factory)
            assert sig is not None

    def test_registry_includes_previously_drifted_synopses(self):
        # qdigest was imported by the registry but never registered before
        # streamlint SL006 existed; pin the fix.
        names = available()
        for expected in ("qdigest", "summary", "kalman", "hoeffding_tree", "clustream"):
            assert expected in names

    def test_spot_check_constructions(self):
        assert create("qdigest", depth=12, k=32) is not None
        assert create("online_kmeans", k=3, dims=2, seed=7) is not None
        assert create("retouched_bloom", capacity=100, fp_rate=0.01) is not None
