"""Tests for the core facade: registry, StreamSummary and Pipeline."""

import collections

import pytest

from repro.common.exceptions import MergeError, ParameterError
from repro.core import Pipeline, StreamSummary, available, create, register
from repro.cardinality import HyperLogLog
from repro.frequency import SpaceSaving
from repro.platform import FaultInjector
from repro.quantiles import TDigest
from repro.workloads import zipf_stream


class TestRegistry:
    def test_builtins_available(self):
        names = available()
        for expected in ("hyperloglog", "count_min", "tdigest", "space_saving", "bloom"):
            assert expected in names

    def test_create_with_params(self):
        hll = create("hyperloglog", precision=10, seed=3)
        assert hll.precision == 10

    def test_create_factory_style(self):
        bloom = create("bloom", capacity=100, fp_rate=0.01)
        bloom.update("x")
        assert "x" in bloom

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            create("nope")

    def test_duplicate_register_rejected(self):
        with pytest.raises(ParameterError):
            register("hyperloglog", HyperLogLog)

    def test_custom_registration(self):
        register("my_custom_sketch", lambda: HyperLogLog(precision=4))
        assert create("my_custom_sketch").precision == 4


class TestStreamSummary:
    def test_needs_synopses(self):
        with pytest.raises(ParameterError):
            StreamSummary()

    def test_fans_out_updates(self):
        summary = StreamSummary(
            uniques=HyperLogLog(precision=12, seed=0), topk=SpaceSaving(16)
        )
        data = list(zipf_stream(5_000, universe=300, skew=1.2, seed=301))
        summary.update_many(data)
        truth = collections.Counter(data)
        assert abs(summary["uniques"].estimate() - len(truth)) / len(truth) < 0.1
        assert summary["topk"].top(1)[0][0] == truth.most_common(1)[0][0]
        assert summary.count == 5_000

    def test_extractors(self):
        summary = StreamSummary(
            extractors={"latency": lambda e: e[1]},
            latency=TDigest(delta=100),
        )
        summary.update_many([("req", 10.0), ("req", 20.0), ("req", 30.0)])
        assert 10.0 <= summary["latency"].quantile(0.5) <= 30.0

    def test_extractor_for_unknown_synopsis(self):
        with pytest.raises(ParameterError):
            StreamSummary(extractors={"ghost": lambda e: e}, real=TDigest())

    def test_merge_componentwise(self):
        def make():
            return StreamSummary(uniques=HyperLogLog(precision=12, seed=1))

        a, b = make(), make()
        a.update_many(f"a{i}" for i in range(1_000))
        b.update_many(f"b{i}" for i in range(1_000))
        a.merge(b)
        assert abs(a["uniques"].estimate() - 2_000) / 2_000 < 0.1

    def test_merge_mismatched_names(self):
        a = StreamSummary(x=HyperLogLog(seed=0))
        b = StreamSummary(y=HyperLogLog(seed=0))
        with pytest.raises(MergeError):
            a.merge(b)

    def test_unknown_name_access(self):
        s = StreamSummary(x=HyperLogLog())
        with pytest.raises(ParameterError):
            s["nope"]


class TestPipeline:
    SENTENCES = ["the cat sat", "the dog ran", "the cat ran"]

    def test_word_count_pipeline(self):
        results = (
            Pipeline.from_list(self.SENTENCES)
            .flat_map(lambda v: [(w,) for w in v[0].split()])
            .key_by(0)
            .count()
            .run()
        )
        final = {}
        for word, count in results:
            final[word] = max(final.get(word, 0), count)
        assert final == {"the": 3, "cat": 2, "sat": 1, "dog": 1, "ran": 2}

    def test_filter_map_chain(self):
        results = (
            Pipeline.from_list(list(range(20)))
            .filter(lambda v: v[0] % 2 == 0)
            .map(lambda v: (v[0] * 10,))
            .run()
        )
        assert sorted(v[0] for v in results) == [i * 10 for i in range(0, 20, 2)]

    def test_exactly_once_pipeline_with_crash(self):
        pipeline = (
            Pipeline.from_list(self.SENTENCES * 200)
            .flat_map(lambda v: [(w,) for w in v[0].split()])
            .key_by(0)
            .count()
        )
        results = pipeline.run(
            semantics="exactly_once",
            faults=FaultInjector(crash_after=800, seed=5),
            checkpoint_interval=100,
        )
        final = {}
        for word, count in results:
            final[word] = max(final.get(word, 0), count)
        assert final["the"] == 600

    def test_sketch_stage(self):
        pipeline = Pipeline.from_list([f"user{i % 100}" for i in range(2_000)]).sketch(
            lambda: HyperLogLog(precision=12, seed=0)
        )
        executor = pipeline.run_with_executor()
        (bolt,) = executor.bolt_instances("sketch0")
        assert abs(bolt.synopsis.estimate() - 100) < 10

    def test_window_stage(self):
        events = [(float(t), 1) for t in range(10)]
        results = Pipeline.from_list(events).window(5.0, agg=len).run()
        assert (0.0, 5.0, 5) in results and (5.0, 10.0, 5) in results

    def test_key_by_requires_indices(self):
        with pytest.raises(ParameterError):
            Pipeline.from_list([1]).key_by()
