"""Documentation gate: every public module, class, method and function in
the library carries a docstring (deliverable: doc comments on every public
item)."""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their home module
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_all_modules_have_docstrings():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_all_public_classes_and_functions_documented():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def _documented_somewhere_in_mro(cls, name):
    """A method's contract counts as documented if any class in the MRO
    documents it (protocol methods are documented once, at the protocol)."""
    for base in cls.__mro__:
        meth = vars(base).get(name)
        if meth is not None and (getattr(meth, "__doc__", None) or "").strip():
            return True
    return False


def test_all_public_methods_documented():
    missing = []
    for module in _walk_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not _documented_somewhere_in_mro(cls, meth_name):
                    missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
    assert not missing, f"undocumented public methods: {missing}"


def test_package_exports_resolve():
    """Every name in every package's __all__ actually exists."""
    for module in _walk_modules():
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"
