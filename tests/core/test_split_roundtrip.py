"""The split contract, enforced registry-wide.

``split(n)`` is the elastic-rescale half of mergeability: for **every**
synopsis registered in :mod:`repro.core.registry`, either

* ``merge(split(s, n)...)`` reproduces ``s`` **bit-identically** (by
  :func:`~repro.bench.fingerprint.state_fingerprint`) while leaving ``s``
  untouched, or
* ``split`` raises the typed
  :class:`~repro.common.exceptions.SplitUnsupported` — never a silently
  wrong partition.

The live-migration planner (:mod:`repro.cluster.elastic`) trusts exactly
this dichotomy: splittable bolt state is re-sharded in place, everything
else falls back to drain-and-restart. The suite reuses the batch-ingest
workloads so coverage against the registry is already pinned by
``test_spec_covers_every_registered_synopsis``.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.common.exceptions import ParameterError, SplitUnsupported
from repro.common.mergeable import SynopsisBase, shard_of

from tests.core.test_batch_equivalence import SPEC, _build

N_ITEMS = 200
SHARD_COUNTS = (1, 2, 3, 5)

# The classes for which a mathematically valid split exists. Pinned
# explicitly so that (a) accidentally *losing* a split (refactor drops an
# override) and (b) accidentally *gaining* one (a subclass inherits a
# split whose clone constructor does not match) both fail loudly.
EXPECTED_SPLITTABLE = frozenset(
    {
        "bloom",
        "count_min",
        "count_sketch",
        "counting_bloom",
        "exact_quantiles",
        "flajolet_martin",
        "hyperloglog",
        "kmv",
        "linear_counter",
        "loglog",
        "misra_gries",
        "retouched_bloom",
        "space_saving",
    }
)


def _ingested(name: str, n_items: int = N_ITEMS):
    syn = _build(name)
    __, workload = SPEC[name]
    syn.update_many(workload(n_items, random.Random(7)))
    return syn


def test_supports_split_matches_expected_set():
    actual = {name for name in SPEC if type(_build(name)).supports_split()}
    assert actual == set(EXPECTED_SPLITTABLE)


def test_every_registry_entry_is_a_synopsis():
    # split/merge/supports_split all live on SynopsisBase; the dichotomy
    # above only covers the registry if everything registered derives
    # from it.
    for name in SPEC:
        assert isinstance(_build(name), SynopsisBase), name


@pytest.mark.parametrize("name", sorted(EXPECTED_SPLITTABLE))
@pytest.mark.parametrize("n", SHARD_COUNTS)
def test_merge_of_split_is_bit_identical(name, n):
    syn = _ingested(name)
    before = state_fingerprint(syn)

    shards = syn.split(n)

    assert len(shards) == n
    assert state_fingerprint(syn) == before, "split mutated the original"
    assert all(sh is not syn for sh in shards)

    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    assert state_fingerprint(merged) == before


@pytest.mark.parametrize("name", sorted(EXPECTED_SPLITTABLE))
def test_split_of_empty_synopsis_round_trips(name):
    syn = _build(name)
    before = state_fingerprint(syn)
    shards = syn.split(3)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    assert state_fingerprint(merged) == before


@pytest.mark.parametrize("name", sorted(set(SPEC) - set(EXPECTED_SPLITTABLE)))
def test_unsupported_synopses_raise_typed_error(name):
    syn = _ingested(name, n_items=64)
    with pytest.raises(SplitUnsupported):
        syn.split(2)
    # ... and are introspectable without triggering the error.
    assert not type(syn).supports_split()


@pytest.mark.parametrize("name", sorted(EXPECTED_SPLITTABLE))
def test_split_rejects_nonpositive_shard_counts(name):
    syn = _ingested(name, n_items=16)
    with pytest.raises(ParameterError):
        syn.split(0)
    with pytest.raises(ParameterError):
        syn.split(-1)


def test_shard_of_is_stable_and_total():
    # The key->shard hash must be deterministic across runs/processes
    # (the coordinator splits, freshly forked workers consume).
    keys = ["a", "b", 3, 4.5, ("t", 1), b"raw"]
    for n in (1, 2, 7):
        first = [shard_of(k, n) for k in keys]
        assert [shard_of(k, n) for k in keys] == first
        assert all(0 <= s < n for s in first)


def test_shards_share_no_mutable_state():
    # Updating a shard must never reach back into the original.
    syn = _ingested("count_min")
    before = state_fingerprint(syn)
    shards = syn.split(2)
    for shard in shards:
        shard.update_many([f"post{i}" for i in range(32)])
    assert state_fingerprint(syn) == before
