"""Coverage for API surfaces not exercised elsewhere: metrics summaries,
pipeline composition edges, empty-synopsis queries, size accounting."""

import pytest

from repro.common.exceptions import ParameterError
from repro.cardinality import HyperLogLog, KMinValues
from repro.core import Pipeline
from repro.frequency import SpaceSaving
from repro.histograms import EquiWidthHistogram
from repro.platform import ExecutionMetrics, FaultInjector
from repro.quantiles import GKQuantiles, TDigest


class TestExecutionMetrics:
    def test_summary_shape(self):
        metrics = ExecutionMetrics()
        metrics.wall_seconds = 2.0
        metrics.components["spout:s"].emitted = 100
        metrics.record_latency(0.01)
        metrics.record_latency(0.03)
        summary = metrics.summary()
        assert summary["throughput_tps"] == 50.0
        assert 10.0 <= summary["latency_p50_ms"] <= 30.0
        assert set(summary) == {
            "throughput_tps", "latency_p50_ms", "latency_p99_ms",
            "replays", "checkpoints", "recoveries", "components",
            "backpressure_waits", "ring_occupancy",
        }
        assert summary["components"]["spout:s"]["emitted"] == 100
        assert "queue_high_water" in summary["components"]["spout:s"]

    def test_empty_metrics_safe(self):
        metrics = ExecutionMetrics()
        assert metrics.throughput() == 0.0
        assert metrics.latency_quantile(0.99) == 0.0


class TestPipelineComposition:
    def test_build_without_running(self):
        topo, sink = (
            Pipeline.from_list([1, 2, 3]).map(lambda v: (v[0],)).build()
        )
        assert sink == "sink"
        assert "map0" in topo.bolt_names

    def test_map_returning_none_drops(self):
        results = (
            Pipeline.from_list(list(range(6)))
            .map(lambda v: (v[0],) if v[0] % 2 else None)
            .run()
        )
        assert sorted(r[0] for r in results) == [1, 3, 5]

    def test_mixed_window_then_count(self):
        events = [(float(t), "k") for t in range(10)]
        results = (
            Pipeline.from_list(events)
            .window(5.0, agg=len)
            .map(lambda v: (v[2],))  # the per-window count
            .run()
        )
        assert sorted(r[0] for r in results) == [5, 5]

    def test_run_with_executor_exposes_metrics(self):
        ex = Pipeline.from_list([("a",)] * 10).key_by(0).count().run_with_executor(
            semantics="at_least_once", faults=FaultInjector(drop_probability=0.0)
        )
        assert ex.metrics.components["spout:source"].emitted == 10


class TestEmptyQueries:
    def test_empty_tdigest_cdf(self):
        with pytest.raises(ParameterError):
            TDigest().cdf(1.0)

    def test_gk_rank_on_empty(self):
        assert GKQuantiles().rank(5.0) == 0

    def test_kmv_jaccard_of_empty(self):
        a, b = KMinValues(k=16, seed=0), KMinValues(k=16, seed=0)
        assert a.jaccard(b) == 0.0
        assert a.estimate() == 0.0

    def test_histogram_empty_density(self):
        h = EquiWidthHistogram(0, 1, bins=4)
        assert h.density(0.5) == 0.0
        with pytest.raises(ParameterError):
            h.quantile(0.5)

    def test_histogram_empty_range_count(self):
        h = EquiWidthHistogram(0, 10, bins=5)
        assert h.estimate_range_count(3, 3) == 0.0


class TestSizeAccounting:
    def test_numpy_backed_sketches_report_buffer_size(self):
        hll = HyperLogLog(precision=12)
        assert hll.size_bytes() == 1 << 12

    def test_dict_backed_sketch_grows(self):
        small, big = SpaceSaving(8), SpaceSaving(8)
        big.update_many(f"x{i}" for i in range(100))
        assert big.size_bytes() > small.size_bytes()
