"""Generic merge invariants across every mergeable synopsis.

The paper's scale-out requirement ("algorithms should be able to scale
out") makes merge the most safety-critical operation in the library. This
suite drives one shared invariant set over every mergeable synopsis type:

* count additivity: ``(a + b).count == a.count + b.count``;
* neutrality: merging an empty synopsis changes no estimates;
* purity: ``a + b`` leaves both operands untouched;
* split-equivalence: estimates from a merged pair stay close to a
  single-pass synopsis over the concatenated stream.
"""

import copy

import pytest

from repro.cardinality import FlajoletMartin, HyperLogLog, KMinValues, LinearCounter, LogLog
from repro.filtering import (
    BloomFilter,
    CountingBloomFilter,
    PartitionedBloomFilter,
    ScalableBloomFilter,
    StableBloomFilter,
)
from repro.frequency import (
    CountMinSketch,
    CountSketch,
    LossyCounting,
    MisraGries,
    SpaceSaving,
    StickySampling,
)
from repro.histograms import EquiWidthHistogram
from repro.moments import AMSSketch
from repro.quantiles import GKQuantiles, KLLSketch, TDigest
from repro.sampling import DistinctSampler, ReservoirSampler, WeightedReservoirSampler
from repro.workloads import zipf_stream

# (constructor, estimate extractor or None) for every mergeable synopsis.
# The extractor must be deterministic given the synopsis state.
MERGEABLE = [
    pytest.param(lambda: HyperLogLog(precision=10, seed=0), lambda s: s.estimate(), id="hll"),
    pytest.param(lambda: LogLog(precision=10, seed=0), lambda s: s.estimate(), id="loglog"),
    pytest.param(lambda: FlajoletMartin(m=64, seed=0), lambda s: s.estimate(), id="fm"),
    pytest.param(lambda: LinearCounter(20_000, seed=0), lambda s: s.estimate(), id="linear"),
    pytest.param(lambda: KMinValues(k=128, seed=0), lambda s: s.estimate(), id="kmv"),
    pytest.param(lambda: BloomFilter(8_192, 5, seed=0), lambda s: s.fill_ratio, id="bloom"),
    pytest.param(
        lambda: PartitionedBloomFilter(2_048, 5, seed=0),
        lambda s: s.false_positive_rate(), id="pbloom",
    ),
    pytest.param(
        lambda: CountingBloomFilter(8_192, 5, seed=0), lambda s: s.count, id="cbloom"
    ),
    pytest.param(
        lambda: ScalableBloomFilter(initial_capacity=256, seed=0),
        lambda s: s.count, id="sbloom",
    ),
    pytest.param(
        lambda: StableBloomFilter(m=4_096, seed=0), lambda s: s.count, id="stable"
    ),
    pytest.param(
        lambda: CountMinSketch(512, 4, seed=0), lambda s: s.estimate("item1"), id="cms"
    ),
    pytest.param(
        lambda: CountSketch(512, 4, seed=0), lambda s: s.estimate("item1"), id="countsketch"
    ),
    pytest.param(lambda: SpaceSaving(64), lambda s: s.estimate("item1"), id="spacesaving"),
    pytest.param(lambda: MisraGries(64), lambda s: s.estimate("item1"), id="misragries"),
    pytest.param(
        lambda: LossyCounting(epsilon=0.005), lambda s: s.estimate("item1"), id="lossy"
    ),
    pytest.param(
        lambda: StickySampling(support=0.05, epsilon=0.01, seed=0),
        lambda s: s.count, id="sticky",
    ),
    pytest.param(lambda: AMSSketch(groups=3, per_group=8, seed=0), lambda s: s.estimate_f2(), id="ams"),
    pytest.param(lambda: GKQuantiles(epsilon=0.02), lambda s: None, id="gk"),
    pytest.param(lambda: TDigest(delta=50), lambda s: None, id="tdigest"),
    pytest.param(lambda: KLLSketch(k=64, seed=0), lambda s: None, id="kll"),
    pytest.param(
        lambda: EquiWidthHistogram(0, 10_000, bins=32), lambda s: s.count, id="equiwidth"
    ),
    pytest.param(lambda: ReservoirSampler(32, seed=0), lambda s: s.count, id="reservoir"),
    pytest.param(
        lambda: WeightedReservoirSampler(32, seed=0), lambda s: s.count, id="wreservoir"
    ),
    pytest.param(lambda: DistinctSampler(capacity=64, seed=0), lambda s: s.count, id="distinct"),
]


def _items(seed, n=600):
    # Mixed numeric payload usable by every synopsis above (hash for
    # membership sketches, float for quantiles — use item rank).
    return [float(i % 97) for i in range(n)] if seed == "numeric" else list(
        zipf_stream(n, universe=200, skew=1.0, seed=seed)
    )


def _feed(synopsis, items):
    numeric_only = isinstance(
        synopsis, (GKQuantiles, TDigest, KLLSketch, EquiWidthHistogram)
    )
    for item in items:
        if numeric_only:
            synopsis.update(float(hash(item) % 10_000))
        else:
            synopsis.update(item)
    return synopsis


@pytest.mark.parametrize("factory,extract", MERGEABLE)
class TestMergeInvariants:
    def test_count_additivity(self, factory, extract):
        a = _feed(factory(), _items(1))
        b = _feed(factory(), _items(2))
        expected = a.count + b.count
        a.merge(b)
        assert a.count == expected

    def test_merge_with_empty_is_neutral(self, factory, extract):
        a = _feed(factory(), _items(3))
        snapshot = extract(a)
        a.merge(factory())
        assert extract(a) == snapshot

    def test_plus_operator_is_pure(self, factory, extract):
        a = _feed(factory(), _items(4))
        b = _feed(factory(), _items(5))
        a_snapshot = copy.deepcopy(a.__dict__.get("count"))
        before_a, before_b = extract(a), extract(b)
        merged = a + b
        assert extract(a) == before_a
        assert extract(b) == before_b
        assert a.count == a_snapshot
        assert merged.count == a.count + b.count

    def test_merge_rejects_type_mismatch(self, factory, extract):
        from repro.common.exceptions import MergeError

        a = factory()

        class Other:
            pass

        with pytest.raises(MergeError):
            a.merge(Other())
