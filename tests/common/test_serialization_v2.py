"""Serialization format-v2 additions that state shipping leans on.

The cluster subsystem ships whole operator states — including tiebreak
counters, frozen dataclasses and aliased substructures — so the encoder
extensions behind :mod:`repro.core.stateship` get their own pins here.
"""

import itertools
import random

from repro.common.serialization import dump_state, load_state
from repro.temporal.spring import Match

TAG = "test-v2"


def _roundtrip(state: dict) -> dict:
    return load_state(TAG, dump_state(TAG, state))


class TestItertoolsCount:
    def test_counter_position_survives(self):
        counter = itertools.count(1)
        for __ in range(5):
            next(counter)
        restored = _roundtrip({"c": counter})["c"]
        assert next(restored) == 6
        assert next(restored) == 7

    def test_counter_with_step(self):
        counter = itertools.count(10, 3)
        next(counter)
        restored = _roundtrip({"c": counter})["c"]
        assert next(restored) == 13


class TestFrozenDataclass:
    def test_frozen_instances_restore(self):
        # Match is @dataclass(frozen=True): plain setattr raises, so the
        # decoder must fall back to object.__setattr__
        state = _roundtrip({"m": Match(start=3, end=9, distance=1.5)})
        assert state["m"] == Match(start=3, end=9, distance=1.5)

    def test_nested_in_containers(self):
        matches = [Match(0, 1, 0.5), Match(2, 5, 2.25)]
        state = _roundtrip({"matches": matches})
        assert state["matches"] == matches


class TestFloatPack:
    """Homogeneous float lists take the packed-doubles fast path; the
    round-trip must be bit-exact, and anything non-homogeneous must fall
    back to the structural encoding unchanged."""

    def test_large_float_list_roundtrips_bit_exact(self):
        values = [i * 0.1 for i in range(1000)]
        assert _roundtrip({"v": values})["v"] == values

    def test_special_values_survive(self):
        values = [float("inf"), float("-inf"), -0.0, 1e-308, 5e-324] * 10
        restored = _roundtrip({"v": values})["v"]
        assert restored == values
        assert str(restored[2]) == "-0.0"  # signed zero preserved

    def test_nan_survives(self):
        import math

        values = [float("nan")] * 64
        restored = _roundtrip({"v": values})["v"]
        assert all(math.isnan(v) for v in restored)

    def test_mixed_list_falls_back(self):
        # one int (or bool) disqualifies the pack; the generic path must
        # still restore exact types, not floats
        values = [0.5] * 63 + [1]
        restored = _roundtrip({"v": values})["v"]
        assert restored == values
        assert type(restored[-1]) is int

    def test_bool_list_not_packed(self):
        values = [True, False] * 32
        restored = _roundtrip({"v": values})["v"]
        assert all(type(v) is bool for v in restored)

    def test_shared_float_list_stays_aliased(self):
        shared = [float(i) for i in range(100)]
        state = _roundtrip({"a": shared, "b": shared})
        assert state["a"] is state["b"]
        assert state["a"] == shared


class TestCrossKeyAliasing:
    def test_shared_object_stays_shared_across_keys(self):
        shared = [1, 2, 3]
        state = _roundtrip({"a": shared, "b": shared})
        assert state["a"] is state["b"]

    def test_distinct_objects_stay_distinct(self):
        state = _roundtrip({"a": [1, 2, 3], "b": [1, 2, 3]})
        assert state["a"] == state["b"]
        assert state["a"] is not state["b"]

    def test_shared_rng_keeps_identity_and_position(self):
        rng = random.Random(7)
        rng.random()  # advance one draw
        state = _roundtrip({"x": rng, "y": rng})
        assert state["x"] is state["y"]
        reference = random.Random(7)
        reference.random()
        # the restored stream continues exactly where the original stood
        assert state["y"].random() == reference.random()
