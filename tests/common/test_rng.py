"""derive_seed / make_rng / make_np_rng: determinism and stream separation."""

import numpy as np

from repro.common.rng import derive_seed, make_np_rng, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 0) == derive_seed(42, 0)
        assert [derive_seed(7, s) for s in range(8)] == [
            derive_seed(7, s) for s in range(8)
        ]

    def test_distinct_across_streams(self):
        children = [derive_seed(123, s) for s in range(1000)]
        assert len(set(children)) == 1000

    def test_distinct_across_parents(self):
        # nearby parent seeds must not produce overlapping child streams
        a = {derive_seed(1, s) for s in range(256)}
        b = {derive_seed(2, s) for s in range(256)}
        assert not (a & b)

    def test_fits_in_uint64(self):
        for seed in (0, 1, 2**63, 2**64 - 1):
            child = derive_seed(seed, 5)
            assert 0 <= child < 2**64

    def test_child_differs_from_parent(self):
        assert derive_seed(42, 0) != 42


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(9), make_rng(9)
        assert [a.random() for _ in range(16)] == [b.random() for _ in range(16)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_none_gives_entropy_seeded(self):
        # two entropy-seeded generators almost surely differ
        assert make_rng(None).random() != make_rng(None).random()


class TestMakeNpRng:
    def test_same_seed_same_stream(self):
        a, b = make_np_rng(11), make_np_rng(11)
        np.testing.assert_array_equal(a.random(16), b.random(16))

    def test_derived_streams_are_independent(self):
        parent = 1234
        g0 = make_np_rng(derive_seed(parent, 0))
        g1 = make_np_rng(derive_seed(parent, 1))
        assert not np.array_equal(g0.random(16), g1.random(16))
