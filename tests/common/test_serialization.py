"""Tests for the versioned serialization frame."""

import numpy as np
import pytest

from repro.common.exceptions import SerializationError
from repro.common.serialization import dump_state, load_state


def test_roundtrip_scalars():
    state = {"a": 1, "b": 2.5, "c": "text", "d": None, "e": True}
    assert load_state("t", dump_state("t", state)) == state


def test_roundtrip_ndarray():
    arr = np.arange(12, dtype=np.float64).reshape(3, 4)
    out = load_state("t", dump_state("t", {"arr": arr}))["arr"]
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype


def test_roundtrip_bytes_and_nested():
    state = {"payload": b"\x00\xff", "nested": {"k": [1, 2, {"deep": "v"}]}}
    out = load_state("t", dump_state("t", state))
    assert out["payload"] == b"\x00\xff"
    assert out["nested"]["k"][2]["deep"] == "v"


def test_roundtrip_nonstring_dict_keys():
    state = {"table": {1: 10, "x": 20}}
    out = load_state("t", dump_state("t", state))
    assert out["table"] == {1: 10, "x": 20}


def test_wrong_tag_rejected():
    payload = dump_state("hll", {"m": 16})
    with pytest.raises(SerializationError):
        load_state("cms", payload)


def test_bad_magic_rejected():
    with pytest.raises(SerializationError):
        load_state("t", b"JUNKxxxx")


def test_truncated_rejected():
    payload = dump_state("t", {"a": 1})
    with pytest.raises(SerializationError):
        load_state("t", payload[: len(payload) - 3])


def test_unserializable_value_rejected():
    with pytest.raises(SerializationError):
        dump_state("t", {"f": object()})
