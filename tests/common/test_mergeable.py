"""Tests for the SynopsisBase merge machinery."""

import pytest

from repro.common.exceptions import MergeError
from repro.common.mergeable import Synopsis, SynopsisBase


class CountingSynopsis(SynopsisBase):
    """Trivial synopsis used to exercise the shared machinery."""

    def __init__(self, width=4):
        self.width = width
        self.count = 0

    def update(self, item):
        self.count += 1

    def _merge_key(self):
        return (self.width,)

    def _merge_into(self, other):
        self.count += other.count


class OtherSynopsis(CountingSynopsis):
    pass


def test_update_many():
    s = CountingSynopsis()
    s.update_many(range(10))
    assert s.count == 10


def test_merge_accumulates():
    a, b = CountingSynopsis(), CountingSynopsis()
    a.update_many(range(3))
    b.update_many(range(5))
    a.merge(b)
    assert a.count == 8
    assert b.count == 5  # merge leaves the argument untouched


def test_add_operator_is_pure():
    a, b = CountingSynopsis(), CountingSynopsis()
    a.update("x")
    b.update("y")
    c = a + b
    assert (a.count, b.count, c.count) == (1, 1, 2)


def test_merge_rejects_type_mismatch():
    with pytest.raises(MergeError):
        CountingSynopsis().merge(OtherSynopsis())


def test_merge_rejects_parameter_mismatch():
    with pytest.raises(MergeError):
        CountingSynopsis(width=4).merge(CountingSynopsis(width=8))


def test_protocol_conformance():
    assert isinstance(CountingSynopsis(), Synopsis)


def test_size_bytes_positive():
    assert CountingSynopsis().size_bytes() > 0
