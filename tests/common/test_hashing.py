"""Tests for repro.common.hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily, hash64, hash_bytes, murmur3_32, to_bytes

# Published MurmurHash3 x86-32 test vectors (Appleby's reference impl).
MURMUR_VECTORS = [
    (b"", 0, 0x00000000),
    (b"", 1, 0x514E28B7),
    (b"", 0xFFFFFFFF, 0x81F16F39),
    (b"\x00\x00\x00\x00", 0, 0x2362F9DE),
    (b"\xff\xff\xff\xff", 0, 0x76293B50),
    (b"!Ce\x87", 0, 0xF55B516B),
    (b"!Ce", 0, 0x7E4A8634),
    (b"!C", 0, 0xA0F7B07A),
    (b"!", 0, 0x72661CF4),
    (b"Hello, world!", 0x9747B28C, 0x24884CBA),
    (b"aaaa", 0x9747B28C, 0x5A97808A),
    (b"The quick brown fox jumps over the lazy dog", 0x9747B28C, 0x2FA826CD),
]


@pytest.mark.parametrize("data,seed,expected", MURMUR_VECTORS)
def test_murmur3_32_vectors(data, seed, expected):
    assert murmur3_32(data, seed) == expected


def test_murmur3_accepts_str():
    assert murmur3_32("Hello, world!", 0x9747B28C) == 0x24884CBA


class TestToBytes:
    def test_types_do_not_collide(self):
        reprs = {to_bytes(v) for v in (1, "1", b"1", 1.0, True, (1,))}
        assert len(reprs) == 6

    def test_int_roundtrip_distinct(self):
        assert to_bytes(255) != to_bytes(-1)
        assert to_bytes(0) != to_bytes(256)

    def test_nested_tuples_distinct(self):
        assert to_bytes((1, (2, 3))) != to_bytes(((1, 2), 3))

    def test_fallback_repr(self):
        class Odd:
            def __repr__(self):
                return "Odd()"

        assert to_bytes(Odd()) == b"r" + b"Odd()"

    @given(st.integers())
    def test_int_deterministic(self, n):
        assert to_bytes(n) == to_bytes(n)


class TestHash64:
    def test_deterministic(self):
        assert hash64("tweet", 7) == hash64("tweet", 7)

    def test_seed_changes_value(self):
        assert hash64("tweet", 1) != hash64("tweet", 2)

    def test_range(self):
        assert 0 <= hash64("x") < 2**64

    @given(st.text(), st.integers(min_value=0, max_value=2**32))
    def test_stable_under_hypothesis(self, s, seed):
        assert hash64(s, seed) == hash64(s, seed)

    def test_hash_bytes_width(self):
        assert len(hash_bytes("x", 16)) == 16


class TestHashFamily:
    def test_equality_by_seed(self):
        assert HashFamily(3) == HashFamily(3)
        assert HashFamily(3) != HashFamily(4)

    def test_rejects_non_int_seed(self):
        with pytest.raises(ParameterError):
            HashFamily("abc")  # type: ignore[arg-type]

    def test_hashes_count(self):
        fam = HashFamily(11)
        assert len(list(fam.hashes("item", 5))) == 5

    def test_double_hashing_distinct_slots(self):
        fam = HashFamily(0)
        slots = [h % 1024 for h in fam.hashes("key", 8)]
        # Double hashing with odd step modulo a power of two visits 8
        # distinct slots.
        assert len(set(slots)) == 8

    def test_independent_hashes_differ_from_double(self):
        fam = HashFamily(5)
        dbl = list(fam.hashes("k", 4))
        ind = list(fam.independent_hashes("k", 4))
        assert dbl[0] == ind[0] or dbl != ind  # families share h_0 only by construction

    def test_uniformity_rough(self):
        fam = HashFamily(1)
        buckets = [0] * 16
        for i in range(4096):
            buckets[fam.hash(i) % 16] += 1
        assert max(buckets) < 2 * min(buckets) + 64
