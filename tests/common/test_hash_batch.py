"""``hash_batch`` / ``hashes_batch`` must equal the scalar paths exactly.

The batch kernels change how hashes are computed (canonicalise once,
pre-keyed blake2b states, distinct-value dedup) — never what they are.
These tests pin the values bit-for-bit against :meth:`HashFamily.hash`
and :meth:`HashFamily.hashes`, which is what keeps batch-filled sketches
mergeable with tuple-at-a-time ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.hashing import HashFamily, bit_length64

MIXED_ITEMS = [
    "word",
    "",
    b"\x00\xff",
    0,
    -1,
    2**70,
    True,
    False,
    3.5,
    float("inf"),
    ("tuple", 1, 2.0),
    "word",  # duplicate: exercises the dedup gather
    None,
]


@pytest.mark.parametrize("seed", [0, 1, 12345])
@pytest.mark.parametrize("count", [1, 2, 5])
def test_hash_batch_matches_scalar_hash_exactly(seed, count):
    family = HashFamily(seed)
    batch = family.hash_batch(MIXED_ITEMS, count)
    assert batch.dtype == np.uint64
    assert batch.shape == (len(MIXED_ITEMS), count)
    for i, item in enumerate(MIXED_ITEMS):
        for j in range(count):
            assert int(batch[i, j]) == family.hash(item, j)


@pytest.mark.parametrize("count", [1, 3, 11])
def test_hashes_batch_matches_double_hashing_exactly(count):
    family = HashFamily(7)
    batch = family.hashes_batch(MIXED_ITEMS, count)
    assert batch.dtype == np.uint64
    for i, item in enumerate(MIXED_ITEMS):
        assert [int(h) for h in batch[i]] == list(family.hashes(item, count))


def test_hash_batch_duplicate_rows_are_identical():
    family = HashFamily(3)
    batch = family.hash_batch(["a", "b", "a", "a"], 4)
    assert np.array_equal(batch[0], batch[2])
    assert np.array_equal(batch[0], batch[3])
    assert not np.array_equal(batch[0], batch[1])


def test_hash_batch_empty_input():
    batch = HashFamily(0).hash_batch([], 3)
    assert batch.shape == (0, 3)
    assert batch.dtype == np.uint64


def test_hash_batch_rejects_nonpositive_count():
    with pytest.raises(ParameterError):
        HashFamily(0).hash_batch(["x"], 0)


def test_hash_batch_families_with_different_seeds_differ():
    a = HashFamily(1).hash_batch(["x", "y"], 2)
    b = HashFamily(2).hash_batch(["x", "y"], 2)
    assert not np.array_equal(a, b)


def test_hash_batch_is_deterministic_across_calls():
    family = HashFamily(42)
    first = family.hash_batch(MIXED_ITEMS, 3)
    second = family.hash_batch(list(MIXED_ITEMS), 3)
    assert np.array_equal(first, second)


def test_bit_length64_matches_int_bit_length_on_edge_cases():
    values = [
        0,
        1,
        2,
        3,
        2**32 - 1,
        2**32,
        2**53 - 1,
        2**53,
        2**53 + 1,
        2**63 - 1,
        2**63,
        2**64 - 1,
    ]
    got = bit_length64(np.array(values, dtype=np.uint64))
    assert [int(g) for g in got] == [v.bit_length() for v in values]


def test_bit_length64_random_values():
    rng = np.random.default_rng(5)
    values = rng.integers(0, 2**63, size=1000, dtype=np.uint64) * np.uint64(2) + (
        rng.integers(0, 2, size=1000, dtype=np.uint64)
    )
    got = bit_length64(values)
    assert [int(g) for g in got] == [int(v).bit_length() for v in values]
