"""Tests for window managers and decayed counters."""

import pytest

from repro.common.exceptions import ParameterError
from repro.windowing import (
    DecayedCounter,
    DecayedFrequencies,
    SessionWindow,
    SlidingTimeWindow,
    TumblingWindow,
    windowed,
)


class TestTumblingWindow:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            TumblingWindow(0)

    def test_items_partitioned_by_span(self):
        events = [(0.5, "a"), (1.5, "b"), (2.5, "c"), (10.5, "d")]
        windows = list(windowed(events, TumblingWindow(1.0)))
        assert [w.items for w in windows] == [("a",), ("b",), ("c",), ("d",)]
        assert windows[0].start == 0.0 and windows[0].end == 1.0

    def test_multiple_items_per_window(self):
        events = [(0.1, 1), (0.2, 2), (0.9, 3), (1.1, 4)]
        windows = list(windowed(events, TumblingWindow(1.0)))
        assert windows[0].items == (1, 2, 3)
        assert windows[1].items == (4,)

    def test_flush_returns_partial(self):
        tw = TumblingWindow(10.0)
        tw.add(1.0, "x")
        final = tw.flush()
        assert len(final) == 1 and final[0].items == ("x",)
        assert tw.flush() == []


class TestSlidingTimeWindow:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SlidingTimeWindow(1.0, 2.0)  # step > size

    def test_overlap(self):
        events = [(float(t), t) for t in range(10)]
        windows = list(windowed(events, SlidingTimeWindow(size=4.0, step=2.0)))
        # Item 3 should appear in two windows (spans [0,4) and [2,6)).
        containing = [w for w in windows if 3 in w.items]
        assert len(containing) == 2

    def test_window_lengths(self):
        events = [(float(t), t) for t in range(20)]
        windows = list(windowed(events, SlidingTimeWindow(size=4.0, step=4.0)))
        assert all(len(w) == 4 for w in windows)


class TestSessionWindow:
    def test_sessions_split_on_gap(self):
        events = [(0.0, "a"), (1.0, "b"), (100.0, "c"), (101.0, "d")]
        windows = list(windowed(events, SessionWindow(gap=10.0)))
        assert [w.items for w in windows] == [("a", "b"), ("c", "d")]

    def test_single_session_flushed(self):
        events = [(0.0, 1), (1.0, 2)]
        windows = list(windowed(events, SessionWindow(gap=5.0)))
        assert len(windows) == 1 and windows[0].items == (1, 2)

    def test_session_bounds(self):
        events = [(3.0, "x"), (4.0, "y")]
        (w,) = list(windowed(events, SessionWindow(gap=2.0)))
        assert w.start == 3.0 and w.end == 4.0


class TestDecayedCounter:
    def test_halves_after_half_life(self):
        c = DecayedCounter(half_life=10.0)
        c.add(8.0, timestamp=0.0)
        assert c.value_at(10.0) == pytest.approx(4.0)
        assert c.value_at(20.0) == pytest.approx(2.0)

    def test_monotone_time_enforced(self):
        c = DecayedCounter(half_life=1.0)
        c.add(1.0, timestamp=5.0)
        with pytest.raises(ParameterError):
            c.add(1.0, timestamp=4.0)
        with pytest.raises(ParameterError):
            c.value_at(3.0)

    def test_merge_aligns_clocks(self):
        a, b = DecayedCounter(10.0), DecayedCounter(10.0)
        a.add(8.0, timestamp=0.0)
        b.add(8.0, timestamp=10.0)
        a.merge(b)
        # At t=10: a decayed to 4, b fresh at 8 -> 12.
        assert a.value_at(10.0) == pytest.approx(12.0)


class TestDecayedFrequencies:
    def test_trending_overtakes_stale(self):
        df = DecayedFrequencies(half_life=10.0)
        for t in range(100):
            df.add("#old", float(t))
        for t in range(100, 140):
            df.add("#new", float(t))
        top = df.top(1)
        assert top[0][0] == "#new"

    def test_value_of_unknown_key(self):
        assert DecayedFrequencies(1.0).value("missing") == 0.0

    def test_eviction_bounds_memory(self):
        df = DecayedFrequencies(half_life=5.0, max_keys=100)
        for t in range(1_000):
            df.add(f"key{t}", float(t))
        assert len(df._values) <= 101

    def test_merge(self):
        a, b = DecayedFrequencies(10.0), DecayedFrequencies(10.0)
        a.add("x", 0.0)
        b.add("x", 0.0)
        a.merge(b)
        assert a.value("x", 0.0) == pytest.approx(2.0)
