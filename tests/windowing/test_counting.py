"""Tests for DGIM, exponential histograms and significant-one counting."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.windowing import DGIM, EHSum, EHVariance, SignificantOneCounter


class TestDGIM:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            DGIM(0)
        with pytest.raises(ParameterError):
            DGIM(10, epsilon=0.0)

    def test_exact_when_few_ones(self):
        d = DGIM(window=1000, epsilon=0.1)
        for i in range(100):
            d.update(i % 10 == 0)
        assert abs(d.estimate() - 10) <= 1

    def test_relative_error_bound_random_bits(self):
        rng = make_np_rng(41)
        bits = rng.random(50_000) < 0.3
        d = DGIM(window=10_000, epsilon=0.1)
        for b in bits:
            d.update(bool(b))
        true = int(bits[-10_000:].sum())
        assert abs(d.estimate() - true) / true < 0.15

    def test_all_ones_dense(self):
        d = DGIM(window=5_000, epsilon=0.05)
        for __ in range(20_000):
            d.update(1)
        assert abs(d.estimate() - 5_000) / 5_000 < 0.08

    def test_space_logarithmic(self):
        d = DGIM(window=100_000, epsilon=0.1)
        for __ in range(100_000):
            d.update(1)
        # O((1/eps) * log(eps*N)) buckets << N
        assert d.n_buckets < 400

    def test_expiry_of_old_ones(self):
        d = DGIM(window=100, epsilon=0.2)
        for __ in range(100):
            d.update(1)
        for __ in range(500):
            d.update(0)
        assert d.estimate() <= 2

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            DGIM(10).merge(DGIM(10))


class TestEHSum:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            EHSum(0)
        s = EHSum(10, max_value=5)
        with pytest.raises(ParameterError):
            s.update(6)
        with pytest.raises(ParameterError):
            s.update(-1)

    def test_sum_accuracy(self):
        rng = make_np_rng(42)
        values = rng.integers(0, 100, size=30_000)
        s = EHSum(window=5_000, epsilon=0.1, max_value=100)
        for v in values:
            s.update(int(v))
        true = int(values[-5_000:].sum())
        assert abs(s.estimate() - true) / true < 0.15

    def test_zeros_free(self):
        s = EHSum(window=100, epsilon=0.1)
        for __ in range(1_000):
            s.update(0)
        assert s.estimate() == 0.0
        assert s.n_buckets == 0

    def test_space_sublinear(self):
        s = EHSum(window=50_000, epsilon=0.1, max_value=10)
        rng = make_np_rng(43)
        for v in rng.integers(0, 10, size=50_000):
            s.update(int(v))
        assert s.n_buckets < 1_000


class TestEHVariance:
    def test_variance_stationary(self):
        rng = make_np_rng(44)
        values = rng.normal(10.0, 3.0, size=20_000)
        v = EHVariance(window=4_000, epsilon=0.1)
        for x in values:
            v.update(float(x))
        assert abs(v.estimate_variance() - 9.0) / 9.0 < 0.2
        assert abs(v.estimate_mean() - 10.0) < 0.5

    def test_variance_tracks_regime_change(self):
        rng = make_np_rng(45)
        v = EHVariance(window=2_000, epsilon=0.1)
        for x in rng.normal(0.0, 1.0, size=10_000):
            v.update(float(x))
        for x in rng.normal(0.0, 10.0, size=4_000):
            v.update(float(x))
        assert v.estimate_variance() > 50.0

    def test_empty(self):
        v = EHVariance(window=10)
        assert v.estimate_variance() == 0.0

    def test_space_sublinear(self):
        v = EHVariance(window=50_000, epsilon=0.2)
        rng = make_np_rng(46)
        for x in rng.normal(size=50_000):
            v.update(float(x))
        assert v.n_buckets < 500


class TestSignificantOne:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SignificantOneCounter(0)
        with pytest.raises(ParameterError):
            SignificantOneCounter(10, theta=1.0)
        with pytest.raises(ParameterError):
            SignificantOneCounter(10, epsilon=2.0)

    def test_accurate_when_significant(self):
        rng = make_np_rng(47)
        window, theta, eps = 10_000, 0.2, 0.1
        soc = SignificantOneCounter(window, theta=theta, epsilon=eps)
        bits = rng.random(40_000) < 0.5  # well above theta
        for b in bits:
            soc.update(bool(b))
        true = int(bits[-window:].sum())
        assert true >= theta * window
        assert abs(soc.estimate() - true) / true <= eps + 0.02

    def test_significance_flag(self):
        soc = SignificantOneCounter(1_000, theta=0.3, epsilon=0.1)
        for __ in range(1_000):
            soc.update(1)
        assert soc.is_significant()
        for __ in range(5_000):
            soc.update(0)
        assert not soc.is_significant()

    def test_uses_less_space_than_dgim(self):
        window, eps = 100_000, 0.05
        soc = SignificantOneCounter(window, theta=0.2, epsilon=eps)
        dgim = DGIM(window, epsilon=eps)
        rng = make_np_rng(48)
        for b in rng.random(window) < 0.5:
            soc.update(bool(b))
            dgim.update(bool(b))
        assert soc.n_blocks < dgim.n_buckets
