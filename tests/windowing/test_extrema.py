"""Tests for sliding-window extrema."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.windowing import SlidingExtrema


class TestSlidingExtrema:
    def test_validation(self):
        with pytest.raises(ParameterError):
            SlidingExtrema(0)
        with pytest.raises(ParameterError):
            SlidingExtrema(5).max()

    def test_known_sequence(self):
        se = SlidingExtrema(window=3)
        results = []
        for v in [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]:
            se.update(v)
            results.append((se.min(), se.max()))
        assert results == [
            (3.0, 3.0), (1.0, 3.0), (1.0, 4.0), (1.0, 4.0),
            (1.0, 5.0), (1.0, 9.0), (2.0, 9.0),
        ]

    def test_matches_brute_force_on_random_stream(self):
        rng = make_np_rng(91)
        window = 50
        se = SlidingExtrema(window)
        buf = deque(maxlen=window)
        for v in rng.normal(size=5_000):
            se.update(float(v))
            buf.append(float(v))
            assert se.max() == max(buf)
            assert se.min() == min(buf)

    def test_range(self):
        se = SlidingExtrema(window=4)
        se.update_many([1.0, 5.0, 3.0])
        assert se.range() == 4.0

    def test_memory_small_on_monotone_stream(self):
        se = SlidingExtrema(window=10_000)
        se.update_many(float(i) for i in range(50_000))
        # Increasing stream: max deque holds 1, min deque holds ~window...
        # actually increasing values evict everything from the max deque,
        # while the min deque keeps all window elements (worst case).
        assert len(se._max) == 1
        assert se.max() == 49_999.0

    @settings(max_examples=30)
    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=50))
    def test_property_matches_brute_force(self, values, window):
        se = SlidingExtrema(window)
        buf = deque(maxlen=window)
        for v in values:
            se.update(v)
            buf.append(v)
        assert se.max() == max(buf)
        assert se.min() == min(buf)
