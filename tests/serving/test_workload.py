"""The closed-loop workload: seeded determinism and digest equivalence.

Two layers of reproducibility: the *query streams* are pure functions of
(seed, user index), and against a pinned snapshot the *response digest*
is a pure function of the workload — the property the bench's
cached-vs-uncached equivalence check stands on.
"""

import itertools

import pytest

from repro.common.exceptions import ParameterError
from repro.obs.metrics import MetricRegistry
from repro.platform.executor import LocalExecutor
from repro.serving import ServingRuntime, ServingServer
from repro.serving.demo import SERVING_BOLT, build_serving_topology, demo_records
from repro.workloads.serving import (
    DEFAULT_MIX,
    query_stream,
    run_closed_loop_sync,
)

SEED = 7


def take(stream, n):
    return list(itertools.islice(stream, n))


class TestQueryStream:
    def test_same_seed_same_stream(self):
        assert take(query_stream(SEED, 3), 200) == take(query_stream(SEED, 3), 200)

    def test_users_are_independent_streams(self):
        assert take(query_stream(SEED, 0), 50) != take(query_stream(SEED, 1), 50)

    def test_seeds_differ(self):
        assert take(query_stream(3, 0), 50) != take(query_stream(4, 0), 50)

    def test_mix_and_shape(self):
        docs = take(query_stream(SEED, 0), 2_000)
        ops = {doc["op"] for doc in docs}
        assert ops == {op for op, _weight in DEFAULT_MIX}
        counts: dict = {}
        for doc in docs:
            counts[doc["op"]] = counts.get(doc["op"], 0) + 1
        # point dominates, as weighted
        assert counts["point"] == max(counts.values())
        for doc in docs:
            if doc["op"] == "point":
                assert doc["item"].startswith("w")
            elif doc["op"] == "range":
                assert doc["lo"] < doc["hi"]

    def test_empty_mix_rejected(self):
        with pytest.raises(ParameterError):
            next(query_stream(SEED, 0, mix=(("point", 0.0),)))


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def runtime(self):
        executor = LocalExecutor(
            build_serving_topology(demo_records(600, SEED)),
            semantics="at_least_once",
        )
        runtime = ServingRuntime(
            executor,
            SERVING_BOLT,
            registry=MetricRegistry(),
            max_snapshot_age=float("inf"),
        )
        runtime.start_ingest()
        while runtime.ingest_step(4_096):
            pass
        return runtime

    def _run(self, runtime, **kwargs):
        import asyncio

        async def _main():
            server = ServingServer(runtime)
            await server.start(ingest=False)
            try:
                return await asyncio.get_event_loop().run_in_executor(
                    None,
                    lambda: run_closed_loop_sync(
                        "127.0.0.1", server.port, **kwargs
                    ),
                )
            finally:
                await server.stop()

        return asyncio.run(_main())

    def test_pinned_digest_is_reproducible_and_cache_transparent(self, runtime):
        kwargs = dict(n_users=3, queries_per_user=20, seed=SEED)
        runtime.cache_enabled = False
        uncached = self._run(runtime, **kwargs)
        runtime.cache_enabled = True
        cached = self._run(runtime, **kwargs)
        again = self._run(runtime, **kwargs)
        assert uncached.n_errors == cached.n_errors == 0
        assert uncached.n_queries == cached.n_queries == 60
        # Same pinned snapshot → bit-identical digests, cache on or off.
        assert uncached.digest == cached.digest == again.digest
        assert uncached.n_cached == 0
        assert again.n_cached > 0  # the second cached run actually hits
        assert cached.epochs == {1}

    def test_result_accounting(self, runtime):
        runtime.cache_enabled = True
        result = self._run(runtime, n_users=2, queries_per_user=15, seed=11)
        assert result.n_users == 2
        assert result.n_queries == 30
        assert len(result.latencies_s) == 30
        assert sum(result.op_counts.values()) == 30
        assert result.qps > 0
        assert 0.0 <= result.cache_hit_ratio <= 1.0
        assert result.latency_quantile(0.99) >= result.latency_quantile(0.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            run_closed_loop_sync("127.0.0.1", 1, n_users=0)
