"""Query model: wire-document validation, canonical keys, resolution."""

import pytest

from repro.serving import QueryError, parse_query
from repro.serving.demo import serving_summary


@pytest.fixture(scope="module")
def summary():
    s = serving_summary()
    for word in ["a", "a", "a", "bb", "bb", "ccc"]:
        s.update(word)
    return s


class TestParse:
    def test_rejects_non_object(self):
        with pytest.raises(QueryError):
            parse_query(["point"])

    def test_rejects_unknown_op(self):
        with pytest.raises(QueryError, match="op must be one of"):
            parse_query({"op": "join"})

    def test_point_needs_item(self):
        with pytest.raises(QueryError, match="item"):
            parse_query({"op": "point", "synopsis": "freq"})

    @pytest.mark.parametrize("k", [0, -1, 2.5, True, "5"])
    def test_topk_needs_positive_int_k(self, k):
        with pytest.raises(QueryError):
            parse_query({"op": "topk", "k": k})

    @pytest.mark.parametrize("q", [-0.1, 1.1, "0.5", True])
    def test_quantile_needs_unit_interval_q(self, q):
        with pytest.raises(QueryError):
            parse_query({"op": "quantile", "q": q})

    def test_range_needs_bounds(self):
        with pytest.raises(QueryError, match="hi"):
            parse_query({"op": "range", "lo": 1})

    def test_synopsis_must_be_string(self):
        with pytest.raises(QueryError, match="synopsis"):
            parse_query({"op": "cardinality", "synopsis": 3})


class TestKey:
    def test_equivalent_documents_share_a_cache_line(self):
        a = parse_query({"op": "point", "item": "x", "synopsis": "freq"})
        b = parse_query(
            {"synopsis": "freq", "item": "x", "op": "point", "junk": 1}
        )
        assert a.key() == b.key()

    def test_different_queries_differ(self):
        a = parse_query({"op": "point", "item": "x", "synopsis": "freq"})
        b = parse_query({"op": "point", "item": "y", "synopsis": "freq"})
        assert a.key() != b.key()


class TestResolve:
    def test_point(self, summary):
        query = parse_query({"op": "point", "synopsis": "freq", "item": "a"})
        assert query.resolve(summary) == 3

    def test_topk(self, summary):
        query = parse_query({"op": "topk", "synopsis": "topk", "k": 2})
        assert query.resolve(summary) == [["a", 3], ["bb", 2]]

    def test_cardinality(self, summary):
        query = parse_query({"op": "cardinality", "synopsis": "uniques"})
        assert query.resolve(summary) == pytest.approx(3.0, abs=0.5)

    def test_quantile(self, summary):
        query = parse_query({"op": "quantile", "synopsis": "lengths", "q": 0.5})
        assert query.resolve(summary) == 2

    def test_range(self, summary):
        # word lengths in [1, 3): the three "a" and two "bb" updates
        query = parse_query(
            {"op": "range", "synopsis": "lengths", "lo": 1, "hi": 3}
        )
        assert query.resolve(summary) == 5

    def test_unknown_child_is_a_query_error(self, summary):
        query = parse_query({"op": "point", "synopsis": "nope", "item": "a"})
        with pytest.raises(QueryError, match="no synopsis named"):
            query.resolve(summary)

    def test_unsupported_surface_is_a_query_error(self, summary):
        # HyperLogLog has estimate() but no top(): topk must 400, not 500
        query = parse_query({"op": "topk", "synopsis": "uniques", "k": 3})
        with pytest.raises(QueryError, match="does not support"):
            query.resolve(summary)

    def test_quantile_of_empty_stream_is_none(self):
        # A freshly-captured snapshot may have absorbed nothing yet: the
        # answer is "no data", not a 400 and never a connection-killing
        # server error.
        empty = serving_summary()
        query = parse_query({"op": "quantile", "synopsis": "lengths", "q": 0.5})
        assert query.resolve(empty) is None

    def test_point_against_cardinality_synopsis_is_a_query_error(self, summary):
        # HyperLogLog.estimate() takes no item: the TypeError is wrapped
        query = parse_query({"op": "point", "synopsis": "uniques", "item": "a"})
        with pytest.raises(QueryError, match="does not support"):
            query.resolve(summary)
