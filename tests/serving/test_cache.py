"""Result-cache correctness: the cache may change latency, never answers.

Three contracts, each pinned exactly:

* **Epoch invalidation** — an entry is keyed on its snapshot epoch, so
  advancing the epoch makes every older result unreachable (and
  :meth:`purge` reclaims them with reason ``epoch``).
* **TTL** — an entry past its TTL is evicted on touch and *never*
  served, even within the same epoch.
* **LRU** — eviction order under capacity pressure is
  least-recently-*used* (a hit refreshes recency), pinned via
  :meth:`ResultCache.keys`.
"""

import pytest

from repro.common.exceptions import ParameterError
from repro.obs.metrics import MetricRegistry
from repro.serving import MISS, ResultCache


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


def make_cache(clock, capacity=8, ttl=2.0, registry=None):
    # A real registry by default: the hit/miss counter contract is part
    # of what these tests pin (NULL_REGISTRY would read 0 forever).
    registry = registry if registry is not None else MetricRegistry()
    return ResultCache(capacity=capacity, ttl=ttl, clock=clock, registry=registry)


class TestBasics:
    def test_miss_then_hit(self, clock):
        cache = make_cache(clock)
        assert cache.get("q", 1) is MISS
        cache.put("q", 1, 42)
        assert cache.get("q", 1) == 42
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_ratio() == 0.5

    def test_cached_none_is_a_hit(self, clock):
        cache = make_cache(clock)
        cache.put("q", 1, None)
        assert cache.get("q", 1) is None
        assert cache.hits == 1

    def test_parameter_validation(self, clock):
        with pytest.raises(ParameterError):
            ResultCache(capacity=0, clock=clock)
        with pytest.raises(ParameterError):
            ResultCache(ttl=0.0, clock=clock)


class TestEpochInvalidation:
    def test_new_epoch_never_sees_old_results(self, clock):
        cache = make_cache(clock)
        cache.put("q", 1, "old answer")
        # Same query, advanced snapshot epoch: the old answer must be
        # unreachable — epoch keying IS the invalidation.
        assert cache.get("q", 2) is MISS
        cache.put("q", 2, "new answer")
        assert cache.get("q", 2) == "new answer"
        assert cache.get("q", 1) == "old answer"  # still there until purged

    def test_purge_drops_strand_epochs(self, clock):
        registry = MetricRegistry()
        cache = make_cache(clock, registry=registry)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        cache.put("c", 2, 3)
        assert cache.purge(current_epoch=2) == 2
        assert cache.keys() == [("c", 2)]
        evicted = {
            s.labels: s.value
            for s in registry.get("serving_cache_evictions_total").samples()
        }
        assert evicted[(("reason", "epoch"),)] == 2


class TestTTL:
    def test_stale_entry_never_served(self, clock):
        registry = MetricRegistry()
        cache = make_cache(clock, ttl=2.0, registry=registry)
        cache.put("q", 1, 42)
        clock.now += 1.99
        assert cache.get("q", 1) == 42
        clock.now += 0.02  # past expiry
        assert cache.get("q", 1) is MISS
        assert len(cache) == 0  # evicted on touch, not just skipped
        evicted = {
            s.labels: s.value
            for s in registry.get("serving_cache_evictions_total").samples()
        }
        assert evicted[(("reason", "expired"),)] == 1

    def test_put_resets_ttl(self, clock):
        cache = make_cache(clock, ttl=2.0)
        cache.put("q", 1, "v1")
        clock.now += 1.5
        cache.put("q", 1, "v2")
        clock.now += 1.5  # 3.0s after first put, 1.5s after second
        assert cache.get("q", 1) == "v2"

    def test_purge_drops_expired(self, clock):
        cache = make_cache(clock, ttl=2.0)
        cache.put("a", 1, 1)
        clock.now += 1.0
        cache.put("b", 1, 2)
        clock.now += 1.5  # "a" expired, "b" not
        assert cache.purge() == 1
        assert cache.keys() == [("b", 1)]


class TestLRU:
    def test_eviction_order_pinned(self, clock):
        registry = MetricRegistry()
        cache = make_cache(clock, capacity=3, registry=registry)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        cache.put("c", 1, 3)
        assert cache.keys() == [("a", 1), ("b", 1), ("c", 1)]
        # A hit refreshes recency: "a" moves to most-recent...
        assert cache.get("a", 1) == 1
        assert cache.keys() == [("b", 1), ("c", 1), ("a", 1)]
        # ...so capacity pressure evicts "b", the least recently USED.
        cache.put("d", 1, 4)
        assert cache.keys() == [("c", 1), ("a", 1), ("d", 1)]
        evicted = {
            s.labels: s.value
            for s in registry.get("serving_cache_evictions_total").samples()
        }
        assert evicted[(("reason", "capacity"),)] == 1

    def test_reput_refreshes_recency(self, clock):
        cache = make_cache(clock, capacity=2)
        cache.put("a", 1, 1)
        cache.put("b", 1, 2)
        cache.put("a", 1, 10)  # overwrite: now most recent
        cache.put("c", 1, 3)  # evicts "b"
        assert cache.keys() == [("a", 1), ("c", 1)]

    def test_clear_keeps_counters(self, clock):
        cache = make_cache(clock)
        cache.put("a", 1, 1)
        cache.get("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
