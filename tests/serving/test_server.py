"""The asyncio HTTP front-end: routing, caching, shutdown hygiene.

Every test boots a real server on an ephemeral port inside one event
loop and speaks actual HTTP/1.1 over a stream connection — no mocked
transport. The shutdown tests pin the CI contract: ``stop()`` leaves
zero pending tasks behind.
"""

import asyncio
import json

import pytest

from repro.obs.metrics import MetricRegistry
from repro.platform.executor import LocalExecutor
from repro.serving import ServingRuntime, ServingServer
from repro.serving.demo import SERVING_BOLT, build_serving_topology, demo_records

SEED = 7


def make_runtime(n_records=400, **kwargs):
    executor = LocalExecutor(build_serving_topology(demo_records(n_records, SEED)))
    kwargs.setdefault("registry", MetricRegistry())
    return ServingRuntime(executor, SERVING_BOLT, **kwargs)


async def request(port, method, path, body=None):
    """One HTTP/1.1 exchange; returns (status, parsed-or-raw body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: test\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw.decode("utf-8", "replace")


def serve(coro_fn):
    """Run *coro_fn(server)* against a started server, then stop it."""

    async def _main():
        server = ServingServer(make_runtime())
        await server.start(ingest=True)
        try:
            return await coro_fn(server)
        finally:
            await server.stop()

    return asyncio.run(_main())


class TestRouting:
    def test_healthz(self):
        async def check(server):
            return await request(server.port, "GET", "/healthz")

        status, body = serve(check)
        assert status == 200 and body["ok"] is True

    def test_query_roundtrip_and_cache_hit(self):
        async def check(server):
            doc = {"op": "point", "synopsis": "freq", "item": "w0"}
            first = await request(server.port, "POST", "/query", doc)
            second = await request(server.port, "POST", "/query", doc)
            return first, second

        (s1, b1), (s2, b2) = serve(check)
        assert s1 == s2 == 200
        assert b1["ok"] and isinstance(b1["result"], int) and b1["result"] > 0
        assert b1["cached"] is False and b2["cached"] is True
        assert b1["result"] == b2["result"] and b1["epoch"] == b2["epoch"]

    def test_bad_query_is_400(self):
        async def check(server):
            return await request(
                server.port, "POST", "/query", {"op": "join"}
            )

        status, body = serve(check)
        assert status == 400
        assert body["ok"] is False and "op must be one of" in body["error"]

    def test_unparsable_body_is_400(self):
        async def check(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 4\r\n\r\n{{{{"
            )
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return int(line.split()[1])

        assert serve(check) == 400

    def test_unknown_path_is_404_and_bad_method_405(self):
        async def check(server):
            missing = await request(server.port, "GET", "/nope")
            wrong = await request(server.port, "GET", "/query")
            return missing[0], wrong[0]

        assert serve(check) == (404, 405)

    def test_refresh_advances_epoch(self):
        async def check(server):
            doc = {"op": "cardinality", "synopsis": "uniques"}
            before = await request(server.port, "POST", "/query", doc)
            bumped = await request(server.port, "POST", "/refresh")
            after = await request(server.port, "POST", "/query", doc)
            return before[1], bumped[1], after[1]

        before, bumped, after = serve(check)
        assert bumped["ok"] and bumped["epoch"] == before["epoch"] + 1
        assert after["epoch"] == bumped["epoch"]
        assert after["cached"] is False  # the new epoch misses by design

    def test_stats_and_metrics(self):
        async def check(server):
            doc = {"op": "point", "synopsis": "freq", "item": "w1"}
            await request(server.port, "POST", "/query", doc)
            await request(server.port, "POST", "/query", doc)
            stats = await request(server.port, "GET", "/stats")
            metrics = await request(server.port, "GET", "/metrics")
            return stats, metrics

        (s_status, stats), (m_status, metrics) = serve(check)
        assert s_status == m_status == 200
        assert stats["requests"] == 2
        assert stats["cache"]["hits"] == 1
        assert "serving_cache_hits_total 1" in metrics
        assert "serving_request_seconds" in metrics


class TestLifecycle:
    def test_stop_leaves_no_pending_tasks(self):
        async def _main():
            server = ServingServer(make_runtime())
            await server.start(ingest=True)
            # Leave a connection open mid-keep-alive, then stop.
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await request(server.port, "POST", "/refresh")
            await server.stop()
            writer.close()
            leaked = [
                t
                for t in asyncio.all_tasks()
                if t is not asyncio.current_task() and not t.done()
            ]
            return leaked

        assert asyncio.run(_main()) == []

    def test_ingest_drains_while_serving(self):
        async def _main():
            server = ServingServer(make_runtime(), ingest_budget=64)
            await server.start(ingest=True)
            try:
                for _ in range(200):
                    if server.runtime.ingest_done:
                        break
                    await asyncio.sleep(0.01)
                status, stats = await request(server.port, "GET", "/stats")
            finally:
                await server.stop()
            return status, stats

        status, stats = asyncio.run(_main())
        assert status == 200
        assert stats["ingest"]["done"] is True
        assert stats["ingest"]["source_frontier"] > 0

    def test_port_is_ephemeral_and_reported(self):
        async def _main():
            server = ServingServer(make_runtime())
            await server.start(ingest=False)
            port = server.port
            await server.stop()
            return port

        assert asyncio.run(_main()) > 0


def test_oversized_body_is_413():
    async def _main():
        server = ServingServer(make_runtime())
        await server.start(ingest=False)
        try:
            big = {"op": "point", "item": "x" * (2 << 20)}
            return await request(server.port, "POST", "/query", big)
        finally:
            await server.stop()

    status, _body = asyncio.run(_main())
    assert status == 413


@pytest.mark.parametrize("op", ["point", "topk", "cardinality", "quantile", "range"])
def test_every_op_serves_over_http(op):
    docs = {
        "point": {"op": "point", "synopsis": "freq", "item": "w0"},
        "topk": {"op": "topk", "synopsis": "topk", "k": 3},
        "cardinality": {"op": "cardinality", "synopsis": "uniques"},
        "quantile": {"op": "quantile", "synopsis": "lengths", "q": 0.9},
        "range": {"op": "range", "synopsis": "lengths", "lo": 1, "hi": 4},
    }

    async def check(server):
        return await request(server.port, "POST", "/query", docs[op])

    status, body = serve(check)
    assert status == 200 and body["ok"] is True and body["op"] == op
