"""Snapshot isolation: mid-ingest queries see one frozen, offline-
reproducible view.

The pin (both executors): while ingest is live, every response must be
**bit-identical** to resolving the same query offline against the
snapshot's captured stateship payloads — and, with the epoch pinned,
further ingest must not change a single answer. That is the serving
layer's whole correctness claim: reads are isolated from writes.
"""

import pytest

from repro.bench.fingerprint import state_fingerprint
from repro.cluster.coordinator import ClusterExecutor
from repro.obs.metrics import MetricRegistry
from repro.platform.executor import LocalExecutor
from repro.serving import ServingRuntime, capture_payloads, merge_payloads, parse_query
from repro.serving.demo import SERVING_BOLT, build_serving_topology, demo_records

SEED = 7

#: One of each op, all against the served StreamSummary's children.
QUERY_DOCS = [
    {"op": "point", "synopsis": "freq", "item": "w0"},
    {"op": "point", "synopsis": "freq", "item": "w7"},
    {"op": "topk", "synopsis": "topk", "k": 5},
    {"op": "cardinality", "synopsis": "uniques"},
    {"op": "quantile", "synopsis": "lengths", "q": 0.5},
    {"op": "range", "synopsis": "lengths", "lo": 1, "hi": 3},
]


def _offline_answers(payloads):
    """Resolve every pinned query against a fresh offline merge of the
    captured shard payload bytes — the auditor's view of the snapshot."""
    merged = merge_payloads(list(payloads))
    return [parse_query(doc).resolve(merged) for doc in QUERY_DOCS]


class TestLocalExecutor:
    def test_mid_ingest_reads_match_offline_and_survive_ingest(self):
        records = demo_records(1_500, SEED)
        executor = LocalExecutor(
            build_serving_topology(records), semantics="at_least_once"
        )
        runtime = ServingRuntime(
            executor,
            SERVING_BOLT,
            registry=MetricRegistry(),
            max_snapshot_age=float("inf"),  # pin the first captured epoch
        )
        runtime.cache_enabled = False  # every answer is a real recompute
        runtime.start_ingest()
        for _ in range(4):  # ingest part of the stream, then stop mid-way
            assert runtime.ingest_step(32)
        live = [runtime.handle(doc)["result"] for doc in QUERY_DOCS]
        snapshot = runtime.store.current()
        assert snapshot.epoch == 1
        # Bit-identical to offline resolution of the captured bytes.
        assert live == _offline_answers(snapshot.payloads)
        # Ingest the rest of the stream: the pinned epoch must not move
        # and not one answer may change — reads are isolated from writes.
        while runtime.ingest_step(256):
            pass
        assert runtime.ingest_done
        again = [runtime.handle(doc)["result"] for doc in QUERY_DOCS]
        assert again == live
        assert runtime.store.epoch == 1
        # A refresh now sees the fully-ingested state — and differs.
        runtime.refresh()
        final = [runtime.handle(doc)["result"] for doc in QUERY_DOCS]
        assert final != live

    def test_offline_merge_is_deterministic(self):
        records = demo_records(600, SEED)
        executor = LocalExecutor(build_serving_topology(records))
        executor.run()
        payloads = capture_payloads(executor, SERVING_BOLT)
        first = merge_payloads(list(payloads))
        second = merge_payloads(list(payloads))
        assert state_fingerprint(first) == state_fingerprint(second)


class TestClusterExecutor:
    def test_mid_ingest_reads_match_offline(self):
        records = demo_records(2_500, SEED)
        with ClusterExecutor(
            build_serving_topology(records), n_workers=2
        ) as executor:
            runtime = ServingRuntime(
                executor,
                SERVING_BOLT,
                registry=MetricRegistry(),
                max_snapshot_age=float("inf"),
            )
            runtime.cache_enabled = False
            runtime.start_ingest()
            # First query forces a capture serviced by the live pump —
            # possibly mid-ingest, possibly after; the pin holds either way.
            live = [runtime.handle(doc)["result"] for doc in QUERY_DOCS]
            snapshot = runtime.store.current()
            assert snapshot.epoch == 1
            assert live == _offline_answers(snapshot.payloads)
            # Ingest proceeds (or completes) underneath; pinned answers
            # must not move.
            runtime.join_ingest(timeout=60.0)
            assert runtime.ingest_error is None
            assert [runtime.handle(doc)["result"] for doc in QUERY_DOCS] == live
            # The post-ingest refresh equals a local run over the full
            # stream: merge-on-query over shards loses nothing.
            runtime.refresh()
            clustered = [runtime.handle(doc)["result"] for doc in QUERY_DOCS]
        reference = LocalExecutor(build_serving_topology(records))
        reference.run()
        offline = [
            parse_query(doc).resolve(reference.merged_synopsis(SERVING_BOLT))
            for doc in QUERY_DOCS
        ]
        assert clustered == offline

    def test_capture_does_not_block_ingest_completion(self):
        records = demo_records(1_200, SEED)
        with ClusterExecutor(
            build_serving_topology(records), n_workers=2
        ) as executor:
            runtime = ServingRuntime(
                executor, SERVING_BOLT, registry=MetricRegistry()
            )
            runtime.start_ingest()
            for _ in range(5):  # hammer captures while the pump runs
                runtime.refresh()
            runtime.join_ingest(timeout=60.0)
            assert runtime.ingest_error is None
            assert runtime.ingest_done


@pytest.mark.parametrize("make_executor", ["local", "cluster"])
def test_payload_framing_is_executor_agnostic(make_executor):
    """Both executors ship the same stateship framing for the same data."""
    records = demo_records(400, SEED)
    if make_executor == "local":
        executor = LocalExecutor(build_serving_topology(records))
        executor.run()
        payloads = capture_payloads(executor, SERVING_BOLT)
        merged = merge_payloads(list(payloads))
    else:
        with ClusterExecutor(
            build_serving_topology(records), n_workers=2
        ) as executor:
            executor.run()
            payloads = capture_payloads(executor, SERVING_BOLT)
            merged = merge_payloads(list(payloads))
    reference = LocalExecutor(build_serving_topology(records))
    reference.run()
    assert state_fingerprint(merged) == state_fingerprint(
        reference.merged_synopsis(SERVING_BOLT)
    )
