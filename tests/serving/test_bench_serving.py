"""The serving bench: schema, invariants, CLI smoke."""

import json

from repro.bench.cli import main as bench_main
from repro.bench.runner import validate_payload
from repro.bench.serving import run_serving_bench


def test_smoke_payload_schema_and_invariants():
    payload = run_serving_bench(
        n_items=800,
        n_users=2,
        queries_per_user=12,
        seed=7,
        smoke=True,
        ingest_budgets=(0, 64),
    )
    validate_payload(payload)  # raises on any schema violation
    assert payload["config"]["mode"] == "serving-closed-loop"
    assert len(payload["results"]) == 2
    for row in payload["results"]:
        assert row["equivalent"] is True  # bit-identical replays
        assert row["n_items"] == 24
        assert row["qps"] > 0 and row["p99_ms"] > 0
        assert 0.0 <= row["cache_hit_ratio"] <= 1.0
    budgets = [row["ingest_budget"] for row in payload["results"]]
    assert budgets == [0, 64]
    # The concurrent-ingest row actually ingested while serving.
    assert payload["results"][1]["ingest_items_per_s"] > 0


def test_cli_writes_validated_json(tmp_path, capsys):
    out = tmp_path / "BENCH_serving.json"
    code = bench_main(
        ["--serving", "--smoke", "--users", "2", "--out", str(out)]
    )
    assert code == 0
    payload = json.loads(out.read_text())
    validate_payload(payload)
    assert payload["config"]["smoke"] is True
    assert all(row["equivalent"] for row in payload["results"])
    stdout = capsys.readouterr().out
    assert "cache hit ratio" in stdout
    assert "schema OK" in stdout
