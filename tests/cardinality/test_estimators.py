"""Accuracy and merge tests for the cardinality estimators."""

import pytest

from repro.common.exceptions import MergeError, ParameterError
from repro.cardinality import (
    FlajoletMartin,
    HyperLogLog,
    KMinValues,
    LinearCounter,
    LogLog,
    SlidingHyperLogLog,
)


def _fill(sketch, n, prefix="item", start=0):
    sketch.update_many(f"{prefix}{i}" for i in range(start, start + n))
    return sketch


class TestLinearCounter:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            LinearCounter(0)

    def test_accuracy_while_sparse(self):
        lc = _fill(LinearCounter(50_000, seed=0), 5_000)
        assert abs(lc.estimate() - 5_000) / 5_000 < 0.03

    def test_duplicates_ignored(self):
        lc = LinearCounter(10_000, seed=1)
        for __ in range(5):
            _fill(lc, 1_000)
        assert abs(lc.estimate() - 1_000) / 1_000 < 0.05

    def test_saturation_falls_back_to_count(self):
        lc = _fill(LinearCounter(8, seed=2), 1_000)
        assert lc.estimate() == 1_000.0

    def test_merge_union(self):
        a = _fill(LinearCounter(50_000, seed=3), 2_000, prefix="a")
        b = _fill(LinearCounter(50_000, seed=3), 2_000, prefix="b")
        a.merge(b)
        assert abs(a.estimate() - 4_000) / 4_000 < 0.05


class TestFlajoletMartin:
    def test_requires_power_of_two(self):
        with pytest.raises(ParameterError):
            FlajoletMartin(m=48)

    def test_order_of_magnitude_accuracy(self):
        fm = _fill(FlajoletMartin(m=256, seed=0), 50_000)
        assert abs(fm.estimate() - 50_000) / 50_000 < 0.25

    def test_merge_matches_single_pass(self):
        a = _fill(FlajoletMartin(m=64, seed=1), 10_000, prefix="a")
        b = _fill(FlajoletMartin(m=64, seed=1), 10_000, prefix="b")
        single = FlajoletMartin(m=64, seed=1)
        _fill(single, 10_000, prefix="a")
        _fill(single, 10_000, prefix="b")
        a.merge(b)
        assert a.estimate() == pytest.approx(single.estimate())


class TestLogLog:
    def test_precision_bounds(self):
        for p in (3, 17):
            with pytest.raises(ParameterError):
                LogLog(precision=p)

    def test_accuracy(self):
        ll = _fill(LogLog(precision=11, seed=0), 100_000)
        assert abs(ll.estimate() - 100_000) / 100_000 < 0.15

    def test_merge_is_register_max(self):
        a = _fill(LogLog(precision=8, seed=2), 5_000, prefix="a")
        b = _fill(LogLog(precision=8, seed=2), 5_000, prefix="b")
        merged = a + b
        assert merged.estimate() >= max(a.estimate(), b.estimate()) * 0.9


class TestHyperLogLog:
    def test_small_range_uses_linear_counting(self):
        hll = _fill(HyperLogLog(precision=12, seed=0), 100)
        assert abs(hll.estimate() - 100) < 5

    @pytest.mark.parametrize("true_n", [1_000, 20_000, 200_000])
    def test_accuracy_within_3_sigma(self, true_n):
        hll = _fill(HyperLogLog(precision=12, seed=1), true_n)
        err = abs(hll.estimate() - true_n) / true_n
        assert err < 3 * hll.relative_error(), (true_n, hll.estimate())

    def test_duplicates_ignored(self):
        hll = HyperLogLog(precision=12, seed=2)
        for __ in range(10):
            _fill(hll, 5_000)
        err = abs(hll.estimate() - 5_000) / 5_000
        assert err < 3 * hll.relative_error()

    def test_merge_equals_single_pass_exactly(self):
        a = _fill(HyperLogLog(precision=10, seed=3), 30_000, prefix="a")
        b = _fill(HyperLogLog(precision=10, seed=3), 30_000, prefix="b")
        single = HyperLogLog(precision=10, seed=3)
        _fill(single, 30_000, prefix="a")
        _fill(single, 30_000, prefix="b")
        a.merge(b)
        assert a.estimate() == pytest.approx(single.estimate())

    def test_merge_overlapping_streams(self):
        a = _fill(HyperLogLog(precision=12, seed=4), 10_000)
        b = _fill(HyperLogLog(precision=12, seed=4), 10_000)  # identical items
        a.merge(b)
        err = abs(a.estimate() - 10_000) / 10_000
        assert err < 3 * a.relative_error()

    def test_merge_requires_same_precision_and_seed(self):
        with pytest.raises(MergeError):
            HyperLogLog(precision=10).merge(HyperLogLog(precision=12))
        with pytest.raises(MergeError):
            HyperLogLog(seed=1).merge(HyperLogLog(seed=2))

    def test_serialization_roundtrip(self):
        hll = _fill(HyperLogLog(precision=10, seed=5), 10_000)
        clone = HyperLogLog.from_bytes(hll.to_bytes())
        assert clone.estimate() == pytest.approx(hll.estimate())
        assert clone.count == hll.count

    def test_size_is_registers(self):
        assert HyperLogLog(precision=12).size_bytes() == 4096


class TestKMV:
    def test_k_must_exceed_one(self):
        with pytest.raises(ParameterError):
            KMinValues(k=1)

    def test_exact_below_k(self):
        kmv = _fill(KMinValues(k=128, seed=0), 50)
        assert kmv.estimate() == 50.0

    def test_accuracy(self):
        kmv = _fill(KMinValues(k=512, seed=1), 50_000)
        assert abs(kmv.estimate() - 50_000) / 50_000 < 0.15

    def test_jaccard_estimate(self):
        a, b = KMinValues(k=512, seed=2), KMinValues(k=512, seed=2)
        # 50% overlap: A = [0, 10000), B = [5000, 15000) -> Jaccard = 1/3
        _fill(a, 10_000, start=0)
        _fill(b, 10_000, start=5_000)
        assert abs(a.jaccard(b) - 1 / 3) < 0.08

    def test_intersection_estimate(self):
        a, b = KMinValues(k=512, seed=3), KMinValues(k=512, seed=3)
        _fill(a, 10_000, start=0)
        _fill(b, 10_000, start=5_000)
        inter = a.intersection_estimate(b)
        assert abs(inter - 5_000) / 5_000 < 0.25

    def test_merge_union(self):
        a = _fill(KMinValues(k=256, seed=4), 5_000, prefix="a")
        b = _fill(KMinValues(k=256, seed=4), 5_000, prefix="b")
        a.merge(b)
        assert abs(a.estimate() - 10_000) / 10_000 < 0.2


class TestSlidingHLL:
    def test_window_validation(self):
        s = SlidingHyperLogLog(precision=8, horizon=100.0)
        s.update_at("x", 0.0)
        with pytest.raises(ParameterError):
            s.estimate(window=200.0)
        with pytest.raises(ParameterError):
            s.update_at("y", -1.0)

    def test_full_horizon_matches_hll_accuracy(self):
        s = SlidingHyperLogLog(precision=11, horizon=1e9, seed=0)
        for i in range(20_000):
            s.update_at(f"u{i}", float(i))
        err = abs(s.estimate() - 20_000) / 20_000
        assert err < 0.1

    def test_window_counts_only_recent(self):
        s = SlidingHyperLogLog(precision=11, horizon=100_000.0, seed=1)
        for i in range(50_000):
            s.update_at(f"u{i}", float(i))  # all distinct, 1 per tick
        recent = s.estimate(window=10_000.0)
        assert abs(recent - 10_000) / 10_000 < 0.15

    def test_memory_far_below_window(self):
        s = SlidingHyperLogLog(precision=8, horizon=1e9, seed=2)
        for i in range(50_000):
            s.update_at(f"u{i}", float(i))
        assert s.retained < 50_000 * 0.2

    def test_merge_shared_clock(self):
        a = SlidingHyperLogLog(precision=9, horizon=1e6, seed=3)
        b = SlidingHyperLogLog(precision=9, horizon=1e6, seed=3)
        for i in range(5_000):
            a.update_at(f"a{i}", float(i))
            b.update_at(f"b{i}", float(i))
        a.merge(b)
        assert abs(a.estimate() - 10_000) / 10_000 < 0.15
