"""Tests for the incremental ML package."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.ml import (
    HoeffdingTree,
    OnlineLogisticRegression,
    PassiveAggressiveRegressor,
    StreamingNaiveBayes,
)


def _linear_data(n, dims=4, seed=0, noise=0.5):
    rng = make_np_rng(seed)
    w = rng.normal(size=dims)
    X = rng.normal(size=(n, dims))
    logits = X @ w + noise * rng.normal(size=n)
    y = (logits > 0).astype(int)
    return X, y, w


class TestLogisticRegression:
    def test_validation(self):
        with pytest.raises(ParameterError):
            OnlineLogisticRegression(0)
        lr = OnlineLogisticRegression(2)
        with pytest.raises(ParameterError):
            lr.update(([1.0, 2.0], 3))
        with pytest.raises(ParameterError):
            lr.update(([1.0], 1))

    @pytest.mark.parametrize("adagrad", [True, False])
    def test_learns_separable_data(self, adagrad):
        X, y, __ = _linear_data(6_000, seed=1, noise=0.1)
        lr = OnlineLogisticRegression(4, adagrad=adagrad)
        lr.update_many(zip(X, y))
        correct = sum(lr.predict(x) == label for x, label in zip(X[-1_000:], y[-1_000:]))
        assert correct / 1_000 > 0.93

    def test_progressive_loss_decreases(self):
        X, y, __ = _linear_data(4_000, seed=2)
        lr = OnlineLogisticRegression(4)
        losses = []
        for i, (x, label) in enumerate(zip(X, y)):
            lr.update((x, label))
            if i in (500, 3_999):
                losses.append(lr.progressive_log_loss())
        assert losses[-1] < losses[0]

    def test_probability_calibrated_direction(self):
        X, y, w = _linear_data(5_000, seed=3, noise=0.1)
        lr = OnlineLogisticRegression(4)
        lr.update_many(zip(X, y))
        strong_pos = w * 3.0
        strong_neg = -w * 3.0
        assert lr.predict_proba(strong_pos) > 0.9
        assert lr.predict_proba(strong_neg) < 0.1

    def test_merge_parameter_averaging(self):
        X, y, __ = _linear_data(4_000, seed=4, noise=0.1)
        a, b = OnlineLogisticRegression(4), OnlineLogisticRegression(4)
        a.update_many(zip(X[:2_000], y[:2_000]))
        b.update_many(zip(X[2_000:], y[2_000:]))
        a.merge(b)
        assert a.count == 4_000
        correct = sum(a.predict(x) == label for x, label in zip(X[:500], y[:500]))
        assert correct / 500 > 0.9


class TestPassiveAggressive:
    def test_validation(self):
        with pytest.raises(ParameterError):
            PassiveAggressiveRegressor(2, C=0)

    def test_learns_linear_function(self):
        rng = make_np_rng(5)
        w_true = np.array([2.0, -1.0, 0.5])
        pa = PassiveAggressiveRegressor(3, epsilon=0.05)
        for __ in range(5_000):
            x = rng.normal(size=3)
            pa.update((x, float(w_true @ x + 1.0)))
        test = rng.normal(size=3)
        assert abs(pa.predict(test) - (w_true @ test + 1.0)) < 0.3

    def test_no_update_inside_epsilon(self):
        pa = PassiveAggressiveRegressor(1, epsilon=10.0)
        pa.update(([1.0], 0.5))  # |error| < eps -> no change
        assert np.allclose(pa.weights, 0.0)

    def test_adapts_to_drift(self):
        rng = make_np_rng(6)
        pa = PassiveAggressiveRegressor(1, epsilon=0.01, C=1.0)
        for __ in range(2_000):
            x = rng.normal(size=1)
            pa.update((x, float(3.0 * x[0])))
        for __ in range(2_000):
            x = rng.normal(size=1)
            pa.update((x, float(-3.0 * x[0])))
        assert pa.predict([1.0]) < -2.0


class TestNaiveBayes:
    CORPUS = [
        (["buy", "cheap", "pills"], "spam"),
        (["cheap", "watches", "buy"], "spam"),
        (["meeting", "tomorrow", "agenda"], "ham"),
        (["project", "meeting", "notes"], "ham"),
    ] * 25

    def test_validation(self):
        with pytest.raises(ParameterError):
            StreamingNaiveBayes(smoothing=0)
        with pytest.raises(ParameterError):
            StreamingNaiveBayes().predict(["x"])  # no data yet

    def test_classifies_held_out(self):
        nb = StreamingNaiveBayes()
        nb.update_many(self.CORPUS)
        assert nb.predict(["cheap", "pills"]) == "spam"
        assert nb.predict(["meeting", "notes"]) == "ham"

    def test_probabilities_normalised(self):
        nb = StreamingNaiveBayes()
        nb.update_many(self.CORPUS)
        proba = nb.predict_proba(["buy"])
        assert sum(proba.values()) == pytest.approx(1.0)
        assert proba["spam"] > proba["ham"]

    def test_decay_forgets_old_concept(self):
        nb = StreamingNaiveBayes(decay=0.95)
        for __ in range(200):
            nb.update((["token"], "old"))
        for __ in range(200):
            nb.update((["token"], "new"))
        assert nb.predict(["token"]) == "new"

    def test_merge_adds_counts(self):
        a, b = StreamingNaiveBayes(), StreamingNaiveBayes()
        a.update_many(self.CORPUS[:50])
        b.update_many(self.CORPUS[50:])
        a.merge(b)
        assert a.predict(["cheap"]) == "spam"
        assert a.labels == {"spam", "ham"}


class TestHoeffdingTree:
    def test_validation(self):
        with pytest.raises(ParameterError):
            HoeffdingTree(0)
        tree = HoeffdingTree(2)
        with pytest.raises(ParameterError):
            tree.update(([1.0], "a"))

    def test_predict_before_data(self):
        assert HoeffdingTree(2).predict([0.0, 0.0]) is None

    def test_learns_axis_aligned_concept(self):
        rng = make_np_rng(7)
        tree = HoeffdingTree(2, grace_period=100)
        for __ in range(8_000):
            x = rng.uniform(0, 1, size=2)
            label = "pos" if x[0] > 0.5 else "neg"
            tree.update((x, label))
        assert tree.n_nodes > 1  # it split
        correct = 0
        for __ in range(500):
            x = rng.uniform(0, 1, size=2)
            correct += tree.predict(x) == ("pos" if x[0] > 0.5 else "neg")
        assert correct / 500 > 0.95

    def test_learns_conjunction(self):
        rng = make_np_rng(8)
        tree = HoeffdingTree(2, grace_period=150, max_depth=6)
        def label(x):
            return "a" if (x[0] > 0.5 and x[1] > 0.5) else "b"
        for __ in range(15_000):
            x = rng.uniform(0, 1, size=2)
            tree.update((x, label(x)))
        correct = 0
        for __ in range(500):
            x = rng.uniform(0, 1, size=2)
            correct += tree.predict(x) == label(x)
        assert correct / 500 > 0.9
        assert tree.depth >= 2

    def test_progressive_accuracy_improves(self):
        rng = make_np_rng(9)
        tree = HoeffdingTree(1, grace_period=100)
        for __ in range(5_000):
            x = rng.uniform(0, 1, size=1)
            tree.update((x, int(x[0] > 0.3)))
        assert tree.progressive_accuracy() > 0.8

    def test_depth_bounded(self):
        rng = make_np_rng(10)
        tree = HoeffdingTree(1, grace_period=50, max_depth=3)
        for __ in range(10_000):
            x = rng.uniform(0, 1, size=1)
            tree.update((x, int(x[0] * 8) % 2))
        assert tree.depth <= 3

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            HoeffdingTree(1).merge(HoeffdingTree(1))
