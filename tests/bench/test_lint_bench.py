"""The streamlint bench: schema, equivalence invariant, CLI wiring."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.lint import CASES, run_lint_bench, warm_speedup
from repro.bench.runner import validate_payload
from repro.common.exceptions import ParameterError

_TREE = {
    "platform/a.py": "import random\nx = random.random()\n",
    "sketchlib/b.py": "def f(xs=[]):\n    pass\n",
    "util/c.py": "y = 1\n",
}


@pytest.fixture
def tiny_tree(tmp_path):
    for relpath, source in _TREE.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def test_payload_is_schema_valid_over_tiny_tree(tiny_tree):
    payload = run_lint_bench(target=tiny_tree, repeats=1)
    validate_payload(payload)
    assert len(payload["results"]) == len(CASES)
    names = [entry["synopsis"] for entry in payload["results"]]
    assert names[0].startswith("cold_1job")
    assert all(entry["equivalent"] for entry in payload["results"])
    assert all(entry["n_items"] == len(_TREE) for entry in payload["results"])
    # every row is anchored to the same cold single-process baseline
    baselines = {entry["seq_seconds"] for entry in payload["results"]}
    assert len(baselines) == 1
    assert warm_speedup(payload) > 0


def test_rejects_bad_parameters(tiny_tree):
    with pytest.raises(ParameterError, match="repeats"):
        run_lint_bench(target=tiny_tree, repeats=0)
    with pytest.raises(ParameterError, match="no such analysis target"):
        run_lint_bench(target=tiny_tree / "missing")


def test_warm_speedup_requires_warm_row():
    with pytest.raises(ValueError, match="warm_auto"):
        warm_speedup({"results": []})


def test_cli_lint_smoke_writes_validated_json(tmp_path, capsys):
    out = tmp_path / "BENCH_lint.json"
    assert main(["--lint", "--smoke", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    validate_payload(payload)
    assert payload["config"]["smoke"] is True
    assert payload["config"]["repeats"] == 1
    assert len(payload["results"]) == len(CASES)
    stdout = capsys.readouterr().out
    assert "warm --jobs auto" in stdout and "speedup" in stdout
