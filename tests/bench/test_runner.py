"""The bench suite itself: schema, equivalence verification, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchCase,
    default_cases,
    format_table,
    run_bench,
    state_fingerprint,
    validate_payload,
)
from repro.bench.cli import main
from repro.common.exceptions import ParameterError


def _tiny_cases() -> list[BenchCase]:
    from repro.frequency.count_min import CountMinSketch

    return [
        BenchCase(
            "count_min",
            lambda: CountMinSketch(64, 3),
            "ints",
            lambda n, seed: [i % 17 for i in range(n)],
        )
    ]


def test_run_bench_payload_is_schema_valid_and_equivalent():
    payload = run_bench(cases=_tiny_cases(), n_items=500, repeats=1, smoke=True)
    validate_payload(payload)  # raises on any problem
    assert payload["schema"] == BENCH_SCHEMA
    (entry,) = payload["results"]
    assert entry["synopsis"] == "count_min"
    assert entry["n_items"] == 500
    assert entry["equivalent"] is True
    assert entry["speedup"] == pytest.approx(
        entry["seq_seconds"] / entry["batch_seconds"]
    )


def test_default_cases_cover_the_hot_path_synopses():
    names = {case.name for case in default_cases()}
    assert {
        "count_min",
        "count_min_conservative",
        "count_sketch",
        "bloom",
        "counting_bloom",
        "partitioned_bloom",
        "hyperloglog",
        "sliding_hll",
        "space_saving",
        "misra_gries",
        "lossy_counting",
        "stream_summary",
    } <= names


def test_run_bench_rejects_bad_parameters():
    with pytest.raises(ParameterError):
        run_bench(cases=_tiny_cases(), n_items=0)
    with pytest.raises(ParameterError):
        run_bench(cases=_tiny_cases(), n_items=10, repeats=0)


def test_validate_payload_rejects_divergence_and_bad_schema():
    payload = run_bench(cases=_tiny_cases(), n_items=100, repeats=1)
    broken = json.loads(json.dumps(payload))
    broken["results"][0]["equivalent"] = False
    with pytest.raises(ValueError, match="diverged"):
        validate_payload(broken)
    with pytest.raises(ValueError, match="schema"):
        validate_payload({**payload, "schema": "repro.bench/v0"})
    with pytest.raises(ValueError):
        validate_payload({**payload, "results": []})


def test_format_table_lists_every_case():
    payload = run_bench(cases=_tiny_cases(), n_items=100, repeats=1)
    table = format_table(payload)
    assert "count_min" in table
    assert "speedup" in table


def test_cli_smoke_writes_validated_json(tmp_path, capsys):
    out = tmp_path / "BENCH_synopses.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    validate_payload(payload)
    assert payload["config"]["smoke"] is True
    assert len(payload["results"]) == len(default_cases())
    stdout = capsys.readouterr().out
    assert "synopsis" in stdout and "speedup" in stdout


def test_state_fingerprint_distinguishes_and_normalises():
    import numpy as np

    from repro.frequency.count_min import CountMinSketch

    a = CountMinSketch(32, 2)
    b = CountMinSketch(32, 2)
    assert state_fingerprint(a) == state_fingerprint(b)
    a.update("x")
    assert state_fingerprint(a) != state_fingerprint(b)
    b.update("x")
    assert state_fingerprint(a) == state_fingerprint(b)
    # Mixed-type dict keys have a total order; NaN equals itself.
    assert state_fingerprint({1: "a", "1": "b"}) == state_fingerprint(
        {"1": "b", 1: "a"}
    )
    assert state_fingerprint(float("nan")) == state_fingerprint(float("nan"))
    arr = np.arange(4, dtype=np.int64)
    assert state_fingerprint(arr) == state_fingerprint(arr.copy())
    assert state_fingerprint(arr) != state_fingerprint(arr.astype(np.int32))
