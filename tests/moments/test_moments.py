"""Tests for frequency-moment estimation."""

import collections

import pytest

from repro.common.exceptions import ParameterError
from repro.moments import AMSSketch, FkEstimator
from repro.workloads import zipf_stream


def _f_k(counter, k):
    return sum(c**k for c in counter.values())


@pytest.fixture(scope="module")
def stream_and_counts():
    data = list(zipf_stream(5_000, universe=500, skew=1.2, seed=31))
    return data, collections.Counter(data)


class TestAMS:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            AMSSketch(groups=0)
        with pytest.raises(ParameterError):
            AMSSketch().update_weighted("x", 0)

    def test_f2_accuracy(self, stream_and_counts):
        data, counts = stream_and_counts
        ams = AMSSketch(groups=7, per_group=32, seed=0)
        ams.update_many(data)
        true_f2 = _f_k(counts, 2)
        assert abs(ams.estimate_f2() - true_f2) / true_f2 < 0.25

    def test_f2_on_uniform_stream(self):
        # n distinct items once each: F2 = n exactly.
        ams = AMSSketch(groups=7, per_group=32, seed=1)
        ams.update_many(f"u{i}" for i in range(2_000))
        assert abs(ams.estimate_f2() - 2_000) / 2_000 < 0.3

    def test_turnstile_deletion(self):
        ams = AMSSketch(groups=5, per_group=16, seed=2)
        ams.update_weighted("x", 10.0)
        ams.update_weighted("x", -10.0)
        assert ams.estimate_f2() == 0.0

    def test_merge_equals_single_pass(self, stream_and_counts):
        data, __ = stream_and_counts
        half = len(data) // 2
        a = AMSSketch(groups=5, per_group=16, seed=3)
        b = AMSSketch(groups=5, per_group=16, seed=3)
        single = AMSSketch(groups=5, per_group=16, seed=3)
        a.update_many(data[:half])
        b.update_many(data[half:])
        single.update_many(data)
        a.merge(b)
        assert a.estimate_f2() == pytest.approx(single.estimate_f2())

    def test_surprise_number_alias(self):
        ams = AMSSketch(seed=4)
        ams.update_many(["a", "a", "b"])
        assert ams.surprise_number() == ams.estimate_f2()


class TestFk:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            FkEstimator(k=0)

    def test_f1_is_stream_length(self, stream_and_counts):
        data, __ = stream_and_counts
        fk = FkEstimator(k=1, groups=5, per_group=10, seed=0)
        fk.update_many(data[:1000])
        # F1 = n exactly; the estimator collapses to n * (r - (r-1)) = n.
        assert fk.estimate() == 1000

    def test_f2_rough_accuracy(self, stream_and_counts):
        data, counts = stream_and_counts
        fk = FkEstimator(k=2, groups=7, per_group=60, seed=1)
        fk.update_many(data)
        true_f2 = _f_k(counts, 2)
        assert abs(fk.estimate() - true_f2) / true_f2 < 0.5

    def test_f3_order_of_magnitude(self, stream_and_counts):
        data, counts = stream_and_counts
        fk = FkEstimator(k=3, groups=9, per_group=80, seed=2)
        fk.update_many(data)
        true_f3 = _f_k(counts, 3)
        assert 0.3 < fk.estimate() / true_f3 < 3.0

    def test_empty_estimate(self):
        assert FkEstimator(k=2).estimate() == 0.0

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            FkEstimator(k=2).merge(FkEstimator(k=2))
