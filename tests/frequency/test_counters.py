"""Tests for the counter-based heavy-hitter algorithms."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.frequency import LossyCounting, MisraGries, SpaceSaving, StickySampling
from repro.workloads import zipf_stream


@pytest.fixture(scope="module")
def zipf_data():
    data = list(zipf_stream(50_000, universe=5_000, skew=1.2, seed=13))
    return data, collections.Counter(data)


class TestMisraGries:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            MisraGries(0)

    def test_never_overcounts(self, zipf_data):
        data, truth = zipf_data
        mg = MisraGries(k=100)
        mg.update_many(data)
        for item, est in mg.top(50):
            assert est <= truth[item]

    def test_undercount_within_bound(self, zipf_data):
        data, truth = zipf_data
        mg = MisraGries(k=100)
        mg.update_many(data)
        bound = mg.error_bound()
        for item, est in mg.top(20):
            assert truth[item] - est <= bound + 1

    def test_top_items_survive(self, zipf_data):
        data, truth = zipf_data
        mg = MisraGries(k=200)
        mg.update_many(data)
        tracked = dict(mg.top(200))
        for item, __ in truth.most_common(5):
            assert item in tracked

    def test_heavy_hitters_threshold_validation(self):
        with pytest.raises(ParameterError):
            MisraGries(5).heavy_hitters(0.0)

    def test_space_bound(self, zipf_data):
        data, __ = zipf_data
        mg = MisraGries(k=50)
        mg.update_many(data)
        assert len(mg) <= 50

    def test_merge_preserves_heavy_items(self, zipf_data):
        data, truth = zipf_data
        half = len(data) // 2
        a, b = MisraGries(k=200), MisraGries(k=200)
        a.update_many(data[:half])
        b.update_many(data[half:])
        a.merge(b)
        tracked = dict(a.top(200))
        for item, __ in truth.most_common(3):
            assert item in tracked
        assert a.count == len(data)

    def test_merge_never_overcounts(self, zipf_data):
        data, truth = zipf_data
        half = len(data) // 2
        a, b = MisraGries(k=100), MisraGries(k=100)
        a.update_many(data[:half])
        b.update_many(data[half:])
        a.merge(b)
        for item, est in a.top(100):
            assert est <= truth[item]


class TestLossyCounting:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            LossyCounting(epsilon=0.0)

    def test_no_false_negatives(self, zipf_data):
        data, truth = zipf_data
        lc = LossyCounting(epsilon=0.001)
        lc.update_many(data)
        support = 0.005
        hh = lc.heavy_hitters(support)
        for item, cnt in truth.items():
            if cnt >= support * len(data):
                assert item in hh, item

    def test_undercount_bounded(self, zipf_data):
        data, truth = zipf_data
        lc = LossyCounting(epsilon=0.001)
        lc.update_many(data)
        for item, __ in truth.most_common(20):
            est = lc.estimate(item)
            assert est <= truth[item]
            assert truth[item] - est <= lc.epsilon * len(data)

    def test_space_sublinear(self, zipf_data):
        data, truth = zipf_data
        lc = LossyCounting(epsilon=0.001)
        lc.update_many(data)
        assert lc.n_entries < len(truth)

    def test_merge(self, zipf_data):
        data, truth = zipf_data
        half = len(data) // 2
        a, b = LossyCounting(0.001), LossyCounting(0.001)
        a.update_many(data[:half])
        b.update_many(data[half:])
        a.merge(b)
        top_item = truth.most_common(1)[0][0]
        assert a.estimate(top_item) <= truth[top_item]
        assert a.estimate(top_item) >= truth[top_item] - 2 * 0.001 * len(data)


class TestStickySampling:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            StickySampling(support=0.01, epsilon=0.05)  # epsilon >= support
        with pytest.raises(ParameterError):
            StickySampling(failure=0.0)

    def test_finds_heavy_hitters(self, zipf_data):
        data, truth = zipf_data
        ss = StickySampling(support=0.01, epsilon=0.002, seed=0)
        ss.update_many(data)
        hh = ss.heavy_hitters()
        for item, cnt in truth.most_common(5):
            if cnt >= 0.01 * len(data):
                assert item in hh

    def test_space_independent_of_stream_length(self):
        ss = StickySampling(support=0.05, epsilon=0.01, seed=1)
        ss.update_many(zipf_stream(100_000, universe=50_000, skew=0.8, seed=14))
        # Expected space 2/eps * log(1/(s*delta)) ~ 2000
        assert ss.n_entries < 8_000

    def test_merge_accumulates(self):
        a = StickySampling(support=0.1, epsilon=0.05, seed=2)
        b = StickySampling(support=0.1, epsilon=0.05, seed=3)
        a.update_many(["x"] * 100)
        b.update_many(["x"] * 100)
        a.merge(b)
        assert a.estimate("x") > 100


class TestSpaceSaving:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SpaceSaving(0)
        with pytest.raises(ParameterError):
            SpaceSaving(5).update_weighted("x", 0)

    def test_never_undercounts(self, zipf_data):
        data, truth = zipf_data
        ss = SpaceSaving(k=100)
        ss.update_many(data)
        for item, est in ss.top(100):
            assert est >= truth[item]

    def test_guaranteed_count_is_lower_bound(self, zipf_data):
        data, truth = zipf_data
        ss = SpaceSaving(k=100)
        ss.update_many(data)
        for item, __ in ss.top(100):
            assert ss.guaranteed_count(item) <= truth[item]

    def test_topk_matches_truth_on_skewed_stream(self, zipf_data):
        data, truth = zipf_data
        ss = SpaceSaving(k=200)
        ss.update_many(data)
        est_top = [item for item, __ in ss.top(10)]
        true_top = [item for item, __ in truth.most_common(10)]
        assert len(set(est_top) & set(true_top)) >= 8

    def test_space_bound(self, zipf_data):
        data, __ = zipf_data
        ss = SpaceSaving(k=64)
        ss.update_many(data)
        assert len(ss) <= 64

    def test_weighted_updates(self):
        ss = SpaceSaving(k=4)
        ss.update_weighted("a", 10)
        ss.update_weighted("b", 5)
        assert ss.estimate("a") == 10
        assert ss.count == 15

    def test_merge_no_undercount(self, zipf_data):
        data, truth = zipf_data
        half = len(data) // 2
        a, b = SpaceSaving(k=150), SpaceSaving(k=150)
        a.update_many(data[:half])
        b.update_many(data[half:])
        a.merge(b)
        for item, __ in truth.most_common(5):
            assert a.estimate(item) >= truth[item]
        assert len(a) <= 150

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=400))
    def test_property_estimate_bounds(self, items):
        truth = collections.Counter(items)
        ss = SpaceSaving(k=8)
        ss.update_many(items)
        for item in truth:
            est = ss.estimate(item)
            if est:
                assert truth[item] <= est <= truth[item] + len(items)
