"""Tests for Count-Min / Count-Sketch and the structured heavy-hitter tools."""

import collections

import numpy as np
import pytest

from repro.common.exceptions import MergeError, ParameterError
from repro.frequency import (
    CountMinSketch,
    CountSketch,
    HierarchicalHeavyHitters,
    WindowedTopK,
)
from repro.workloads import zipf_stream


@pytest.fixture(scope="module")
def zipf_data():
    data = list(zipf_stream(30_000, universe=3_000, skew=1.1, seed=21))
    return data, collections.Counter(data)


class TestCountMin:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            CountMinSketch(0, 4)
        with pytest.raises(ParameterError):
            CountMinSketch.from_error(epsilon=0.0)
        with pytest.raises(ParameterError):
            CountMinSketch(16, 2).update_weighted("x", -1)

    def test_never_undercounts(self, zipf_data):
        data, truth = zipf_data
        cms = CountMinSketch.from_error(epsilon=0.001, delta=0.01, seed=0)
        cms.update_many(data)
        for item, cnt in truth.most_common(100):
            assert cms.estimate(item) >= cnt

    def test_error_within_bound(self, zipf_data):
        data, truth = zipf_data
        cms = CountMinSketch.from_error(epsilon=0.001, delta=0.01, seed=1)
        cms.update_many(data)
        bound = cms.error_bound()
        violations = sum(
            1 for item, cnt in truth.items() if cms.estimate(item) - cnt > bound
        )
        assert violations <= len(truth) * 0.02

    def test_conservative_update_strictly_better(self, zipf_data):
        data, truth = zipf_data
        plain = CountMinSketch(width=272, depth=4, seed=2)
        cons = CountMinSketch(width=272, depth=4, seed=2, conservative=True)
        plain.update_many(data)
        cons.update_many(data)
        plain_err = sum(plain.estimate(i) - c for i, c in truth.items())
        cons_err = sum(cons.estimate(i) - c for i, c in truth.items())
        assert cons_err <= plain_err
        # Conservative never undercounts either.
        assert all(cons.estimate(i) >= c for i, c in truth.most_common(50))

    def test_weighted_updates(self):
        cms = CountMinSketch(128, 4, seed=3)
        cms.update_weighted("a", 7)
        cms.update_weighted("a", 3)
        assert cms.estimate("a") >= 10

    def test_inner_product_upper_bounds_join_size(self):
        a = CountMinSketch(256, 4, seed=4)
        b = CountMinSketch(256, 4, seed=4)
        a.update_many(["x"] * 10 + ["y"] * 5)
        b.update_many(["x"] * 3 + ["z"] * 8)
        true_join = 10 * 3
        est = a.inner_product(b)
        assert est >= true_join
        assert est <= true_join + 200

    def test_merge_is_additive(self, zipf_data):
        data, truth = zipf_data
        half = len(data) // 2
        a = CountMinSketch(512, 4, seed=5)
        b = CountMinSketch(512, 4, seed=5)
        single = CountMinSketch(512, 4, seed=5)
        a.update_many(data[:half])
        b.update_many(data[half:])
        single.update_many(data)
        a.merge(b)
        top = truth.most_common(1)[0][0]
        assert a.estimate(top) == single.estimate(top)

    def test_merge_requires_same_shape(self):
        with pytest.raises(MergeError):
            CountMinSketch(128, 4).merge(CountMinSketch(256, 4))

    def test_serialization_roundtrip(self):
        cms = CountMinSketch(64, 3, seed=6, conservative=True)
        cms.update_many(["a", "b", "a"])
        clone = CountMinSketch.from_bytes(cms.to_bytes())
        assert clone.estimate("a") == cms.estimate("a")
        assert clone.conservative and clone.count == 3


class TestCountSketch:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            CountSketch(0, 3)
        with pytest.raises(ParameterError):
            CountSketch(8, 1).update_weighted("x", 0)

    def test_roughly_unbiased(self, zipf_data):
        data, truth = zipf_data
        cs = CountSketch(width=1024, depth=5, seed=0)
        cs.update_many(data)
        errors = [cs.estimate(i) - c for i, c in truth.most_common(200)]
        assert abs(float(np.mean(errors))) < 12.0  # centred near zero

    def test_turnstile_deletions(self):
        cs = CountSketch(width=256, depth=5, seed=1)
        cs.update_weighted("x", 10)
        cs.update_weighted("x", -4)
        assert abs(cs.estimate("x") - 6) <= 2

    def test_second_moment_estimate(self):
        cs = CountSketch(width=2048, depth=5, seed=2)
        freqs = {f"i{j}": j + 1 for j in range(100)}
        for item, f in freqs.items():
            cs.update_weighted(item, f)
        true_f2 = sum(f * f for f in freqs.values())
        assert abs(cs.second_moment() - true_f2) / true_f2 < 0.15

    def test_merge_additive(self):
        a = CountSketch(256, 5, seed=3)
        b = CountSketch(256, 5, seed=3)
        a.update_weighted("k", 50)
        b.update_weighted("k", 30)
        a.merge(b)
        assert abs(a.estimate("k") - 80) <= 4


class TestHierarchicalHH:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            HierarchicalHeavyHitters(0)
        hhh = HierarchicalHeavyHitters(levels=2)
        with pytest.raises(ParameterError):
            hhh.update(("only-one",))

    def test_parent_aggregates_children(self):
        hhh = HierarchicalHeavyHitters(levels=2, k=64)
        for i in range(50):
            hhh.update(("us", f"city{i % 5}"))
        assert hhh.estimate(("us",)) == 50
        assert hhh.estimate(("us", "city0")) == 10

    def test_hhh_discounts_descendants(self):
        hhh = HierarchicalHeavyHitters(levels=2, k=64)
        # one dominant leaf + diffuse siblings under the same parent
        for __ in range(400):
            hhh.update(("net", "hot"))
        for i in range(600):
            hhh.update(("net", f"cold{i}"))
        result = hhh.hierarchical_heavy_hitters(threshold=0.3)
        assert ("net", "hot") in result
        # Parent's discounted count is 1000 - 400 = 600 >= 300 -> reported too
        assert ("net",) in result
        assert result[("net",)] <= 650

    def test_merge(self):
        a = HierarchicalHeavyHitters(levels=2, k=32)
        b = HierarchicalHeavyHitters(levels=2, k=32)
        for __ in range(10):
            a.update(("x", "1"))
            b.update(("x", "2"))
        a.merge(b)
        assert a.estimate(("x",)) == 20


class TestWindowedTopK:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            WindowedTopK(0)
        with pytest.raises(ParameterError):
            WindowedTopK(10, n_blocks=100)

    def test_reflects_only_recent_trend(self):
        wtk = WindowedTopK(window=2_000, k=64, n_blocks=8)
        for __ in range(5_000):
            wtk.update("#old")
        for __ in range(2_500):
            wtk.update("#new")
        top = [item for item, __ in wtk.top(1)]
        assert top == ["#new"]

    def test_covered_tracks_window(self):
        wtk = WindowedTopK(window=1_000, k=16, n_blocks=10)
        for i in range(10_000):
            wtk.update(i % 7)
        assert 900 <= wtk.covered <= 1_300

    def test_estimate_windowed(self):
        wtk = WindowedTopK(window=100, k=16, n_blocks=4)
        for i in range(1_000):
            wtk.update("always")
        assert wtk.estimate("always") <= 150  # only window-ish many counted
