"""Tests for inversion counting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng, make_rng
from repro.inversions import (
    FenwickTree,
    InversionEstimator,
    count_inversions_bit,
    count_inversions_mergesort,
)


def brute_force(values):
    n = len(values)
    return sum(
        1 for i in range(n) for j in range(i + 1, n) if values[i] > values[j]
    )


class TestExactCounters:
    @pytest.mark.parametrize(
        "values,expected",
        [
            ([], 0),
            ([1], 0),
            ([1, 2, 3], 0),
            ([3, 2, 1], 3),
            ([2, 1, 3], 1),
            ([1, 1, 1], 0),  # ties are not inversions
        ],
    )
    def test_known_cases(self, values, expected):
        assert count_inversions_mergesort(values) == expected
        assert count_inversions_bit(values) == expected

    @settings(max_examples=50)
    @given(st.lists(st.integers(-50, 50), max_size=60))
    def test_property_both_match_brute_force(self, values):
        expected = brute_force(values)
        assert count_inversions_mergesort(values) == expected
        assert count_inversions_bit(values) == expected

    def test_reverse_sorted_maximum(self):
        n = 200
        values = list(range(n, 0, -1))
        assert count_inversions_bit(values) == n * (n - 1) // 2


class TestFenwick:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            FenwickTree(0)
        t = FenwickTree(4)
        with pytest.raises(ParameterError):
            t.add(4)

    def test_prefix_sums(self):
        t = FenwickTree(8)
        for i in range(8):
            t.add(i, i)
        assert t.prefix_sum(3) == 0 + 1 + 2 + 3
        assert t.total() == sum(range(8))
        assert t.prefix_sum(-1) == 0


class TestInversionEstimator:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            InversionEstimator(k=0)

    def test_sorted_stream_near_zero(self):
        est = InversionEstimator(k=300, seed=0)
        est.update_many(range(2_000))
        assert est.inverted_fraction() < 0.02
        assert est.sortedness() > 0.98

    def test_reverse_sorted_near_max(self):
        est = InversionEstimator(k=300, seed=1)
        est.update_many(range(2_000, 0, -1))
        assert est.inverted_fraction() > 0.98

    def test_random_stream_near_half(self):
        est = InversionEstimator(k=500, seed=2)
        est.update_many(make_np_rng(61).normal(size=3_000))
        assert 0.4 < est.inverted_fraction() < 0.6

    def test_estimate_matches_exact_roughly(self):
        rng = make_rng(62)
        values = [rng.random() for __ in range(800)]
        # Make it 90% sorted with some shuffled tail.
        values = sorted(values[:700]) + values[700:]
        est = InversionEstimator(k=800, seed=3)
        est.update_many(values)
        exact = count_inversions_bit(values)
        assert abs(est.estimate() - exact) / max(exact, 1) < 0.6

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            InversionEstimator().merge(InversionEstimator())
