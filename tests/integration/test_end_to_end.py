"""Cross-module integration: the same workload through every system layer.

The strongest correctness check available to the reproduction: the
Pipeline (topology executor), the streaming SQL engine, the Lambda
Architecture and the Samza-style logged pipeline must all agree with each
other — and with exact ground truth — on one shared click workload.
"""

import collections

import pytest

from repro.core import Pipeline, StreamSummary
from repro.cardinality import HyperLogLog
from repro.frequency import SpaceSaving
from repro.lambda_arch import CountView, LambdaArchitecture
from repro.platform import FaultInjector, InMemoryLog
from repro.platform.samza import LoggedTask, SamzaPipeline
from repro.platform.sql import query
from repro.workloads import click_stream


@pytest.fixture(scope="module")
def clicks():
    return list(click_stream(5_000, unique_visitors=400, pages=30, seed=777))


@pytest.fixture(scope="module")
def truth(clicks):
    return collections.Counter(e.page for e in clicks)


def _final_counts(updates):
    final = {}
    for key, count in updates:
        final[key] = max(final.get(key, 0), count)
    return final


class TestAllLayersAgree:
    def test_pipeline_equals_truth(self, clicks, truth):
        updates = (
            Pipeline.from_list([(e.page,) for e in clicks]).key_by(0).count().run()
        )
        assert _final_counts(updates) == dict(truth)

    def test_sql_equals_truth(self, clicks, truth):
        rows = query(
            "SELECT page, COUNT(*) FROM stream GROUP BY page",
            [{"page": e.page} for e in clicks],
        )
        assert {r["page"]: r["COUNT(*)"] for r in rows} == dict(truth)

    def test_lambda_equals_truth(self, clicks, truth):
        la = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
        la.ingest_many(clicks[:3_000])
        la.run_batch()
        la.ingest_many(clicks[3_000:])
        assert {page: la.query(page) for page in truth} == dict(truth)

    def test_samza_equals_truth(self, clicks, truth):
        class CountTask(LoggedTask):
            def __init__(self):
                self.counts = collections.Counter()

            def process(self, record):
                self.counts[record] += 1
                return []

            def snapshot(self):
                return dict(self.counts)

            def restore(self, state):
                self.counts = collections.Counter(state or {})

        source = InMemoryLog()
        source.append_many(e.page for e in clicks)
        pipeline = SamzaPipeline()
        task = CountTask()
        stage = pipeline.add_stage("count", task, source, commit_interval=500)
        stage.run(max_records=1_234)
        stage.crash()  # mid-run failure must not change the final answer
        pipeline.run_until_quiescent()
        assert task.counts == truth

    def test_faulty_exactly_once_pipeline_equals_truth(self, clicks, truth):
        updates = (
            Pipeline.from_list([(e.page,) for e in clicks])
            .key_by(0)
            .count()
            .run(
                semantics="exactly_once",
                faults=FaultInjector(drop_probability=0.001, crash_after=2_000, seed=3),
                checkpoint_interval=400,
            )
        )
        assert _final_counts(updates) == dict(truth)


class TestSketchesAcrossLayers:
    def test_stream_summary_matches_sql_approximations(self, clicks):
        """StreamSummary and the SQL engine use the same sketches under the
        hood; given the same seed they must return identical estimates."""
        summary = StreamSummary(
            uniques=HyperLogLog(precision=12, seed=0),
            extractors={"uniques": lambda e: e.user_id},
        )
        summary.update_many(clicks)

        rows = query(
            "SELECT APPROX_DISTINCT(user) FROM stream",
            [{"user": e.user_id} for e in clicks],
            seed=0,
        )
        assert rows[0]["APPROX_DISTINCT(user)"] == round(summary["uniques"].estimate())

    def test_partitioned_summaries_equal_global(self, clicks):
        def make():
            return StreamSummary(
                uniques=HyperLogLog(precision=12, seed=1),
                topk=SpaceSaving(32),
                extractors={"uniques": lambda e: e.user_id, "topk": lambda e: e.page},
            )

        partitions = [make() for __ in range(4)]
        for i, event in enumerate(clicks):
            partitions[i % 4].update(event)
        merged = partitions[0]
        for part in partitions[1:]:
            merged.merge(part)

        single = make()
        single.update_many(clicks)
        # HLL merge is lossless -> identical estimates.
        assert merged["uniques"].estimate() == single["uniques"].estimate()
        # SpaceSaving merge keeps the true top pages.
        top_merged = {p for p, __ in merged["topk"].top(5)}
        top_single = {p for p, __ in single["topk"].top(5)}
        assert len(top_merged & top_single) >= 4
