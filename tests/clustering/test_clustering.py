"""Tests for stream clustering algorithms."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.clustering import CluStream, OnlineKMeans, StreamingKMedian, weighted_kmeans


def gaussian_mixture(n, centres, std=0.5, seed=0):
    rng = make_np_rng(seed)
    centres = np.asarray(centres, dtype=np.float64)
    assign = rng.integers(0, len(centres), size=n)
    return centres[assign] + rng.normal(0, std, size=(n, centres.shape[1])), assign


def centre_recovery_error(found, truth):
    """Mean distance from each true centre to its nearest found centre."""
    truth = np.asarray(truth, dtype=np.float64)
    d = np.sqrt(((truth[:, None, :] - found[None, :, :]) ** 2).sum(axis=2))
    return float(d.min(axis=1).mean())


TRUE_CENTRES = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]]


class TestWeightedKMeans:
    def test_validation(self):
        with pytest.raises(ParameterError):
            weighted_kmeans(np.zeros((0, 2)), np.zeros(0), 2)
        with pytest.raises(ParameterError):
            weighted_kmeans(np.zeros((3, 2)), np.ones(3), 0)

    def test_recovers_separated_clusters(self):
        pts, __ = gaussian_mixture(2_000, TRUE_CENTRES, seed=1)
        centres, weights = weighted_kmeans(pts, np.ones(len(pts)), 4, seed=2)
        assert centre_recovery_error(centres, TRUE_CENTRES) < 1.0
        assert weights.sum() == pytest.approx(2_000)

    def test_weights_drive_centres(self):
        pts = np.array([[0.0], [100.0]])
        centres, __ = weighted_kmeans(pts, np.array([1000.0, 1.0]), 1, seed=0)
        assert centres[0][0] < 5.0


class TestOnlineKMeans:
    def test_validation(self):
        with pytest.raises(ParameterError):
            OnlineKMeans(0, 2)
        km = OnlineKMeans(2, 2)
        with pytest.raises(ParameterError):
            km.update([1.0, 2.0, 3.0])

    def test_recovers_clusters(self):
        pts, __ = gaussian_mixture(5_000, TRUE_CENTRES, seed=3)
        km = OnlineKMeans(4, 2, seed=0)
        km.update_many(pts)
        assert centre_recovery_error(km.centres, TRUE_CENTRES) < 1.5

    def test_assign_consistent(self):
        km = OnlineKMeans(2, 1, seed=0)
        km.update_many([[0.0], [10.0], [0.1], [9.9]] * 50)
        assert km.assign([0.05]) != km.assign([9.95])

    def test_merge_preserves_structure(self):
        pts, __ = gaussian_mixture(4_000, TRUE_CENTRES, seed=4)
        a, b = OnlineKMeans(4, 2, seed=1), OnlineKMeans(4, 2, seed=2)
        a.update_many(pts[:2_000])
        b.update_many(pts[2_000:])
        a.merge(b)
        assert centre_recovery_error(a.centres[:4], TRUE_CENTRES) < 2.0


class TestStreamingKMedian:
    def test_validation(self):
        with pytest.raises(ParameterError):
            StreamingKMedian(4, 2, buffer_size=4)

    def test_recovers_clusters_with_bounded_memory(self):
        pts, __ = gaussian_mixture(8_000, TRUE_CENTRES, seed=5)
        km = StreamingKMedian(4, 2, buffer_size=400, seed=0)
        km.update_many(pts)
        assert centre_recovery_error(km.centres(), TRUE_CENTRES) < 1.0
        assert km.memory_points < 1_200  # far below 8000 points

    def test_cost_reasonable(self):
        pts, __ = gaussian_mixture(3_000, TRUE_CENTRES, std=0.3, seed=6)
        km = StreamingKMedian(4, 2, buffer_size=300, seed=1)
        km.update_many(pts)
        # Average distance to centre should be close to E|N(0,0.3^2 I_2)| ~ 0.38
        assert km.cost(pts) / len(pts) < 0.8

    def test_empty_query_rejected(self):
        with pytest.raises(ParameterError):
            StreamingKMedian(2, 2).centres()

    def test_merge(self):
        pts, __ = gaussian_mixture(4_000, TRUE_CENTRES, seed=7)
        a = StreamingKMedian(4, 2, buffer_size=300, seed=2)
        b = StreamingKMedian(4, 2, buffer_size=300, seed=3)
        a.update_many(pts[:2_000])
        b.update_many(pts[2_000:])
        a.merge(b)
        assert centre_recovery_error(a.centres(), TRUE_CENTRES) < 1.5


class TestCluStream:
    def test_validation(self):
        with pytest.raises(ParameterError):
            CluStream(dims=0)
        with pytest.raises(ParameterError):
            CluStream(dims=2, max_micro_clusters=1)

    def test_micro_cluster_budget_respected(self):
        pts, __ = gaussian_mixture(5_000, TRUE_CENTRES, seed=8)
        cs = CluStream(dims=2, max_micro_clusters=30, seed=0)
        cs.update_many(pts)
        assert cs.n_micro_clusters <= 30

    def test_macro_clusters_recover_structure(self):
        pts, __ = gaussian_mixture(5_000, TRUE_CENTRES, seed=9)
        cs = CluStream(dims=2, max_micro_clusters=40, seed=1)
        cs.update_many(pts)
        macro = cs.macro_clusters(4)
        assert centre_recovery_error(macro, TRUE_CENTRES) < 1.5

    def test_merge_additive(self):
        pts, __ = gaussian_mixture(2_000, TRUE_CENTRES, seed=10)
        a = CluStream(dims=2, max_micro_clusters=30, seed=2)
        b = CluStream(dims=2, max_micro_clusters=30, seed=3)
        a.update_many(pts[:1_000])
        b.update_many(pts[1_000:])
        a.merge(b)
        assert a.count == 2_000
        assert a.n_micro_clusters <= 30

    def test_empty_queries_rejected(self):
        cs = CluStream(dims=2)
        with pytest.raises(ParameterError):
            cs.micro_centroids()
