"""Tests for the partitioned Bloom filter."""

import pytest

from repro.common.exceptions import ParameterError
from repro.filtering import BloomFilter, PartitionedBloomFilter


class TestPartitionedBloom:
    def test_validation(self):
        with pytest.raises(ParameterError):
            PartitionedBloomFilter(0, 4)
        with pytest.raises(ParameterError):
            PartitionedBloomFilter.for_capacity(0)

    def test_no_false_negatives(self):
        pbf = PartitionedBloomFilter.for_capacity(2_000, 0.01, seed=0)
        items = [f"k{i}" for i in range(2_000)]
        pbf.update_many(items)
        assert all(item in pbf for item in items)

    def test_fp_rate_near_target(self):
        pbf = PartitionedBloomFilter.for_capacity(2_000, 0.01, seed=1)
        pbf.update_many(f"in{i}" for i in range(2_000))
        fps = sum(1 for i in range(20_000) if f"out{i}" in pbf)
        assert fps / 20_000 < 0.03

    def test_fp_estimate_close_to_measured(self):
        pbf = PartitionedBloomFilter.for_capacity(1_000, 0.02, seed=2)
        pbf.update_many(f"v{i}" for i in range(1_000))
        measured = sum(1 for i in range(20_000) if f"w{i}" in pbf) / 20_000
        assert abs(pbf.false_positive_rate() - measured) < 0.02

    def test_comparable_to_classic_bloom(self):
        keys = [f"key{i}" for i in range(3_000)]
        classic = BloomFilter.for_capacity(3_000, 0.01, seed=3)
        part = PartitionedBloomFilter.for_capacity(3_000, 0.01, seed=3)
        classic.update_many(keys)
        part.update_many(keys)
        fp_classic = sum(1 for i in range(20_000) if f"a{i}" in classic) / 20_000
        fp_part = sum(1 for i in range(20_000) if f"a{i}" in part) / 20_000
        assert abs(fp_classic - fp_part) < 0.02

    def test_merge(self):
        a = PartitionedBloomFilter.for_capacity(500, 0.01, seed=4)
        b = PartitionedBloomFilter.for_capacity(500, 0.01, seed=4)
        a.update("left")
        b.update("right")
        a.merge(b)
        assert "left" in a and "right" in a
