"""Tests for counting Bloom, cuckoo and stable Bloom filters."""

import pytest

from repro.common.exceptions import CapacityError, ParameterError
from repro.filtering import CountingBloomFilter, CuckooFilter, StableBloomFilter


class TestCountingBloom:
    def test_insert_then_remove(self):
        cbf = CountingBloomFilter.for_capacity(500, 0.01, seed=0)
        cbf.update_many(f"k{i}" for i in range(100))
        assert "k5" in cbf
        cbf.remove("k5")
        # Absence is not guaranteed after removal (collisions), but with a
        # tiny load this filter should drop it.
        assert "k5" not in cbf
        assert all(f"k{i}" in cbf for i in range(100) if i != 5)

    def test_remove_absent_rejected(self):
        cbf = CountingBloomFilter.for_capacity(100, 0.01, seed=1)
        cbf.update("present")
        with pytest.raises(ParameterError):
            cbf.remove("definitely-not-here")

    def test_duplicate_inserts_need_matched_removes(self):
        cbf = CountingBloomFilter.for_capacity(100, 0.01, seed=2)
        cbf.update("dup")
        cbf.update("dup")
        cbf.remove("dup")
        assert "dup" in cbf
        cbf.remove("dup")
        assert "dup" not in cbf

    def test_merge_adds_counters(self):
        a = CountingBloomFilter.for_capacity(200, 0.01, seed=3)
        b = CountingBloomFilter.for_capacity(200, 0.01, seed=3)
        a.update("x")
        b.update("x")
        a.merge(b)
        a.remove("x")
        assert "x" in a  # one occurrence remains
        a.remove("x")
        assert "x" not in a

    def test_counters_saturate_without_overflow(self):
        cbf = CountingBloomFilter(8, 1, seed=4)
        for __ in range(300):
            cbf.update("hot")
        assert "hot" in cbf  # would have overflowed a naive uint8 at 256


class TestCuckooFilter:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            CuckooFilter(buckets=100)  # not a power of two
        with pytest.raises(ParameterError):
            CuckooFilter(buckets=16, fingerprint_bits=0)

    def test_no_false_negatives(self):
        cf = CuckooFilter.for_capacity(1000, seed=0)
        items = [f"key{i}" for i in range(1000)]
        cf.update_many(items)
        assert all(item in cf for item in items)

    def test_low_false_positive_rate(self):
        cf = CuckooFilter.for_capacity(2000, seed=1)
        cf.update_many(f"in{i}" for i in range(2000))
        fps = sum(1 for i in range(20_000) if f"out{i}" in cf)
        # 12-bit fingerprints, bucket size 4: fp ~ 8/4096 ~ 0.002
        assert fps / 20_000 < 0.01

    def test_delete_restores_absence(self):
        cf = CuckooFilter.for_capacity(100, seed=2)
        cf.update("gone-soon")
        assert "gone-soon" in cf
        assert cf.remove("gone-soon")
        assert "gone-soon" not in cf
        assert not cf.remove("never-inserted")

    def test_capacity_error_when_overfilled(self):
        cf = CuckooFilter(buckets=8, bucket_size=2, seed=3)
        with pytest.raises(CapacityError):
            for i in range(100):
                cf.update(f"x{i}")

    def test_load_factor_tracks_count(self):
        cf = CuckooFilter.for_capacity(1000, seed=4)
        cf.update_many(range(500))
        assert 0 < cf.load_factor < 0.95
        assert len(cf) == 500

    def test_merge_unions_membership(self):
        a = CuckooFilter.for_capacity(500, seed=5)
        b = CuckooFilter.for_capacity(500, seed=5)
        a.update_many(f"a{i}" for i in range(100))
        b.update_many(f"b{i}" for i in range(100))
        a.merge(b)
        assert all(f"a{i}" in a for i in range(100))
        assert all(f"b{i}" in a for i in range(100))


class TestStableBloom:
    def test_parameter_validation(self):
        for kwargs in ({"m": 0}, {"m": 10, "k": 0}, {"m": 10, "p": 0}, {"m": 10, "max_value": 0}):
            with pytest.raises(ParameterError):
                StableBloomFilter(**kwargs)

    def test_recent_items_found(self):
        sbf = StableBloomFilter(m=10_000, seed=0)
        for i in range(1000):
            sbf.update(f"e{i}")
        recent = [f"e{i}" for i in range(990, 1000)]
        assert all(x in sbf for x in recent)

    def test_old_items_decay(self):
        sbf = StableBloomFilter(m=2_000, k=3, p=30, max_value=2, seed=1)
        sbf.update("ancient")
        for i in range(20_000):
            sbf.update(f"noise{i}")
        assert "ancient" not in sbf

    def test_fill_ratio_stabilises_below_one(self):
        sbf = StableBloomFilter(m=5_000, k=4, p=20, max_value=3, seed=2)
        for i in range(30_000):
            sbf.update(f"x{i}")
        assert sbf.fill_ratio < 0.95

    def test_merge_takes_max(self):
        a = StableBloomFilter(m=1000, seed=3)
        b = StableBloomFilter(m=1000, seed=3)
        a.update("left")
        b.update("right")
        a.merge(b)
        assert "left" in a and "right" in a
