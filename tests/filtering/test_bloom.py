"""Tests for the plain and scalable Bloom filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import MergeError, ParameterError
from repro.filtering import BloomFilter, ScalableBloomFilter


class TestBloomFilter:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            BloomFilter(0, 1)
        with pytest.raises(ParameterError):
            BloomFilter(10, 0)
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ParameterError):
            BloomFilter.for_capacity(10, fp_rate=1.5)

    def test_no_false_negatives(self):
        bf = BloomFilter.for_capacity(1000, 0.01, seed=0)
        items = [f"key{i}" for i in range(1000)]
        bf.update_many(items)
        assert all(item in bf for item in items)

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter.for_capacity(2000, 0.01, seed=1)
        bf.update_many(f"in{i}" for i in range(2000))
        fps = sum(1 for i in range(20_000) if f"out{i}" in bf)
        assert fps / 20_000 < 0.03  # target 0.01, generous ceiling

    def test_optimal_sizing_formula(self):
        bf = BloomFilter.for_capacity(1000, 0.01)
        assert 9000 < bf.m < 10_000  # ~9.59 bits/key
        assert 6 <= bf.k <= 8  # ~6.64

    def test_estimated_cardinality(self):
        bf = BloomFilter.for_capacity(5000, 0.01, seed=2)
        bf.update_many(f"v{i}" for i in range(3000))
        est = bf.estimated_cardinality()
        assert abs(est - 3000) / 3000 < 0.05

    def test_false_positive_rate_estimate_monotone(self):
        bf = BloomFilter.for_capacity(100, 0.01, seed=3)
        empty_rate = bf.false_positive_rate()
        bf.update_many(range(100))
        assert bf.false_positive_rate() > empty_rate

    def test_merge_is_union(self):
        a = BloomFilter.for_capacity(500, 0.01, seed=7)
        b = BloomFilter.for_capacity(500, 0.01, seed=7)
        a.update_many(f"a{i}" for i in range(200))
        b.update_many(f"b{i}" for i in range(200))
        a.merge(b)
        assert all(f"a{i}" in a for i in range(200))
        assert all(f"b{i}" in a for i in range(200))

    def test_merge_requires_same_seed(self):
        a = BloomFilter.for_capacity(100, 0.01, seed=1)
        b = BloomFilter.for_capacity(100, 0.01, seed=2)
        with pytest.raises(MergeError):
            a.merge(b)

    def test_intersect_upper_bounds(self):
        a = BloomFilter.for_capacity(500, 0.001, seed=5)
        b = BloomFilter.for_capacity(500, 0.001, seed=5)
        both = [f"both{i}" for i in range(100)]
        a.update_many(both)
        b.update_many(both)
        a.update_many(f"onlya{i}" for i in range(100))
        b.update_many(f"onlyb{i}" for i in range(100))
        inter = a.intersect(b)
        assert all(x in inter for x in both)

    def test_serialization_roundtrip(self):
        bf = BloomFilter.for_capacity(300, 0.01, seed=9)
        bf.update_many(f"k{i}" for i in range(300))
        clone = BloomFilter.from_bytes(bf.to_bytes())
        assert clone.m == bf.m and clone.k == bf.k and clone.count == bf.count
        assert all(f"k{i}" in clone for i in range(300))

    def test_size_bytes_tracks_m(self):
        small = BloomFilter(1000, 3)
        big = BloomFilter(100_000, 3)
        assert big.size_bytes() > small.size_bytes()

    @settings(max_examples=25)
    @given(st.lists(st.text(min_size=1), max_size=50))
    def test_property_inserted_always_found(self, items):
        bf = BloomFilter.for_capacity(max(len(items), 1) * 2 + 1, 0.01, seed=0)
        bf.update_many(items)
        assert all(item in bf for item in items)


class TestScalableBloomFilter:
    def test_parameter_validation(self):
        for kwargs in (
            {"initial_capacity": 0},
            {"fp_rate": 0.0},
            {"growth": 1},
            {"tightening": 1.0},
        ):
            with pytest.raises(ParameterError):
                ScalableBloomFilter(**kwargs)

    def test_grows_past_initial_capacity(self):
        sbf = ScalableBloomFilter(initial_capacity=100, seed=0)
        sbf.update_many(f"x{i}" for i in range(1000))
        assert sbf.n_slices >= 3
        assert all(f"x{i}" in sbf for i in range(1000))

    def test_fp_rate_stays_bounded_after_growth(self):
        sbf = ScalableBloomFilter(initial_capacity=200, fp_rate=0.01, seed=1)
        sbf.update_many(f"in{i}" for i in range(5000))
        fps = sum(1 for i in range(20_000) if f"out{i}" in sbf)
        assert fps / 20_000 < sbf.expected_fp_bound() * 2

    def test_merge(self):
        a = ScalableBloomFilter(initial_capacity=100, seed=3)
        b = ScalableBloomFilter(initial_capacity=100, seed=3)
        a.update_many(f"a{i}" for i in range(500))
        b.update_many(f"b{i}" for i in range(150))
        a.merge(b)
        assert all(f"a{i}" in a for i in range(500))
        assert all(f"b{i}" in a for i in range(150))
        assert a.count == 650
