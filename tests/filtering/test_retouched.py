"""Tests for the retouched Bloom filter."""

import pytest

from repro.common.exceptions import ParameterError
from repro.filtering import RetouchedBloomFilter


def _filter_with_fps(n=2_000, fp_rate=0.05, seed=0):
    rbf = RetouchedBloomFilter.for_capacity(n, fp_rate, seed=seed)
    inserted = [f"in{i}" for i in range(n)]
    rbf.update_many(inserted)
    false_positives = [f"out{i}" for i in range(20_000) if f"out{i}" in rbf]
    return rbf, inserted, false_positives


class TestRetouchedBloom:
    def test_removal_clears_the_false_positive(self):
        rbf, __, fps = _filter_with_fps()
        assert fps, "need at least one false positive to retouch"
        target = fps[0]
        assert rbf.remove_false_positive(target)
        assert target not in rbf
        assert rbf.bits_cleared == 1

    def test_removing_a_negative_is_a_noop(self):
        rbf, __, __f = _filter_with_fps()
        assert not rbf.remove_false_positive("definitely-absent-zzz")
        assert rbf.bits_cleared == 0

    def test_bulk_removal(self):
        rbf, __, fps = _filter_with_fps()
        cleared = rbf.remove_false_positives(fps[:20])
        assert cleared == 20
        assert all(fp not in rbf for fp in fps[:20])

    def test_false_negatives_are_the_price(self):
        """Clearing bits must introduce measurable false negatives — the
        trade the paper's citation is about. A realistic retouch (a few
        hundred troublesome keys) damages only a small fraction of the
        inserted set."""
        rbf, inserted, fps = _filter_with_fps(fp_rate=0.1, seed=1)
        rbf.remove_false_positives(fps[:300])
        fnr = rbf.false_negative_rate(inserted)
        assert 0.0 < fnr < 0.3

    def test_false_negative_rate_needs_sample(self):
        rbf, __, __f = _filter_with_fps()
        with pytest.raises(ParameterError):
            rbf.false_negative_rate([])

    def test_untouched_filter_has_no_false_negatives(self):
        rbf, inserted, __ = _filter_with_fps()
        assert rbf.false_negative_rate(inserted) == 0.0
