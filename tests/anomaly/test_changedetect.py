"""Tests for distribution change detection."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.anomaly import PageHinkley, WindowKLDetector


class TestPageHinkley:
    def test_validation(self):
        with pytest.raises(ParameterError):
            PageHinkley(threshold=0)
        with pytest.raises(ParameterError):
            PageHinkley(delta=-1)

    def test_no_change_on_stationary(self):
        rng = make_np_rng(81)
        ph = PageHinkley(delta=0.1, threshold=50.0)
        fired = [ph.update(v) for v in rng.normal(0, 1, size=5_000)]
        assert sum(fired) == 0

    def test_detects_mean_shift(self):
        rng = make_np_rng(82)
        ph = PageHinkley(delta=0.1, threshold=30.0)
        fired = []
        for v in rng.normal(0, 1, size=2_000):
            fired.append(ph.update(v))
        for v in rng.normal(3, 1, size=500):
            fired.append(ph.update(v))
        assert any(fired[2_000:])
        # Detection latency: fires within the shifted segment, not before.
        assert not any(fired[:2_000])

    def test_resets_after_detection(self):
        rng = make_np_rng(83)
        ph = PageHinkley(delta=0.1, threshold=20.0)
        for v in rng.normal(0, 1, size=1_000):
            ph.update(v)
        for v in rng.normal(5, 1, size=200):
            ph.update(v)
        assert len(ph.changes) >= 1
        assert ph.statistic < 20.0  # reset happened

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            PageHinkley().merge(PageHinkley())


class TestWindowKL:
    def test_validation(self):
        with pytest.raises(ParameterError):
            WindowKLDetector(reference=10, bins=16)
        with pytest.raises(ParameterError):
            WindowKLDetector(threshold=0)

    def test_calibration_phase(self):
        det = WindowKLDetector(reference=200, window=100, bins=8)
        rng = make_np_rng(84)
        for v in rng.normal(size=150):
            assert det.update(v) is False
        assert not det.calibrated
        for v in rng.normal(size=50):
            det.update(v)
        assert det.calibrated

    def test_stationary_stream_quiet(self):
        det = WindowKLDetector(reference=1_000, window=500, bins=16, threshold=0.25)
        rng = make_np_rng(85)
        fired = [det.update(v) for v in rng.normal(size=8_000)]
        assert sum(fired) < 8_000 * 0.01

    def test_detects_variance_change(self):
        """A variance change keeps the mean yet reshapes the histogram —
        the distributional detector must catch it promptly."""
        rng = make_np_rng(86)
        det = WindowKLDetector(reference=1_000, window=500, bins=16, threshold=0.25)
        kl_fired = []
        stream = np.concatenate([rng.normal(0, 1, 4_000), rng.normal(0, 4, 1_500)])
        for v in stream:
            kl_fired.append(det.update(v))
        assert not any(kl_fired[:4_000])
        assert sum(kl_fired[4_000:]) > 500  # sustained detection
        assert det.divergence() > 0.25

    def test_detects_mean_shift_too(self):
        rng = make_np_rng(87)
        det = WindowKLDetector(reference=1_000, window=400, bins=16, threshold=0.3)
        fired = []
        for v in rng.normal(0, 1, size=3_000):
            fired.append(det.update(v))
        for v in rng.normal(2.5, 1, size=800):
            fired.append(det.update(v))
        assert any(fired[3_000:])

    def test_divergence_non_negative(self):
        det = WindowKLDetector(reference=500, window=200, bins=8)
        rng = make_np_rng(88)
        for v in rng.normal(size=1_500):
            det.update(v)
        assert det.divergence() >= 0.0
