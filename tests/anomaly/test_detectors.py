"""Tests for streaming anomaly detectors."""

import numpy as np
import pytest

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.anomaly import (
    EWMAControlChart,
    HalfSpaceTrees,
    RollingZScore,
    SlidingMAD,
    SubspaceTracker,
)
from repro.workloads import sensor_stream_with_anomalies


def _precision_recall(flags, truth_indices, n, tolerance=0):
    truth = set(truth_indices)
    flagged = {i for i, f in enumerate(flags) if f}
    tp = sum(1 for t in truth if any(abs(t - f) <= tolerance for f in flagged))
    fp = len(flagged) - sum(1 for f in flagged if any(abs(t - f) <= tolerance for t in truth))
    recall = tp / len(truth) if truth else 1.0
    precision = (len(flagged) - max(fp, 0)) / len(flagged) if flagged else 1.0
    return precision, recall


class TestRollingZScore:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            RollingZScore(window=1)
        with pytest.raises(ParameterError):
            RollingZScore(threshold=0)

    def test_detects_injected_spikes(self):
        annotated = sensor_stream_with_anomalies(5_000, anomaly_rate=0.005, seed=1)
        det = RollingZScore(window=200, threshold=4.0)
        flags = [det.update(v) for v in annotated.values]
        precision, recall = _precision_recall(flags, annotated.anomaly_indices, 5_000)
        assert recall > 0.9
        assert precision > 0.7

    def test_warmup_never_flags(self):
        det = RollingZScore(window=100, warmup=16)
        flags = [det.update(v) for v in [0.0] * 10 + [100.0]]
        assert not any(flags[:10])

    def test_exclude_anomalies_preserves_sensitivity(self):
        det = RollingZScore(window=100, threshold=4.0, exclude_anomalies=True)
        rng = make_np_rng(2)
        for v in rng.normal(size=500):
            det.update(float(v))
        assert det.update(50.0)
        assert det.update(50.0)  # still anomalous: first spike was excluded

    def test_constant_stream_then_jump(self):
        det = RollingZScore(window=50, warmup=5)
        for __ in range(50):
            det.update(1.0)
        assert det.update(2.0)  # infinite z on zero variance


class TestEWMA:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            EWMAControlChart(alpha=0)
        with pytest.raises(ParameterError):
            EWMAControlChart(L=0)

    def test_detects_spikes(self):
        annotated = sensor_stream_with_anomalies(5_000, anomaly_rate=0.004, seed=3)
        det = EWMAControlChart(alpha=0.2, L=4.0)
        flags = [det.update(v) for v in annotated.values]
        __, recall = _precision_recall(flags, annotated.anomaly_indices, 5_000)
        assert recall > 0.85

    def test_adapts_to_slow_drift(self):
        det = EWMAControlChart(alpha=0.1, L=4.0)
        rng = make_np_rng(4)
        flags = []
        for t in range(4_000):
            value = t * 0.01 + rng.normal()  # slow ramp
            flags.append(det.update(value))
        assert sum(flags) < 4_000 * 0.02  # drift mostly tolerated

    def test_control_limits_bracket_ewma(self):
        det = EWMAControlChart(alpha=0.3)
        for v in make_np_rng(5).normal(10, 1, 200):
            det.update(float(v))
        lo, hi = det.control_limits()
        assert lo < det.ewma < hi


class TestSlidingMAD:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SlidingMAD(window=1)

    def test_detects_spikes(self):
        annotated = sensor_stream_with_anomalies(3_000, anomaly_rate=0.005, seed=6)
        det = SlidingMAD(window=150, threshold=4.0)
        flags = [det.update(v) for v in annotated.values]
        precision, recall = _precision_recall(flags, annotated.anomaly_indices, 3_000)
        assert recall > 0.9

    def test_robust_to_outlier_contamination(self):
        """A burst of outliers should not blind the detector (std would)."""
        rng = make_np_rng(7)
        det = SlidingMAD(window=100, threshold=4.0)
        for v in rng.normal(size=300):
            det.update(float(v))
        for __ in range(10):  # contaminate
            det.update(30.0)
        assert det.update(30.0)  # still flagged despite contamination

    def test_median_and_mad_exact(self):
        det = SlidingMAD(window=5, warmup=3)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            det.update(v)
        assert det.median() == 3.0
        assert det.mad() == 1.0


class TestHalfSpaceTrees:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            HalfSpaceTrees(dims=0)
        with pytest.raises(ParameterError):
            HalfSpaceTrees(quantile=0.9)

    def test_scores_separate_dense_from_sparse(self):
        rng = make_np_rng(8)
        det = HalfSpaceTrees(dims=2, n_trees=30, max_depth=7, window=200, seed=0)
        # Normal mass concentrated near (0.3, 0.3).
        for __ in range(1_000):
            det.update(rng.normal(0.3, 0.03, size=2))
        normal_score = det.score(np.array([0.3, 0.3]))
        outlier_score = det.score(np.array([0.9, 0.9]))
        assert outlier_score < normal_score * 0.2

    def test_flags_outliers_after_warmup(self):
        rng = make_np_rng(9)
        det = HalfSpaceTrees(dims=1, n_trees=25, window=150, quantile=0.05, seed=1)
        flags = []
        truth = []
        for t in range(2_000):
            if t > 600 and t % 197 == 0:
                flags.append(det.update([0.95]))
                truth.append(True)
            else:
                flags.append(det.update([rng.normal(0.4, 0.02)]))
                truth.append(False)
        hits = sum(1 for f, t in zip(flags, truth) if f and t)
        total = sum(truth)
        assert hits / total > 0.6

    def test_dimension_check(self):
        det = HalfSpaceTrees(dims=2)
        with pytest.raises(ParameterError):
            det.update([0.1, 0.2, 0.3])


class TestSubspaceTracker:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SubspaceTracker(dims=2, k=3)

    def test_learns_dominant_direction(self):
        rng = make_np_rng(10)
        tracker = SubspaceTracker(dims=3, k=1, learning_rate=0.1, seed=0)
        direction = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        samples = []
        for __ in range(2_000):
            x = direction * rng.normal(0, 5) + rng.normal(0, 0.1, size=3)
            tracker.update(x)
            samples.append(x)
        explained = tracker.explained_fraction(np.array(samples[-500:]))
        assert explained > 0.9

    def test_flags_off_subspace_points(self):
        rng = make_np_rng(11)
        tracker = SubspaceTracker(dims=3, k=1, threshold=5.0, seed=1)
        direction = np.array([1.0, 0.0, 0.0])
        for __ in range(1_000):
            tracker.update(direction * rng.normal(0, 3) + rng.normal(0, 0.05, size=3))
        assert tracker.update(np.array([0.0, 5.0, 5.0]))

    def test_shape_check(self):
        tracker = SubspaceTracker(dims=2)
        with pytest.raises(ParameterError):
            tracker.update(np.zeros(3))
