"""Accuracy tests for the quantile estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.quantiles import (
    Frugal1U,
    Frugal2U,
    GKQuantiles,
    P2Quantile,
    QDigest,
    SlidingWindowQuantiles,
    TDigest,
)


def _rank_error(estimate, data_sorted, q):
    """|rank(estimate) - q*n| / n, the metric epsilon bounds."""
    n = len(data_sorted)
    rank = np.searchsorted(data_sorted, estimate, side="right")
    return abs(rank - q * n) / n


@pytest.fixture(scope="module")
def gaussian_data():
    return make_np_rng(7).normal(100.0, 15.0, size=20_000)


@pytest.fixture(scope="module")
def lognormal_data():
    return make_np_rng(8).lognormal(3.0, 1.0, size=20_000)


class TestGK:
    def test_parameter_validation(self):
        for eps in (0.0, 0.5, -0.1):
            with pytest.raises(ParameterError):
                GKQuantiles(epsilon=eps)

    @pytest.mark.parametrize("q", [0.01, 0.25, 0.5, 0.75, 0.99])
    def test_rank_error_within_epsilon(self, gaussian_data, q):
        gk = GKQuantiles(epsilon=0.01)
        gk.update_many(gaussian_data)
        data_sorted = np.sort(gaussian_data)
        assert _rank_error(gk.quantile(q), data_sorted, q) <= 0.012

    def test_space_sublinear(self, gaussian_data):
        gk = GKQuantiles(epsilon=0.01)
        gk.update_many(gaussian_data)
        assert gk.n_tuples < len(gaussian_data) / 10

    def test_sorted_adversarial_input(self):
        gk = GKQuantiles(epsilon=0.02)
        gk.update_many(range(10_000))
        assert abs(gk.quantile(0.5) - 5_000) < 10_000 * 0.025

    def test_rank_query(self):
        gk = GKQuantiles(epsilon=0.01)
        gk.update_many(range(1000))
        assert abs(gk.rank(500) - 501) < 25

    def test_empty_query_rejected(self):
        with pytest.raises(ParameterError):
            GKQuantiles().quantile(0.5)

    def test_merge_keeps_error_bounded(self, gaussian_data):
        half = len(gaussian_data) // 2
        a, b = GKQuantiles(0.01), GKQuantiles(0.01)
        a.update_many(gaussian_data[:half])
        b.update_many(gaussian_data[half:])
        a.merge(b)
        data_sorted = np.sort(gaussian_data)
        for q in (0.1, 0.5, 0.9):
            assert _rank_error(a.quantile(q), data_sorted, q) <= 0.025  # 2*eps


class TestTDigest:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            TDigest(delta=5)
        with pytest.raises(ParameterError):
            TDigest().update_weighted(1.0, -1.0)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_gaussian_quantiles(self, gaussian_data, q):
        td = TDigest(delta=200)
        td.update_many(gaussian_data)
        data_sorted = np.sort(gaussian_data)
        assert _rank_error(td.quantile(q), data_sorted, q) < 0.01

    def test_tail_accuracy_on_skewed_data(self, lognormal_data):
        td = TDigest(delta=200)
        td.update_many(lognormal_data)
        data_sorted = np.sort(lognormal_data)
        assert _rank_error(td.quantile(0.999), data_sorted, 0.999) < 0.005

    def test_cdf_inverse_of_quantile(self, gaussian_data):
        td = TDigest(delta=200)
        td.update_many(gaussian_data)
        assert abs(td.cdf(td.quantile(0.7)) - 0.7) < 0.02

    def test_centroid_budget_respected(self, gaussian_data):
        td = TDigest(delta=100)
        td.update_many(gaussian_data)
        assert td.n_centroids < 200

    def test_merge_accuracy(self, gaussian_data):
        half = len(gaussian_data) // 2
        a, b = TDigest(delta=200), TDigest(delta=200)
        a.update_many(gaussian_data[:half])
        b.update_many(gaussian_data[half:])
        a.merge(b)
        data_sorted = np.sort(gaussian_data)
        assert _rank_error(a.quantile(0.5), data_sorted, 0.5) < 0.02

    def test_single_value(self):
        td = TDigest()
        td.update(42.0)
        assert td.quantile(0.5) == 42.0

    @settings(max_examples=25)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=300))
    def test_property_quantile_within_range(self, values):
        td = TDigest(delta=50)
        td.update_many(values)
        for q in (0.0, 0.5, 1.0):
            assert min(values) - 1e-9 <= td.quantile(q) <= max(values) + 1e-9


class TestQDigest:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            QDigest(depth=0)
        with pytest.raises(ParameterError):
            QDigest(k=0)
        qd = QDigest(depth=8)
        with pytest.raises(ParameterError):
            qd.update(256)

    def test_uniform_integers(self):
        qd = QDigest(depth=12, k=200)
        rng = make_np_rng(9)
        data = rng.integers(0, 4096, size=20_000)
        qd.update_many(data)
        data_sorted = np.sort(data)
        for q in (0.25, 0.5, 0.9):
            est = qd.quantile(q)
            assert _rank_error(est, data_sorted, q) < 0.1

    def test_space_compressed(self):
        qd = QDigest(depth=16, k=64)
        qd.update_many(make_np_rng(10).integers(0, 65536, size=10_000))
        qd.compress()
        assert qd.n_nodes < 3 * 64 * 16  # O(k log U)

    def test_merge_additive(self):
        a, b = QDigest(depth=10, k=100), QDigest(depth=10, k=100)
        a.update_many([5] * 100)
        b.update_many([900] * 100)
        a.merge(b)
        assert a.count == 200
        assert a.quantile(0.25) <= 64  # low half near 5
        assert a.quantile(0.95) >= 512


class TestFrugal:
    @pytest.mark.parametrize("cls", [Frugal1U, Frugal2U])
    def test_parameter_validation(self, cls):
        with pytest.raises(ParameterError):
            cls(q=0.0)

    @pytest.mark.parametrize("cls", [Frugal1U, Frugal2U])
    def test_converges_to_median_region(self, cls, gaussian_data):
        f = cls(q=0.5, initial=float(gaussian_data[0]), seed=0)
        for __ in range(5):  # several passes to let the walk settle
            f.update_many(gaussian_data)
        assert abs(f.quantile() - 100.0) < 15.0  # within 1 sigma of true median

    def test_frugal_tracks_high_quantile_direction(self, gaussian_data):
        lo = Frugal1U(q=0.1, initial=100.0, seed=1)
        hi = Frugal1U(q=0.9, initial=100.0, seed=1)
        for __ in range(5):
            lo.update_many(gaussian_data)
            hi.update_many(gaussian_data)
        assert lo.quantile() < hi.quantile()

    def test_merge_weighted_average(self):
        a, b = Frugal1U(seed=0), Frugal1U(seed=1)
        a.update_many([10.0] * 100)
        b.update_many([20.0] * 300)
        a.merge(b)
        assert a.count == 400


class TestP2:
    def test_fewer_than_five_observations(self):
        p2 = P2Quantile(q=0.5)
        p2.update_many([3.0, 1.0, 2.0])
        assert p2.quantile() in (1.0, 2.0, 3.0)

    def test_median_accuracy(self, gaussian_data):
        p2 = P2Quantile(q=0.5)
        p2.update_many(gaussian_data)
        assert abs(p2.quantile() - 100.0) < 2.0

    def test_p95_accuracy(self, gaussian_data):
        p2 = P2Quantile(q=0.95)
        p2.update_many(gaussian_data)
        true = float(np.quantile(gaussian_data, 0.95))
        assert abs(p2.quantile() - true) < 3.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            P2Quantile().quantile()

    def test_merge_unsupported(self):
        with pytest.raises(NotImplementedError):
            P2Quantile().merge(P2Quantile())


class TestSlidingWindowQuantiles:
    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SlidingWindowQuantiles(0)
        with pytest.raises(ParameterError):
            SlidingWindowQuantiles(10, n_blocks=20)

    def test_tracks_distribution_shift(self):
        sw = SlidingWindowQuantiles(window=2_000, epsilon=0.01)
        rng = make_np_rng(11)
        sw.update_many(rng.normal(0.0, 1.0, size=10_000))
        sw.update_many(rng.normal(50.0, 1.0, size=4_000))
        # Window now contains only the shifted regime.
        assert sw.quantile(0.5) > 45.0

    def test_covered_stays_near_window(self):
        sw = SlidingWindowQuantiles(window=1_000, epsilon=0.02, n_blocks=10)
        sw.update_many(range(20_000))
        assert 900 <= sw.covered <= 1_200

    def test_median_of_window(self):
        sw = SlidingWindowQuantiles(window=1_000, epsilon=0.01, n_blocks=10)
        sw.update_many(range(5_000))
        median = sw.quantile(0.5)
        assert 4_300 <= median <= 4_700  # true window is [4000, 5000)
