"""Tests for the KLL quantile sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import ParameterError
from repro.common.rng import make_np_rng
from repro.quantiles.kll import KLLSketch


def _rank_error(estimate, data_sorted, q):
    rank = np.searchsorted(data_sorted, estimate, side="right")
    return abs(rank - q * len(data_sorted)) / len(data_sorted)


class TestKLL:
    def test_validation(self):
        with pytest.raises(ParameterError):
            KLLSketch(k=4)
        with pytest.raises(ParameterError):
            KLLSketch().quantile(0.5)
        sketch = KLLSketch()
        sketch.update(1.0)
        with pytest.raises(ParameterError):
            sketch.quantile(1.5)

    def test_exact_when_small(self):
        sketch = KLLSketch(k=200)
        sketch.update_many(range(50))
        assert sketch.quantile(0.0) == 0
        assert sketch.quantile(1.0) == 49

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
    def test_rank_error_within_bound(self, q):
        data = make_np_rng(123).normal(size=50_000)
        sketch = KLLSketch(k=256, seed=0)
        sketch.update_many(data)
        err = _rank_error(sketch.quantile(q), np.sort(data), q)
        assert err < 3 * sketch.error_bound()

    def test_space_sublinear(self):
        sketch = KLLSketch(k=200, seed=1)
        sketch.update_many(make_np_rng(124).normal(size=100_000))
        assert sketch.retained < 2_000

    def test_cdf_inverse(self):
        data = make_np_rng(125).uniform(0, 100, size=20_000)
        sketch = KLLSketch(k=256, seed=2)
        sketch.update_many(data)
        assert abs(sketch.cdf(50.0) - 0.5) < 0.03

    def test_rank_monotone(self):
        sketch = KLLSketch(k=128, seed=3)
        sketch.update_many(make_np_rng(126).normal(size=10_000))
        ranks = [sketch.rank(x) for x in (-2.0, -1.0, 0.0, 1.0, 2.0)]
        assert ranks == sorted(ranks)

    def test_merge_accuracy(self):
        data = make_np_rng(127).lognormal(2, 1, size=40_000)
        half = len(data) // 2
        a, b = KLLSketch(k=256, seed=4), KLLSketch(k=256, seed=5)
        a.update_many(data[:half])
        b.update_many(data[half:])
        a.merge(b)
        assert a.count == len(data)
        err = _rank_error(a.quantile(0.5), np.sort(data), 0.5)
        assert err < 3 * a.error_bound()

    def test_merge_key(self):
        from repro.common.exceptions import MergeError

        with pytest.raises(MergeError):
            KLLSketch(k=100).merge(KLLSketch(k=200))

    @settings(max_examples=25)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=500))
    def test_property_quantiles_within_range(self, values):
        sketch = KLLSketch(k=64, seed=0)
        sketch.update_many(values)
        for q in (0.0, 0.5, 1.0):
            assert min(values) <= sketch.quantile(q) <= max(values)

    @settings(max_examples=20)
    @given(st.integers(min_value=100, max_value=2_000))
    def test_property_count_preserved(self, n):
        sketch = KLLSketch(k=64, seed=1)
        sketch.update_many(float(i) for i in range(n))
        assert sketch.count == n
        # Total weight of retained items equals the count.
        total_weight = sum(
            (1 << level) * len(buf) for level, buf in enumerate(sketch._levels)
        )
        assert total_weight <= n  # compaction discards half of overflow
        assert total_weight >= n // 2
