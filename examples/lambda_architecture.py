#!/usr/bin/env python
"""The Lambda Architecture of Figure 1, end to end.

Click events are dispatched to the batch layer (immutable master dataset)
and the speed layer simultaneously. Queries merge batch views with
real-time views, so answers are complete even though the batch job only
runs periodically. The demo runs the batch job twice and shows the speed
layer's burden (batch lag) shrinking to zero after each run.

Run:  python examples/lambda_architecture.py
"""

import collections

from repro.lambda_arch import CountView, LambdaArchitecture, UniqueVisitorsView
from repro.workloads import click_stream


def main() -> None:
    clicks = list(click_stream(30_000, unique_visitors=2_000, pages=100, seed=31))
    truth_views = collections.Counter(e.page for e in clicks)
    truth_users = collections.defaultdict(set)
    for e in clicks:
        truth_users[e.page].add(e.user_id)
    hot_page = truth_views.most_common(1)[0][0]

    pageviews = LambdaArchitecture(CountView(key_fn=lambda e: e.page))
    audiences = LambdaArchitecture(
        UniqueVisitorsView(key_fn=lambda e: e.page, user_fn=lambda e: e.user_id)
    )

    # Morning traffic arrives; no batch job has run yet.
    for event in clicks[:12_000]:
        pageviews.ingest(event)
        audiences.ingest(event)
    print(f"Before 1st batch run: batch lag = {pageviews.batch_lag:,} events "
          f"(queries served purely by the speed layer)")
    partial_truth = collections.Counter(e.page for e in clicks[:12_000])
    print(f"  views({hot_page}) = {pageviews.query(hot_page):,} "
          f"(true so far {partial_truth[hot_page]:,})")

    # Nightly batch job #1.
    pageviews.run_batch()
    audiences.run_batch()
    print(f"After 1st batch run:  batch lag = {pageviews.batch_lag:,} "
          f"(speed layer expired)")

    # More traffic lands after the batch horizon.
    for event in clicks[12_000:]:
        pageviews.ingest(event)
        audiences.ingest(event)
    print(f"More traffic:         batch lag = {pageviews.batch_lag:,} "
          f"(answers merge batch + speed)")
    print(f"  views({hot_page}) = {pageviews.query(hot_page):,} "
          f"(true {truth_views[hot_page]:,})")
    est = audiences.query(hot_page)
    exact = len(truth_users[hot_page])
    print(f"  audience({hot_page}) ~ {est:,.0f} (true {exact:,}; HLL views "
          f"merge across layers without double-counting)")

    # Batch job #2 catches up completely.
    pageviews.run_batch()
    audiences.run_batch()
    assert pageviews.query(hot_page) == truth_views[hot_page]
    print("After 2nd batch run:  batch view alone matches ground truth exactly.")


if __name__ == "__main__":
    main()
