#!/usr/bin/env python
"""Streaming SQL — the Pulsar-style interface of Table 2.

eBay's Pulsar let analysts express real-time analytics as SQL rather than
topology code. The library's `StreamingQuery` compiles a small SQL dialect
into synopsis-backed incremental operators: COUNT/SUM/AVG are exact,
APPROX_* run on HyperLogLog / t-digest / SpaceSaving under the hood.

Run:  python examples/sql_analytics.py
"""

from repro.platform.sql import StreamingQuery, query
from repro.workloads import click_stream


def main() -> None:
    events = [
        {
            "timestamp": e.timestamp,
            "user": e.user_id,
            "page": e.page,
            "latency_ms": 20.0 + (hash(e.user_id) % 200) / 2.0,
        }
        for e in click_stream(50_000, unique_visitors=5_000, pages=50, seed=61)
    ]

    print("== Top pages with audience and latency (one pass) ==")
    rows = query(
        "SELECT page, COUNT(*), APPROX_DISTINCT(user), "
        "APPROX_QUANTILE(latency_ms, 0.99) "
        "FROM stream GROUP BY page",
        events,
    )
    rows.sort(key=lambda r: -r["COUNT(*)"])
    print(f"{'page':>10}  {'views':>7}  {'audience':>8}  {'p99 ms':>7}")
    for row in rows[:5]:
        print(f"{row['page']:>10}  {row['COUNT(*)']:>7,}  "
              f"{row['APPROX_DISTINCT(user)']:>8,}  "
              f"{row['APPROX_QUANTILE(latency_ms, 0.99)']:>7.1f}")

    print("\n== Filtered aggregate ==")
    (row,) = query(
        "SELECT COUNT(*), AVG(latency_ms) FROM stream WHERE page = '/page/0'",
        events,
    )
    print(f"/page/0: {row['COUNT(*)']:,} views, avg latency {row['AVG(latency_ms)']:.1f} ms")

    print("\n== Windowed query (per-100-second traffic) ==")
    q = StreamingQuery(
        "SELECT COUNT(*), APPROX_DISTINCT(user) FROM stream WINDOW TUMBLING 100"
    )
    q.update_many(events)
    q.flush()
    for window in q.windows()[:5]:
        (r,) = window["rows"]
        print(f"  [{window['window_start']:>6.0f}, {window['window_end']:>6.0f}) "
              f"{r['COUNT(*)']:>6,} clicks, ~{r['APPROX_DISTINCT(user)']:,} users")


if __name__ == "__main__":
    main()
