#!/usr/bin/env python
"""Sensor-network monitoring: anomaly detection + missing-value imputation.

Table 1 pairs "Anomaly Detection" and "Data Prediction" with sensor
networks. This demo runs a telemetry stream with injected spikes and
dropouts through:

* three anomaly detectors (rolling z-score, EWMA chart, robust MAD),
  scored for precision/recall against the injected ground truth;
* a Kalman local-trend filter that fills the dropouts, compared against
  zero-fill on reconstruction error.

Run:  python examples/sensor_monitoring.py
"""

import numpy as np

from repro.anomaly import EWMAControlChart, RollingZScore, SlidingMAD
from repro.prediction import LocalTrendFilter
from repro.workloads import sensor_stream_with_anomalies, series_with_missing_values


def precision_recall(flags, truth_indices):
    truth = set(truth_indices)
    flagged = {i for i, f in enumerate(flags) if f}
    tp = len(truth & flagged)
    precision = tp / len(flagged) if flagged else 1.0
    recall = tp / len(truth) if truth else 1.0
    return precision, recall


def anomaly_section() -> None:
    print("== Anomaly detection on telemetry with injected 8-sigma spikes ==")
    annotated = sensor_stream_with_anomalies(20_000, anomaly_rate=0.003, seed=41)
    detectors = {
        "rolling z-score": RollingZScore(window=256, threshold=4.0),
        "EWMA chart": EWMAControlChart(alpha=0.2, L=4.0),
        "sliding MAD": SlidingMAD(window=256, threshold=4.5),
    }
    for name, detector in detectors.items():
        flags = [detector.update(v) for v in annotated.values]
        precision, recall = precision_recall(flags, annotated.anomaly_indices)
        print(f"  {name:>16}: precision {precision:5.1%}  recall {recall:5.1%}")


def imputation_section() -> None:
    print("\n== Missing-value imputation on a seasonal sensor series ==")
    annotated = series_with_missing_values(5_000, missing_rate=0.08, seed=42)
    kf = LocalTrendFilter(process_noise=1e-2, observation_noise=0.3)
    kalman_sq, zero_sq = [], []
    for i, value in enumerate(annotated.values):
        if np.isnan(value):
            truth = annotated.clean[i]
            kalman_sq.append((kf.predict_next() - truth) ** 2)
            zero_sq.append(truth**2)
            kf.update(None)  # predict-only step through the gap
        else:
            kf.update(value)
    kalman_rmse = float(np.sqrt(np.mean(kalman_sq)))
    zero_rmse = float(np.sqrt(np.mean(zero_sq)))
    print(f"  {len(kalman_sq)} gaps filled")
    print(f"  Kalman imputation RMSE: {kalman_rmse:.3f}")
    print(f"  zero-fill RMSE:         {zero_rmse:.3f}")
    print(f"  -> {zero_rmse / kalman_rmse:.1f}x better than naive filling")


if __name__ == "__main__":
    anomaly_section()
    imputation_section()
