#!/usr/bin/env python
"""The Table 2 tour: one word count, six execution models, one answer.

The paper surveys S4, Storm, MillWheel, Samza, Spark, Flink and Pulsar as
*different architectures for the same job*. This demo runs the identical
word count through the library's reproduction of each model and checks
they all agree exactly:

  1. Storm-style topology (spouts/bolts, fields grouping);
  2. high-level Pipeline DSL with MillWheel/Flink exactly-once semantics;
  3. Spark-style micro-batches with stateful reduce;
  4. Samza-style log-backed stages (with a crash in the middle);
  5. Pulsar-style streaming SQL;
  6. S4-style per-key processing elements.

Run:  python examples/platform_tour.py
"""

import collections

from repro.core import Pipeline
from repro.platform import (
    CountBolt,
    FaultInjector,
    FlatMapBolt,
    InMemoryLog,
    ListSpout,
    LocalExecutor,
    PEContainer,
    ProcessingElement,
    TopologyBuilder,
)
from repro.platform.microbatch import MicroBatchContext
from repro.platform.samza import LoggedTask, SamzaPipeline
from repro.platform.sql import query
from repro.workloads import zipf_stream

WORDS = list(zipf_stream(5_000, universe=200, skew=1.0, seed=99))
SENTENCES = [" ".join(WORDS[i : i + 5]) for i in range(0, len(WORDS), 5)]
TRUTH = collections.Counter(WORDS)


def storm_style():
    builder = TopologyBuilder()
    builder.set_spout("sentences", lambda: ListSpout(SENTENCES))
    builder.set_bolt(
        "split", lambda: FlatMapBolt(lambda v: [(w,) for w in v[0].split()])
    ).shuffle("sentences")
    builder.set_bolt("count", CountBolt, parallelism=4).fields("split", 0)
    ex = LocalExecutor(builder.build(), semantics="at_least_once")
    ex.run()
    merged = collections.Counter()
    for bolt in ex.bolt_instances("count"):
        merged.update(bolt.counts)
    return merged


def pipeline_exactly_once():
    updates = (
        Pipeline.from_list(SENTENCES)
        .flat_map(lambda v: [(w,) for w in v[0].split()])
        .key_by(0)
        .count()
        .run(
            semantics="exactly_once",
            faults=FaultInjector(crash_after=3_000, seed=1),
            checkpoint_interval=250,
        )
    )
    final = {}
    for word, count in updates:
        final[word] = max(final.get(word, 0), count)
    return collections.Counter(final)


def spark_style():
    ctx = MicroBatchContext(batch_size=100, checkpoint_every=5)
    counts = (
        ctx.source(WORDS)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b, stateful=True)
        .collect()
    )
    ctx.run(fail_at=20)  # crash mid-stream; lineage recovery
    return collections.Counter(dict(counts.batches()[-1]))


def samza_style():
    class Count(LoggedTask):
        def __init__(self):
            self.counts = collections.Counter()

        def process(self, record):
            self.counts[record] += 1
            return []

        def snapshot(self):
            return dict(self.counts)

        def restore(self, state):
            self.counts = collections.Counter(state or {})

    source = InMemoryLog()
    source.append_many(WORDS)
    pipeline = SamzaPipeline()
    task = Count()
    stage = pipeline.add_stage("count", task, source, commit_interval=300)
    stage.run(max_records=2_000)
    stage.crash()  # resume from the committed offset
    pipeline.run_until_quiescent()
    return task.counts


def pulsar_style():
    rows = query(
        "SELECT word, COUNT(*) FROM stream GROUP BY word",
        [{"word": w} for w in WORDS],
    )
    return collections.Counter({r["word"]: r["COUNT(*)"] for r in rows})


def s4_style():
    class CountPE(ProcessingElement):
        def __init__(self, key):
            super().__init__(key)
            self.count = 0

        def on_event(self, value, emit):
            self.count += 1

    container = PEContainer()
    container.prototype("words", CountPE)
    for word in WORDS:
        container.process("words", word, None)
    return collections.Counter(
        {pe.key: pe.count for pe in container.pes_for("words")}
    )


MODELS = {
    "Storm topology (at-least-once)": storm_style,
    "Pipeline DSL (exactly-once + crash)": pipeline_exactly_once,
    "Spark micro-batch (+ crash)": spark_style,
    "Samza logged stage (+ crash)": samza_style,
    "Pulsar streaming SQL": pulsar_style,
    "S4 processing elements": s4_style,
}


def main() -> None:
    print(f"{len(WORDS):,} words, {len(TRUTH)} distinct — ground truth fixed.\n")
    for name, run in MODELS.items():
        counts = run()
        verdict = "exact" if counts == TRUTH else "MISMATCH"
        print(f"  {name:<38} -> {verdict}")
        assert counts == TRUTH, name
    print("\nSix architectures, one identical answer — the Table 2 design "
          "space differs in *how*, not *what*.")


if __name__ == "__main__":
    main()
