#!/usr/bin/env python
"""Site audience analysis — Table 1's cardinality-estimation application.

A click stream hits a small cluster of "web servers" (stream partitions).
Each server keeps one 4 KiB HyperLogLog; the dashboard merges them for the
global unique-visitor count, and a sliding HyperLogLog answers "uniques in
the last hour" at any moment. Exact sets are kept alongside for ground
truth so the output shows the error you actually pay.

Run:  python examples/site_audience.py
"""

from repro.cardinality import HyperLogLog, SlidingHyperLogLog
from repro.workloads import click_stream


N_SERVERS = 4


def main() -> None:
    clicks = list(click_stream(200_000, unique_visitors=25_000, pages=500, seed=21))

    per_server = [HyperLogLog(precision=12, seed=0) for __ in range(N_SERVERS)]
    last_hour = SlidingHyperLogLog(precision=12, horizon=3600.0, seed=0)
    exact_all: set[str] = set()
    exact_hour: list[tuple[float, str]] = []

    for i, event in enumerate(clicks):
        per_server[i % N_SERVERS].update(event.user_id)  # load-balanced
        last_hour.update_at(event.user_id, event.timestamp)
        exact_all.add(event.user_id)
        exact_hour.append((event.timestamp, event.user_id))

    # Dashboard: merge the per-server sketches (register max, lossless).
    merged = per_server[0]
    for sketch in per_server[1:]:
        merged = merged + sketch

    est = merged.estimate()
    print(f"Global unique visitors: estimated {est:,.0f}, exact {len(exact_all):,} "
          f"({abs(est - len(exact_all)) / len(exact_all):.2%} error, "
          f"{merged.size_bytes():,} bytes/server)")

    now = clicks[-1].timestamp
    # The same sketch answers any window up to its horizon — no extra state.
    for minutes in (30, 10, 2):
        window = minutes * 60.0
        true_w = len({u for ts, u in exact_hour if ts > now - window})
        est_w = last_hour.estimate(window=window, now=now)
        print(f"Uniques in the last {minutes:>2} min: estimated {est_w:,.0f}, "
              f"exact {true_w:,} ({abs(est_w - true_w) / true_w:.2%} error)")
    print(f"(sliding sketch retains {last_hour.retained:,} records "
          f"vs {len(exact_hour):,} raw events)")


if __name__ == "__main__":
    main()
