#!/usr/bin/env python
"""Incremental machine learning — Section 2's "emerging field", runnable.

Three online learners on streaming tasks:

* online logistic regression (AdaGrad) on a CTR-style binary stream,
  scored by progressive validation (predict-then-learn, no test split);
* a Hoeffding tree on the same stream, showing the split-as-you-stream
  behaviour of VFDT;
* streaming naive Bayes with decay on a topic stream whose concept
  *drifts* halfway through.

Run:  python examples/online_learning.py
"""

import numpy as np

from repro.common.rng import make_np_rng
from repro.ml import HoeffdingTree, OnlineLogisticRegression, StreamingNaiveBayes


def ctr_stream(n, dims=8, seed=0):
    """A click-through-rate-like stream: clicks follow a logistic model."""
    rng = make_np_rng(seed)
    w = rng.normal(size=dims)
    for __ in range(n):
        x = rng.normal(size=dims)
        p = 1.0 / (1.0 + np.exp(-(x @ w)))
        yield x, int(rng.random() < p)


def logistic_section() -> None:
    print("== Online logistic regression (progressive validation) ==")
    lr = OnlineLogisticRegression(dims=8, adagrad=True)
    checkpoints = {1_000, 5_000, 20_000}
    for i, (x, y) in enumerate(ctr_stream(20_000, seed=1), start=1):
        lr.update((x, y))
        if i in checkpoints:
            print(f"  after {i:>6,} examples: log loss {lr.progressive_log_loss():.4f}")


def tree_section() -> None:
    print("\n== Hoeffding tree (splits certified by the Hoeffding bound) ==")
    rng = make_np_rng(2)
    tree = HoeffdingTree(dims=2, grace_period=200)
    for i in range(1, 20_001):
        x = rng.uniform(0, 1, size=2)
        label = "buy" if (x[0] > 0.6 and x[1] < 0.4) else "skip"
        tree.update((x, label))
        if i in (1_000, 5_000, 20_000):
            print(f"  after {i:>6,} examples: {tree.n_nodes} nodes, depth "
                  f"{tree.depth}, accuracy {tree.progressive_accuracy():.1%}")


def drift_section() -> None:
    print("\n== Naive Bayes under concept drift (decay=0.99) ==")
    nb = StreamingNaiveBayes(decay=0.99)
    # Phase 1: '#launch' tweets are mostly positive.
    for __ in range(500):
        nb.update((["#launch", "great"], "positive"))
        nb.update((["#outage", "down"], "negative"))
    before = nb.predict_proba(["#launch"])["positive"]
    # Phase 2: the launch goes badly; sentiment flips.
    for __ in range(500):
        nb.update((["#launch", "broken"], "negative"))
    after = nb.predict_proba(["#launch"])["positive"]
    print(f"  P(positive | #launch): {before:.2f} before drift -> {after:.2f} after")
    assert after < 0.5 < before


if __name__ == "__main__":
    logistic_section()
    tree_section()
    drift_section()
