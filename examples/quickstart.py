#!/usr/bin/env python
"""Quickstart: the three layers of the library in ~60 lines.

1. Individual synopses — answer one question each in tiny memory.
2. StreamSummary — several synopses over one stream, mergeable.
3. Pipeline — a dataflow program with delivery-semantics guarantees.

Run:  python examples/quickstart.py
"""

import collections

from repro import Pipeline, StreamSummary, create
from repro.cardinality import HyperLogLog
from repro.frequency import SpaceSaving
from repro.quantiles import TDigest
from repro.workloads import zipf_stream


def synopses_basics() -> None:
    print("== 1. Synopses ==")
    stream = list(zipf_stream(100_000, universe=20_000, skew=1.1, seed=1))

    hll = create("hyperloglog", precision=14)  # by registry name...
    topk = SpaceSaving(k=64)  # ...or by class
    for item in stream:
        hll.update(item)
        topk.update(item)

    truth = collections.Counter(stream)
    print(f"  distinct: estimated {hll.estimate():,.0f}, true {len(truth):,} "
          f"(sketch = {hll.size_bytes():,} bytes)")
    est_top = [w for w, __ in topk.top(3)]
    true_top = [w for w, __ in truth.most_common(3)]
    print(f"  top-3:    estimated {est_top}, true {true_top}")


def stream_summary() -> None:
    print("== 2. StreamSummary (mergeable across partitions) ==")

    def make():
        return StreamSummary(
            uniques=HyperLogLog(precision=13, seed=0),
            latency_ms=TDigest(delta=100),
            extractors={"uniques": lambda e: e[0], "latency_ms": lambda e: e[1]},
        )

    # Two partitions of a request stream, summarised independently...
    part_a, part_b = make(), make()
    for i in range(50_000):
        part_a.update((f"user{i % 4000}", 10.0 + (i % 90)))
        part_b.update((f"user{(i + 2000) % 4000}", 12.0 + (i % 110)))
    # ...then merged into a global view.
    part_a.merge(part_b)
    print(f"  global uniques ~ {part_a['uniques'].estimate():,.0f} (true 4,000)")
    print(f"  global p99 latency ~ {part_a['latency_ms'].quantile(0.99):.1f} ms")


def pipeline_word_count() -> None:
    print("== 3. Pipeline (exactly-once word count) ==")
    sentences = ["real time analytics", "streaming analytics at scale"] * 500
    updates = (
        Pipeline.from_list(sentences)
        .flat_map(lambda v: [(w,) for w in v[0].split()])
        .key_by(0)
        .count()
        .run(semantics="exactly_once")
    )
    final: dict[str, int] = {}
    for word, count in updates:
        final[word] = max(final.get(word, 0), count)
    print(f"  'analytics' counted {final['analytics']} times (true 1000)")


if __name__ == "__main__":
    synopses_basics()
    stream_summary()
    pipeline_word_count()
