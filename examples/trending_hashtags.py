#!/usr/bin/env python
"""Trending hashtags — Table 1's flagship "frequent elements" application.

A simulated tweet firehose carries a Zipfian background of evergreen tags;
two tags start trending mid-stream. We detect them three ways:

* SpaceSaving over everything      -> all-time top tags (background wins);
* WindowedTopK over the last 50k   -> recent top tags (trends surface);
* DecayedFrequencies half-life     -> smooth trending scores.

Run:  python examples/trending_hashtags.py
"""

from repro.frequency import SpaceSaving, WindowedTopK
from repro.windowing import DecayedFrequencies
from repro.workloads import hashtag_stream


def main() -> None:
    background = list(hashtag_stream(150_000, background_tags=3_000, seed=7))
    trending = list(
        hashtag_stream(
            50_000,
            background_tags=3_000,
            trending={"#vldb2015": 0.06, "#realtime": 0.03},
            seed=8,
        )
    )
    firehose = background + trending  # trends start at t = 150k

    alltime = SpaceSaving(k=256)
    recent = WindowedTopK(window=50_000, k=256, n_blocks=10)
    decayed = DecayedFrequencies(half_life=20_000.0)

    for t, tag in enumerate(firehose):
        alltime.update(tag)
        recent.update(tag)
        decayed.add(tag, float(t))

    print("All-time top 5 (SpaceSaving):")
    for tag, count in alltime.top(5):
        print(f"  {tag:>12}  ~{count:,}")

    print("\nLast-50k-tweets top 5 (WindowedTopK):")
    for tag, count in recent.top(5):
        print(f"  {tag:>12}  ~{count:,}")

    print("\nDecayed trending scores, top 5 (half-life 20k tweets):")
    for tag, score in decayed.top(5):
        print(f"  {tag:>12}  {score:,.0f}")

    windowed_top = [tag for tag, __ in recent.top(5)]
    assert "#vldb2015" in windowed_top, "trending tag should surface in the window"
    print("\n-> the trending tags dominate the windowed/decayed views while "
          "the all-time view is still ruled by evergreen background tags.")


if __name__ == "__main__":
    main()
