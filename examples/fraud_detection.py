#!/usr/bin/env python
"""Real-time fraud detection — the paper's flagship correlation/sequence
use case, assembled from the library's pieces.

A simulated card-transaction stream carries three planted fraud patterns:

1. impossible travel  — same card, two cities, seconds apart;
2. micro-probing      — a burst of tiny transactions testing a stolen card
                        (caught by a per-card decayed rate + a rule);
3. amount outliers    — transactions far outside the card's history
                        (caught by a robust MAD detector per card).

The rule engine (footnote 1 of the paper) orchestrates; sketches keep the
per-card state bounded; a SequenceMiner surfaces the common pre-fraud
merchant traversal path.

Run:  python examples/fraud_detection.py
"""

from repro.anomaly import SlidingMAD
from repro.common.rng import make_rng
from repro.platform import RuleEngine
from repro.temporal import SequenceMiner
from repro.windowing import DecayedFrequencies


def make_transactions(n_cards=300, n=8_000, seed=13):
    rng = make_rng(seed)
    cities = ["SF", "NYC", "LA", "CHI", "SEA"]
    merchants = ["grocer", "gas", "cafe", "web-store", "atm"]
    # Legitimate behaviour: every card transacts in its home city (people
    # do not teleport); the planted frauds are what break that invariant.
    home = {f"card{c}": cities[c % len(cities)] for c in range(n_cards)}
    txns, fraud_truth = [], set()
    ts = 0.0
    for i in range(n):
        ts += rng.expovariate(1.0)
        card = f"card{rng.randrange(n_cards)}"
        txn = {
            "id": i, "ts": ts, "card": card,
            "city": home[card],
            "merchant": rng.choice(merchants),
            "amount": round(rng.lognormvariate(3.0, 0.6), 2),
        }
        txns.append(txn)
    # Plant pattern 1: impossible travel.
    for j in range(40):
        base = txns[200 + j * 150]
        clone = dict(base, id=n + j, ts=base["ts"] + 5.0,
                     city="NYC" if base["city"] != "NYC" else "SF")
        fraud_truth.add(clone["id"])
        txns.append(clone)
    # Plant pattern 2: micro-probing bursts.
    for j in range(20):
        probe_ts = txns[500 + j * 100]["ts"]
        for k in range(6):
            txn = {"id": n + 100 + j * 10 + k, "ts": probe_ts + k * 0.5,
                   "card": f"probed{j}", "city": "SF",
                   "merchant": "web-store", "amount": 0.99}
            fraud_truth.add(txn["id"])
            txns.append(txn)
    txns.sort(key=lambda t: t["ts"])
    return txns, fraud_truth


def main() -> None:
    txns, fraud_truth = make_transactions()
    engine = RuleEngine()
    probe_rate = DecayedFrequencies(half_life=30.0)
    amount_models: dict[str, SlidingMAD] = {}
    paths = SequenceMiner(max_len=3, k=2_048)

    def velocity(r, c):
        prev = c.get_state(f"last:{r['card']}")
        if prev and r["ts"] - prev["ts"] < 60 and r["city"] != prev["city"]:
            c.alert("impossible-travel", f"{r['card']} {prev['city']}->{r['city']}", r)
        c.set_state(f"last:{r['card']}", r)

    def probing(r, c):
        if r["amount"] < 2.0:
            probe_rate.add(r["card"], r["ts"])
            if probe_rate.value(r["card"], r["ts"]) >= 3.0:
                c.alert("micro-probing", f"{r['card']} rapid tiny charges", r)

    def outlier(r, c):
        model = amount_models.setdefault(
            r["card"], SlidingMAD(window=64, threshold=12.0, warmup=16)
        )
        if model.update(r["amount"]):
            c.alert("amount-outlier", f"{r['card']} amount {r['amount']}", r)

    engine.when("velocity", lambda r, s: True, velocity, priority=3)
    engine.when("probing", lambda r, s: True, probing, priority=2)
    engine.when("outlier", lambda r, s: True, outlier, priority=1)

    for txn in txns:
        paths.update((txn["card"], txn["merchant"]))
        engine.process(txn)

    flagged_ids = {a.record["id"] for a in engine.alerts if a.record}
    # Pattern-level recall: a travel clone is one pattern; a probing burst
    # counts as caught if any transaction inside it was flagged.
    travel_ids = {i for i in fraud_truth if i < 8_100}
    burst_caught = sum(
        1
        for j in range(20)
        if any(8_100 + j * 10 + k in flagged_ids for k in range(6))
    )
    travel_caught = len(travel_ids & flagged_ids)
    patterns_total = len(travel_ids) + 20
    patterns_caught = travel_caught + burst_caught
    false_alarms = len(flagged_ids - fraud_truth)

    print(f"{len(txns):,} transactions, {len(travel_ids)} travel frauds + 20 probing bursts")
    print(f"alerts raised: {len(engine.alerts)}")
    print(f"fraud patterns caught: {patterns_caught}/{patterns_total} "
          f"({patterns_caught / patterns_total:.0%})")
    print(f"false alarms: {false_alarms} ({false_alarms / len(txns):.2%} of traffic)")

    print("\nMost common 3-step merchant paths (SequenceMiner):")
    for seq, count in paths.top(3, length=3):
        print(f"  {' -> '.join(seq):>28}  ~{count}")

    assert patterns_caught / patterns_total > 0.9
    assert false_alarms / len(txns) < 0.05


if __name__ == "__main__":
    main()
